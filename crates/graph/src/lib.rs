//! Dynamic-ring and time-varying-graph substrate.
//!
//! This crate provides the *static footprint* and *dynamics* layers that the
//! exploration protocols of Di Luna, Dobrev, Flocchini and Santoro
//! (*Live Exploration of Dynamic Rings*, ICDCS 2016) operate on:
//!
//! * [`RingTopology`] — the anonymous ring `R = (v_0, …, v_{n-1})`, its nodes,
//!   edges, ports and the optional landmark node;
//! * [`GlobalDirection`] / [`orientation::Handedness`] — the global
//!   (clockwise / counter-clockwise) frame and the per-agent private frame,
//!   including the chirality relation between them;
//! * [`dynamics`] — edge-presence schedules: fixed schedules, generators, and
//!   validation of the 1-interval-connectivity constraint (at most one edge
//!   missing per round);
//! * [`tvg`] — a small general time-varying-graph layer (footprint +
//!   presence function) of which the dynamic ring is the special case used by
//!   the paper; it exists so that the exploration engine can later be extended
//!   to the arbitrary topologies the paper lists as open problems.
//!
//! The crate is purely combinatorial: it knows nothing about agents,
//! schedulers or protocols.
//!
//! # Example
//!
//! ```
//! use dynring_graph::{RingTopology, NodeId, GlobalDirection};
//!
//! let ring = RingTopology::new(8).expect("rings need at least 3 nodes");
//! let v0 = NodeId::new(0);
//! assert_eq!(ring.neighbor(v0, GlobalDirection::Ccw), NodeId::new(1));
//! assert_eq!(ring.neighbor(v0, GlobalDirection::Cw), NodeId::new(7));
//! assert_eq!(ring.distance(NodeId::new(1), NodeId::new(6)), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod error;
pub mod ids;
pub mod orientation;
pub mod ring;
pub mod tvg;

pub use dynamics::{EdgeSchedule, ScheduleBuilder};
pub use error::GraphError;
pub use ids::{AgentId, EdgeId, NodeId};
pub use orientation::{GlobalDirection, Handedness};
pub use ring::RingTopology;
