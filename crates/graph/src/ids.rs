//! Strongly-typed identifiers for nodes, edges and agents.
//!
//! The paper's rings are *anonymous*: nodes carry no identifiers visible to
//! the agents. The identifiers defined here are purely a bookkeeping device
//! of the simulator (the "god view"); protocols never observe them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node `v_i` of the ring, `0 ≤ i < n`.
///
/// Node `v_i` is adjacent to `v_{i-1}` and `v_{i+1}` (indices mod `n`).
///
/// ```
/// use dynring_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from a raw index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of the node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

/// Index of an edge of the ring.
///
/// Edge `e_i` connects `v_i` and `v_{i+1 mod n}`; a ring of size `n` has
/// exactly `n` edges `e_0, …, e_{n-1}`.
///
/// ```
/// use dynring_graph::EdgeId;
/// assert_eq!(EdgeId::new(2).index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(usize);

impl EdgeId {
    /// Creates an edge identifier from a raw index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        EdgeId(index)
    }

    /// Returns the raw index of the edge.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        EdgeId(index)
    }
}

/// Simulator-level identifier of an agent.
///
/// Agents in the paper are anonymous; this identifier exists only so the
/// engine, traces and adversaries can refer to individual agents. It is never
/// part of an agent's [snapshot](https://docs.rs/dynring-model) unless a
/// scenario explicitly grants distinct IDs (used only by impossibility
/// experiments that show a result holds *even with* IDs).
///
/// ```
/// use dynring_graph::AgentId;
/// assert_eq!(AgentId::new(0).index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(usize);

impl AgentId {
    /// Creates an agent identifier from a raw index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        AgentId(index)
    }

    /// Returns the raw index of the agent.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<usize> for AgentId {
    fn from(index: usize) -> Self {
        AgentId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_roundtrip_and_display() {
        let v = NodeId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.to_string(), "v7");
        assert_eq!(NodeId::from(7), v);
    }

    #[test]
    fn edge_roundtrip_and_display() {
        let e = EdgeId::new(5);
        assert_eq!(e.index(), 5);
        assert_eq!(e.to_string(), "e5");
        assert_eq!(EdgeId::from(5), e);
    }

    #[test]
    fn agent_roundtrip_and_display() {
        let a = AgentId::new(2);
        assert_eq!(a.index(), 2);
        assert_eq!(a.to_string(), "a2");
        assert_eq!(AgentId::from(2), a);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(3));
        assert!(AgentId::new(0) < AgentId::new(1));
    }
}
