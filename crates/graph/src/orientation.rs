//! Global and private orientation of the ring.
//!
//! The ring has a *global* sense of rotation that only the simulator sees:
//! [`GlobalDirection::Ccw`] goes from `v_i` to `v_{i+1}` and
//! [`GlobalDirection::Cw`] goes from `v_i` to `v_{i-1}`.
//!
//! Each agent `a_j` owns a *private*, internally consistent orientation
//! `λ_j` that maps every port to either `left` or `right`. The simulator
//! models `λ_j` with a [`Handedness`]: it fixes which global direction the
//! agent's local `left` corresponds to. When all agents share the same
//! handedness **and know it**, the system has *chirality* in the sense of the
//! paper.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Not;

/// Global direction of travel around the ring (simulator frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GlobalDirection {
    /// Counter-clockwise: from `v_i` towards `v_{i+1}` (indices mod `n`).
    Ccw,
    /// Clockwise: from `v_i` towards `v_{i-1}` (indices mod `n`).
    Cw,
}

impl GlobalDirection {
    /// Returns the opposite global direction.
    ///
    /// ```
    /// use dynring_graph::GlobalDirection;
    /// assert_eq!(GlobalDirection::Ccw.opposite(), GlobalDirection::Cw);
    /// ```
    #[must_use]
    pub const fn opposite(self) -> Self {
        match self {
            GlobalDirection::Ccw => GlobalDirection::Cw,
            GlobalDirection::Cw => GlobalDirection::Ccw,
        }
    }

    /// The signed step (`+1` for CCW, `-1` for CW) applied to a node index.
    #[must_use]
    pub const fn step(self) -> i64 {
        match self {
            GlobalDirection::Ccw => 1,
            GlobalDirection::Cw => -1,
        }
    }

    /// Both directions, in a fixed order (useful for iteration).
    #[must_use]
    pub const fn both() -> [GlobalDirection; 2] {
        [GlobalDirection::Ccw, GlobalDirection::Cw]
    }
}

impl Not for GlobalDirection {
    type Output = GlobalDirection;

    fn not(self) -> Self::Output {
        self.opposite()
    }
}

impl fmt::Display for GlobalDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalDirection::Ccw => write!(f, "ccw"),
            GlobalDirection::Cw => write!(f, "cw"),
        }
    }
}

/// The private orientation (handedness) of an agent.
///
/// An agent with [`Handedness::LeftIsCcw`] has its local `left` pointing in
/// the global counter-clockwise direction; an agent with
/// [`Handedness::LeftIsCw`] has it pointing clockwise. Two agents *agree on
/// orientation* exactly when their handedness values are equal.
///
/// ```
/// use dynring_graph::{GlobalDirection, Handedness};
/// let h = Handedness::LeftIsCw;
/// assert_eq!(h.local_left(), GlobalDirection::Cw);
/// assert_eq!(h.local_right(), GlobalDirection::Ccw);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Handedness {
    /// Local `left` corresponds to the global counter-clockwise direction.
    #[default]
    LeftIsCcw,
    /// Local `left` corresponds to the global clockwise direction.
    LeftIsCw,
}

impl Handedness {
    /// Global direction the agent's local `left` maps to.
    #[must_use]
    pub const fn local_left(self) -> GlobalDirection {
        match self {
            Handedness::LeftIsCcw => GlobalDirection::Ccw,
            Handedness::LeftIsCw => GlobalDirection::Cw,
        }
    }

    /// Global direction the agent's local `right` maps to.
    #[must_use]
    pub const fn local_right(self) -> GlobalDirection {
        self.local_left().opposite()
    }

    /// Returns the opposite handedness.
    #[must_use]
    pub const fn flipped(self) -> Self {
        match self {
            Handedness::LeftIsCcw => Handedness::LeftIsCw,
            Handedness::LeftIsCw => Handedness::LeftIsCcw,
        }
    }

    /// Both handedness values, in a fixed order.
    #[must_use]
    pub const fn both() -> [Handedness; 2] {
        [Handedness::LeftIsCcw, Handedness::LeftIsCw]
    }
}

impl fmt::Display for Handedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Handedness::LeftIsCcw => write!(f, "left=ccw"),
            Handedness::LeftIsCw => write!(f, "left=cw"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involution() {
        for d in GlobalDirection::both() {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(!(!d), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn steps_are_opposite() {
        assert_eq!(GlobalDirection::Ccw.step(), 1);
        assert_eq!(GlobalDirection::Cw.step(), -1);
        for d in GlobalDirection::both() {
            assert_eq!(d.step(), -d.opposite().step());
        }
    }

    #[test]
    fn handedness_maps_left_and_right_consistently() {
        for h in Handedness::both() {
            assert_eq!(h.local_left().opposite(), h.local_right());
            assert_eq!(h.flipped().local_left(), h.local_right());
            assert_eq!(h.flipped().flipped(), h);
        }
    }

    #[test]
    fn default_handedness_is_ccw() {
        assert_eq!(Handedness::default(), Handedness::LeftIsCcw);
    }

    #[test]
    fn display_strings() {
        assert_eq!(GlobalDirection::Ccw.to_string(), "ccw");
        assert_eq!(GlobalDirection::Cw.to_string(), "cw");
        assert_eq!(Handedness::LeftIsCcw.to_string(), "left=ccw");
        assert_eq!(Handedness::LeftIsCw.to_string(), "left=cw");
    }
}
