//! A minimal time-varying-graph (evolving graph) abstraction.
//!
//! The paper models the dynamic ring as a *1-interval-connected* evolving
//! graph: a sequence `G_1, G_2, …` of spanning subgraphs of the footprint
//! ring, each of which is connected. This module provides the general
//! vocabulary (footprint, presence function, temporal connectivity classes)
//! so that
//!
//! * the ring-specific schedule type can be checked against the general
//!   definition, and
//! * the engine can later be extended towards the arbitrary-topology open
//!   problems listed in the paper's conclusion.

use crate::dynamics::EdgeSchedule;
use crate::ids::{EdgeId, NodeId};
use crate::ring::RingTopology;
use serde::{Deserialize, Serialize};

/// A footprint graph: the union of all edges that may ever appear.
///
/// Only the operations the exploration engine needs are required; the ring is
/// the canonical implementation.
pub trait Footprint {
    /// Number of nodes of the footprint.
    fn node_count(&self) -> usize;
    /// Number of (undirected) edges of the footprint.
    fn edge_count(&self) -> usize;
    /// Endpoints of an edge.
    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId);
    /// Edges incident to a node.
    fn incident_edges(&self, node: NodeId) -> Vec<EdgeId>;
}

impl Footprint for RingTopology {
    fn node_count(&self) -> usize {
        self.size()
    }

    fn edge_count(&self) -> usize {
        self.size()
    }

    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        self.endpoints(edge)
    }

    fn incident_edges(&self, node: NodeId) -> Vec<EdgeId> {
        use crate::orientation::GlobalDirection;
        vec![
            self.edge_towards(node, GlobalDirection::Cw),
            self.edge_towards(node, GlobalDirection::Ccw),
        ]
    }
}

/// A presence function: which edges exist at a given (1-based) round.
pub trait Presence {
    /// Whether `edge` is present in `round`.
    fn edge_present(&self, round: u64, edge: EdgeId) -> bool;
}

impl Presence for EdgeSchedule {
    fn edge_present(&self, round: u64, edge: EdgeId) -> bool {
        self.is_present(round, edge)
    }
}

/// The temporal connectivity classes of Casteigts et al. referenced by the
/// paper (Classes 8 and 9, and the T-interval-connected refinement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConnectivityClass {
    /// Every snapshot is connected (Class 9); `T = 1` in the
    /// T-interval-connected hierarchy. This is the assumption of the paper.
    IntervalConnected {
        /// The stability parameter `T ≥ 1`.
        interval: u64,
    },
    /// Edges reappear periodically with the given period (Class 8, carrier
    /// graphs).
    Periodic {
        /// The period `p ≥ 1`.
        period: u64,
    },
    /// Every edge reappears at least once in any window of `delta` rounds
    /// (δ-recurrent dynamics).
    Recurrent {
        /// The recurrence bound `δ ≥ 1`.
        delta: u64,
    },
}

/// An evolving graph: a footprint together with a presence function.
///
/// ```
/// use dynring_graph::{RingTopology, EdgeSchedule, EdgeId};
/// use dynring_graph::tvg::EvolvingGraph;
///
/// let ring = RingTopology::new(5).unwrap();
/// let sched = EdgeSchedule::from_missing(&ring, vec![Some(EdgeId::new(0))]).unwrap();
/// let eg = EvolvingGraph::new(&ring, &sched);
/// assert!(eg.snapshot_is_connected(1));
/// assert!(eg.satisfies_one_interval_connectivity(1..=10));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EvolvingGraph<'a, F: Footprint, P: Presence> {
    footprint: &'a F,
    presence: &'a P,
}

impl<'a, F: Footprint, P: Presence> EvolvingGraph<'a, F, P> {
    /// Pairs a footprint with a presence function.
    pub fn new(footprint: &'a F, presence: &'a P) -> Self {
        EvolvingGraph { footprint, presence }
    }

    /// The underlying footprint.
    pub fn footprint(&self) -> &'a F {
        self.footprint
    }

    /// Edges present in the snapshot `G_round`.
    pub fn present_edges(&self, round: u64) -> Vec<EdgeId> {
        (0..self.footprint.edge_count())
            .map(EdgeId::new)
            .filter(|e| self.presence.edge_present(round, *e))
            .collect()
    }

    /// Whether the snapshot at `round` is connected (union-find over present
    /// edges).
    pub fn snapshot_is_connected(&self, round: u64) -> bool {
        let n = self.footprint.node_count();
        if n == 0 {
            return true;
        }
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for e in self.present_edges(round) {
            let (u, v) = self.footprint.edge_endpoints(e);
            let (ru, rv) = (find(&mut parent, u.index()), find(&mut parent, v.index()));
            if ru != rv {
                parent[ru] = rv;
            }
        }
        let root0 = find(&mut parent, 0);
        (1..n).all(|i| find(&mut parent, i) == root0)
    }

    /// Whether every snapshot in the (1-based, inclusive) round range is
    /// connected — i.e. the evolving graph is 1-interval connected over that
    /// window.
    pub fn satisfies_one_interval_connectivity(
        &self,
        rounds: std::ops::RangeInclusive<u64>,
    ) -> bool {
        rounds.into_iter().all(|r| self.snapshot_is_connected(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::ScheduleBuilder;

    #[test]
    fn ring_footprint_properties() {
        let ring = RingTopology::new(6).unwrap();
        assert_eq!(Footprint::node_count(&ring), 6);
        assert_eq!(Footprint::edge_count(&ring), 6);
        assert_eq!(ring.edge_endpoints(EdgeId::new(5)), (NodeId::new(5), NodeId::new(0)));
        let inc = ring.incident_edges(NodeId::new(0));
        assert_eq!(inc, vec![EdgeId::new(5), EdgeId::new(0)]);
    }

    #[test]
    fn ring_with_one_missing_edge_stays_connected() {
        let ring = RingTopology::new(5).unwrap();
        let sched = ScheduleBuilder::new(&ring).remove_for(EdgeId::new(3), 4).build();
        let eg = EvolvingGraph::new(&ring, &sched);
        assert!(eg.satisfies_one_interval_connectivity(1..=6));
        assert_eq!(eg.present_edges(1).len(), 4);
        assert_eq!(eg.present_edges(5).len(), 5);
    }

    /// A presence function that removes two edges — the resulting snapshot is
    /// disconnected, demonstrating why the paper's adversary is limited to
    /// one missing edge.
    struct TwoMissing;
    impl Presence for TwoMissing {
        fn edge_present(&self, _round: u64, edge: EdgeId) -> bool {
            edge.index() != 0 && edge.index() != 2
        }
    }

    #[test]
    fn removing_two_edges_disconnects_the_ring() {
        let ring = RingTopology::new(5).unwrap();
        let presence = TwoMissing;
        let eg = EvolvingGraph::new(&ring, &presence);
        assert!(!eg.snapshot_is_connected(1));
    }

    #[test]
    fn connectivity_class_is_plain_data() {
        let c = ConnectivityClass::IntervalConnected { interval: 1 };
        assert_eq!(c, ConnectivityClass::IntervalConnected { interval: 1 });
        assert_ne!(c, ConnectivityClass::Periodic { period: 3 });
    }
}
