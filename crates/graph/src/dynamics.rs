//! Edge-presence dynamics: 1-interval-connected edge schedules.
//!
//! The paper's adversary may remove *at most one* edge of the ring in each
//! round (1-interval connectivity). During a live simulation the missing edge
//! is usually chosen adaptively by an adversary object in the engine crate;
//! this module provides the *offline* representation of such a choice — an
//! [`EdgeSchedule`] — which is used to
//!
//! * replay recorded executions,
//! * express the hand-crafted worst-case schedules drawn in the paper's
//!   figures (e.g. Figure 2), and
//! * validate that any execution respected 1-interval connectivity.

use crate::error::GraphError;
use crate::ids::EdgeId;
use crate::ring::RingTopology;
use serde::{Deserialize, Serialize};

/// Behaviour of an [`EdgeSchedule`] after its fixed horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AfterHorizon {
    /// All edges are present after the horizon (the adversary gives up).
    #[default]
    AllPresent,
    /// The last prescribed choice is repeated forever.
    RepeatLast,
    /// The schedule repeats from the beginning (periodic dynamics, as in
    /// carrier graphs).
    Cycle,
    /// Asking beyond the horizon is an error.
    Error,
}

/// A fixed (offline) 1-interval-connected edge-presence schedule.
///
/// `missing[t]` is the edge removed in round `t+1` (rounds are 1-based in the
/// engine, the vector is 0-based), or `None` when every edge is present.
///
/// # Example
///
/// ```
/// use dynring_graph::{EdgeSchedule, EdgeId, RingTopology};
///
/// let ring = RingTopology::new(5).unwrap();
/// let schedule = EdgeSchedule::from_missing(
///     &ring,
///     vec![Some(EdgeId::new(0)), None, Some(EdgeId::new(3))],
/// ).unwrap();
/// assert_eq!(schedule.missing_at(1), Some(EdgeId::new(0)));
/// assert_eq!(schedule.missing_at(2), None);
/// assert!(schedule.is_present(2, EdgeId::new(3)));
/// assert!(!schedule.is_present(3, EdgeId::new(3)));
/// // beyond the horizon all edges are present by default
/// assert_eq!(schedule.missing_at(100), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeSchedule {
    ring_size: usize,
    missing: Vec<Option<EdgeId>>,
    after: AfterHorizon,
}

impl EdgeSchedule {
    /// Creates a schedule in which no edge is ever missing.
    #[must_use]
    pub fn always_present(ring: &RingTopology) -> Self {
        EdgeSchedule { ring_size: ring.size(), missing: Vec::new(), after: AfterHorizon::AllPresent }
    }

    /// Creates a schedule from the per-round missing edge choices.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfRange`] if any prescribed edge does not
    /// exist in `ring`.
    pub fn from_missing(
        ring: &RingTopology,
        missing: Vec<Option<EdgeId>>,
    ) -> Result<Self, GraphError> {
        for e in missing.iter().flatten() {
            ring.check_edge(*e)?;
        }
        Ok(EdgeSchedule { ring_size: ring.size(), missing, after: AfterHorizon::AllPresent })
    }

    /// Sets the behaviour after the fixed horizon and returns the schedule.
    #[must_use]
    pub fn with_after_horizon(mut self, after: AfterHorizon) -> Self {
        self.after = after;
        self
    }

    /// Size of the ring the schedule refers to.
    #[must_use]
    pub const fn ring_size(&self) -> usize {
        self.ring_size
    }

    /// Number of rounds explicitly covered by the schedule.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.missing.len() as u64
    }

    /// The behaviour after the fixed horizon.
    #[must_use]
    pub const fn after_horizon(&self) -> AfterHorizon {
        self.after
    }

    /// The edge missing in the given (1-based) round, if any.
    ///
    /// # Panics
    ///
    /// Panics if `round` is 0, or if the round lies beyond the horizon and the
    /// schedule was configured with [`AfterHorizon::Error`].
    #[must_use]
    pub fn missing_at(&self, round: u64) -> Option<EdgeId> {
        assert!(round >= 1, "rounds are 1-based");
        let idx = (round - 1) as usize;
        if idx < self.missing.len() {
            return self.missing[idx];
        }
        match self.after {
            AfterHorizon::AllPresent => None,
            AfterHorizon::RepeatLast => self.missing.last().copied().flatten(),
            AfterHorizon::Cycle => {
                if self.missing.is_empty() {
                    None
                } else {
                    self.missing[idx % self.missing.len()]
                }
            }
            AfterHorizon::Error => {
                panic!("round {round} beyond schedule horizon {}", self.missing.len())
            }
        }
    }

    /// Whether `edge` is present in the given round.
    #[must_use]
    pub fn is_present(&self, round: u64, edge: EdgeId) -> bool {
        self.missing_at(round) != Some(edge)
    }

    /// Validates 1-interval connectivity of the whole fixed horizon. Always
    /// succeeds for schedules built through this type (they cannot express
    /// more than one missing edge per round); provided for symmetry with
    /// recorded traces.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfRange`] if a prescribed edge is invalid
    /// for a ring of `ring_size` nodes.
    pub fn validate(&self) -> Result<(), GraphError> {
        for e in self.missing.iter().flatten() {
            if e.index() >= self.ring_size {
                return Err(GraphError::EdgeOutOfRange { index: e.index(), ring_size: self.ring_size });
            }
        }
        Ok(())
    }

    /// Total number of rounds within the horizon in which some edge is
    /// missing.
    #[must_use]
    pub fn removal_count(&self) -> usize {
        self.missing.iter().filter(|m| m.is_some()).count()
    }
}

/// Incremental builder for hand-crafted schedules (used for the figures).
///
/// Rounds are appended in order; gaps can be filled with
/// [`ScheduleBuilder::all_present_for`].
///
/// ```
/// use dynring_graph::{ScheduleBuilder, RingTopology, EdgeId};
/// let ring = RingTopology::new(6).unwrap();
/// let schedule = ScheduleBuilder::new(&ring)
///     .remove_for(EdgeId::new(2), 3)
///     .all_present_for(2)
///     .remove_for(EdgeId::new(5), 1)
///     .build();
/// assert_eq!(schedule.horizon(), 6);
/// assert_eq!(schedule.missing_at(6), Some(EdgeId::new(5)));
/// ```
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    ring_size: usize,
    missing: Vec<Option<EdgeId>>,
}

impl ScheduleBuilder {
    /// Starts a new builder for the given ring.
    #[must_use]
    pub fn new(ring: &RingTopology) -> Self {
        ScheduleBuilder { ring_size: ring.size(), missing: Vec::new() }
    }

    /// Appends `rounds` rounds in which `edge` is missing.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range for the ring.
    #[must_use]
    pub fn remove_for(mut self, edge: EdgeId, rounds: u64) -> Self {
        assert!(edge.index() < self.ring_size, "edge {edge} out of range");
        self.missing.extend(std::iter::repeat_n(Some(edge), rounds as usize));
        self
    }

    /// Appends `rounds` rounds in which every edge is present.
    #[must_use]
    pub fn all_present_for(mut self, rounds: u64) -> Self {
        self.missing.extend(std::iter::repeat_n(None, rounds as usize));
        self
    }

    /// Appends a single round with the given (possibly absent) missing edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge is out of range for the ring.
    #[must_use]
    pub fn round(mut self, missing: Option<EdgeId>) -> Self {
        if let Some(e) = missing {
            assert!(e.index() < self.ring_size, "edge {e} out of range");
        }
        self.missing.push(missing);
        self
    }

    /// Number of rounds accumulated so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.missing.len() as u64
    }

    /// Whether no rounds have been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.missing.is_empty()
    }

    /// Finalises the schedule (all edges present after the horizon).
    #[must_use]
    pub fn build(self) -> EdgeSchedule {
        EdgeSchedule {
            ring_size: self.ring_size,
            missing: self.missing,
            after: AfterHorizon::AllPresent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn ring(n: usize) -> RingTopology {
        RingTopology::new(n).unwrap()
    }

    #[test]
    fn always_present_has_no_removals() {
        let s = EdgeSchedule::always_present(&ring(4));
        assert_eq!(s.horizon(), 0);
        assert_eq!(s.removal_count(), 0);
        for r in 1..10 {
            assert_eq!(s.missing_at(r), None);
        }
    }

    #[test]
    fn from_missing_validates_edges() {
        let r = ring(4);
        assert!(EdgeSchedule::from_missing(&r, vec![Some(EdgeId::new(4))]).is_err());
        assert!(EdgeSchedule::from_missing(&r, vec![Some(EdgeId::new(3)), None]).is_ok());
    }

    #[test]
    fn after_horizon_modes() {
        let r = ring(5);
        let base = vec![Some(EdgeId::new(1)), None, Some(EdgeId::new(2))];

        let s = EdgeSchedule::from_missing(&r, base.clone()).unwrap();
        assert_eq!(s.missing_at(4), None);

        let s = EdgeSchedule::from_missing(&r, base.clone())
            .unwrap()
            .with_after_horizon(AfterHorizon::RepeatLast);
        assert_eq!(s.missing_at(4), Some(EdgeId::new(2)));
        assert_eq!(s.missing_at(400), Some(EdgeId::new(2)));

        let s = EdgeSchedule::from_missing(&r, base)
            .unwrap()
            .with_after_horizon(AfterHorizon::Cycle);
        assert_eq!(s.missing_at(4), Some(EdgeId::new(1)));
        assert_eq!(s.missing_at(5), None);
        assert_eq!(s.missing_at(6), Some(EdgeId::new(2)));
    }

    #[test]
    #[should_panic(expected = "beyond schedule horizon")]
    fn error_mode_panics_beyond_horizon() {
        let r = ring(5);
        let s = EdgeSchedule::from_missing(&r, vec![None])
            .unwrap()
            .with_after_horizon(AfterHorizon::Error);
        let _ = s.missing_at(2);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn round_zero_is_rejected() {
        let s = EdgeSchedule::always_present(&ring(4));
        let _ = s.missing_at(0);
    }

    #[test]
    fn builder_composes_segments() {
        let r = RingTopology::with_landmark(7, NodeId::new(0)).unwrap();
        let s = ScheduleBuilder::new(&r)
            .remove_for(EdgeId::new(0), 2)
            .all_present_for(1)
            .round(Some(EdgeId::new(6)))
            .round(None)
            .build();
        assert_eq!(s.horizon(), 5);
        assert_eq!(s.missing_at(1), Some(EdgeId::new(0)));
        assert_eq!(s.missing_at(2), Some(EdgeId::new(0)));
        assert_eq!(s.missing_at(3), None);
        assert_eq!(s.missing_at(4), Some(EdgeId::new(6)));
        assert_eq!(s.missing_at(5), None);
        assert_eq!(s.removal_count(), 3);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn builder_len_and_is_empty() {
        let r = ring(4);
        let b = ScheduleBuilder::new(&r);
        assert!(b.is_empty());
        let b = b.all_present_for(3);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn is_present_is_consistent_with_missing_at() {
        let r = ring(6);
        let s = EdgeSchedule::from_missing(&r, vec![Some(EdgeId::new(2))]).unwrap();
        for e in r.edges() {
            assert_eq!(s.is_present(1, e), e != EdgeId::new(2));
            assert!(s.is_present(2, e));
        }
    }
}
