//! The static ring footprint.

use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId};
use crate::orientation::GlobalDirection;
use serde::{Deserialize, Serialize};

/// The footprint ring `R = (v_0, …, v_{n-1})`, with optional landmark.
///
/// The ring is the *static* underlying graph; which edge is missing at any
/// given round is decided by the dynamics layer (see
/// [`crate::dynamics::EdgeSchedule`]) or, during a live simulation, by an
/// adversary.
///
/// Edges are indexed so that edge `e_i` connects `v_i` with `v_{i+1 mod n}`.
/// The port `q_i^+` of node `v_i` leads over `e_i` (global CCW) and the port
/// `q_i^-` leads over `e_{i-1 mod n}` (global CW).
///
/// # Example
///
/// ```
/// use dynring_graph::{RingTopology, NodeId, EdgeId, GlobalDirection};
///
/// let ring = RingTopology::with_landmark(6, NodeId::new(0)).unwrap();
/// assert_eq!(ring.size(), 6);
/// assert!(ring.is_landmark(NodeId::new(0)));
/// assert_eq!(ring.edge_towards(NodeId::new(2), GlobalDirection::Ccw), EdgeId::new(2));
/// assert_eq!(ring.edge_towards(NodeId::new(2), GlobalDirection::Cw), EdgeId::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RingTopology {
    size: usize,
    landmark: Option<NodeId>,
}

impl RingTopology {
    /// Minimum admissible ring size.
    pub const MIN_SIZE: usize = 3;

    /// Creates an anonymous ring with `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::RingTooSmall`] if `n < 3`.
    pub fn new(n: usize) -> Result<Self, GraphError> {
        if n < Self::MIN_SIZE {
            return Err(GraphError::RingTooSmall { requested: n });
        }
        Ok(RingTopology { size: n, landmark: None })
    }

    /// Creates a ring with `n` nodes where `landmark` is the distinguished
    /// landmark node visible to the agents.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::RingTooSmall`] if `n < 3` and
    /// [`GraphError::NodeOutOfRange`] if the landmark index is not a node.
    pub fn with_landmark(n: usize, landmark: NodeId) -> Result<Self, GraphError> {
        let mut ring = Self::new(n)?;
        if landmark.index() >= n {
            return Err(GraphError::NodeOutOfRange { index: landmark.index(), ring_size: n });
        }
        ring.landmark = Some(landmark);
        Ok(ring)
    }

    /// Number of nodes (equivalently, number of edges) of the ring.
    #[must_use]
    pub const fn size(&self) -> usize {
        self.size
    }

    /// The landmark node, if the ring has one.
    #[must_use]
    pub const fn landmark(&self) -> Option<NodeId> {
        self.landmark
    }

    /// Whether `node` is the landmark.
    #[must_use]
    pub fn is_landmark(&self, node: NodeId) -> bool {
        self.landmark == Some(node)
    }

    /// Whether the ring is anonymous (has no landmark).
    #[must_use]
    pub const fn is_anonymous(&self) -> bool {
        self.landmark.is_none()
    }

    /// Iterator over all nodes `v_0, …, v_{n-1}`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.size).map(NodeId::new)
    }

    /// Iterator over all edges `e_0, …, e_{n-1}`.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.size).map(EdgeId::new)
    }

    /// Validates that `node` is a node of this ring.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] otherwise.
    pub fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if node.index() < self.size {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange { index: node.index(), ring_size: self.size })
        }
    }

    /// Validates that `edge` is an edge of this ring.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfRange`] otherwise.
    pub fn check_edge(&self, edge: EdgeId) -> Result<(), GraphError> {
        if edge.index() < self.size {
            Ok(())
        } else {
            Err(GraphError::EdgeOutOfRange { index: edge.index(), ring_size: self.size })
        }
    }

    /// The neighbour of `node` in global direction `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range (a programming error of the caller;
    /// use [`RingTopology::check_node`] to validate untrusted input).
    #[must_use]
    pub fn neighbor(&self, node: NodeId, dir: GlobalDirection) -> NodeId {
        assert!(node.index() < self.size, "node {node} out of range (n={})", self.size);
        let n = self.size;
        // Branchless-friendly wrap instead of `%` (a hardware division):
        // this sits on the engine's per-round hot path.
        let next = match dir {
            GlobalDirection::Ccw => {
                let next = node.index() + 1;
                if next == n { 0 } else { next }
            }
            GlobalDirection::Cw => {
                if node.index() == 0 { n - 1 } else { node.index() - 1 }
            }
        };
        NodeId::new(next)
    }

    /// The edge an agent standing at `node` crosses when moving in global
    /// direction `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn edge_towards(&self, node: NodeId, dir: GlobalDirection) -> EdgeId {
        assert!(node.index() < self.size, "node {node} out of range (n={})", self.size);
        match dir {
            GlobalDirection::Ccw => EdgeId::new(node.index()),
            // Wrap without `%` (hot path, see `neighbor`).
            GlobalDirection::Cw => EdgeId::new(if node.index() == 0 {
                self.size - 1
            } else {
                node.index() - 1
            }),
        }
    }

    /// The two endpoints `(v_i, v_{i+1})` of edge `e_i`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    #[must_use]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        assert!(edge.index() < self.size, "edge {edge} out of range (n={})", self.size);
        (NodeId::new(edge.index()), NodeId::new((edge.index() + 1) % self.size))
    }

    /// The edge between two adjacent nodes, or `None` if they are not
    /// adjacent (or are the same node).
    #[must_use]
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        if a.index() >= self.size || b.index() >= self.size || a == b {
            return None;
        }
        if self.neighbor(a, GlobalDirection::Ccw) == b {
            Some(self.edge_towards(a, GlobalDirection::Ccw))
        } else if self.neighbor(a, GlobalDirection::Cw) == b {
            Some(self.edge_towards(a, GlobalDirection::Cw))
        } else {
            None
        }
    }

    /// Ring (shortest-path) distance between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        assert!(a.index() < self.size && b.index() < self.size, "node out of range");
        let d = self.directed_distance(a, b, GlobalDirection::Ccw);
        d.min(self.size - d)
    }

    /// Number of edges from `a` to `b` walking in global direction `dir`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[must_use]
    pub fn directed_distance(&self, a: NodeId, b: NodeId, dir: GlobalDirection) -> usize {
        assert!(a.index() < self.size && b.index() < self.size, "node out of range");
        let n = self.size;
        match dir {
            GlobalDirection::Ccw => (b.index() + n - a.index()) % n,
            GlobalDirection::Cw => (a.index() + n - b.index()) % n,
        }
    }

    /// Node reached from `node` after `steps` hops in direction `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn offset(&self, node: NodeId, dir: GlobalDirection, steps: usize) -> NodeId {
        assert!(node.index() < self.size, "node out of range");
        let n = self.size as i64;
        let delta = dir.step() * (steps as i64 % n);
        let idx = ((node.index() as i64 + delta) % n + n) % n;
        NodeId::new(idx as usize)
    }

    /// Node reached from `node` after applying a signed CCW offset
    /// (positive = CCW, negative = CW).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn offset_signed(&self, node: NodeId, delta: i64) -> NodeId {
        assert!(node.index() < self.size, "node out of range");
        let n = self.size as i64;
        let idx = ((node.index() as i64 + delta) % n + n) % n;
        NodeId::new(idx as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_tiny_rings() {
        assert!(RingTopology::new(0).is_err());
        assert!(RingTopology::new(2).is_err());
        assert!(RingTopology::new(3).is_ok());
    }

    #[test]
    fn landmark_validation() {
        assert!(RingTopology::with_landmark(5, NodeId::new(4)).is_ok());
        assert!(RingTopology::with_landmark(5, NodeId::new(5)).is_err());
        let r = RingTopology::with_landmark(5, NodeId::new(2)).unwrap();
        assert!(r.is_landmark(NodeId::new(2)));
        assert!(!r.is_landmark(NodeId::new(3)));
        assert!(!r.is_anonymous());
        assert!(RingTopology::new(5).unwrap().is_anonymous());
    }

    #[test]
    fn neighbors_wrap_around() {
        let r = RingTopology::new(5).unwrap();
        assert_eq!(r.neighbor(NodeId::new(4), GlobalDirection::Ccw), NodeId::new(0));
        assert_eq!(r.neighbor(NodeId::new(0), GlobalDirection::Cw), NodeId::new(4));
    }

    #[test]
    fn edges_and_ports_match_paper_indexing() {
        let r = RingTopology::new(6).unwrap();
        // e_i connects v_i and v_{i+1}
        assert_eq!(r.endpoints(EdgeId::new(5)), (NodeId::new(5), NodeId::new(0)));
        // q_i^+ leads over e_i, q_i^- over e_{i-1}
        assert_eq!(r.edge_towards(NodeId::new(0), GlobalDirection::Cw), EdgeId::new(5));
        assert_eq!(r.edge_towards(NodeId::new(3), GlobalDirection::Ccw), EdgeId::new(3));
    }

    #[test]
    fn edge_between_adjacent_nodes() {
        let r = RingTopology::new(4).unwrap();
        assert_eq!(r.edge_between(NodeId::new(0), NodeId::new(1)), Some(EdgeId::new(0)));
        assert_eq!(r.edge_between(NodeId::new(1), NodeId::new(0)), Some(EdgeId::new(0)));
        assert_eq!(r.edge_between(NodeId::new(3), NodeId::new(0)), Some(EdgeId::new(3)));
        assert_eq!(r.edge_between(NodeId::new(0), NodeId::new(2)), None);
        assert_eq!(r.edge_between(NodeId::new(1), NodeId::new(1)), None);
    }

    #[test]
    fn distances() {
        let r = RingTopology::new(8).unwrap();
        assert_eq!(r.distance(NodeId::new(1), NodeId::new(6)), 3);
        assert_eq!(r.distance(NodeId::new(6), NodeId::new(1)), 3);
        assert_eq!(r.distance(NodeId::new(2), NodeId::new(2)), 0);
        assert_eq!(r.directed_distance(NodeId::new(1), NodeId::new(6), GlobalDirection::Ccw), 5);
        assert_eq!(r.directed_distance(NodeId::new(1), NodeId::new(6), GlobalDirection::Cw), 3);
    }

    #[test]
    fn offsets() {
        let r = RingTopology::new(7).unwrap();
        assert_eq!(r.offset(NodeId::new(5), GlobalDirection::Ccw, 4), NodeId::new(2));
        assert_eq!(r.offset(NodeId::new(1), GlobalDirection::Cw, 3), NodeId::new(5));
        assert_eq!(r.offset_signed(NodeId::new(1), -3), NodeId::new(5));
        assert_eq!(r.offset_signed(NodeId::new(1), 13), NodeId::new(0));
        assert_eq!(r.offset_signed(NodeId::new(1), -8), NodeId::new(0));
    }

    #[test]
    fn node_and_edge_iterators_cover_everything() {
        let r = RingTopology::new(9).unwrap();
        assert_eq!(r.nodes().count(), 9);
        assert_eq!(r.edges().count(), 9);
        assert_eq!(r.nodes().next(), Some(NodeId::new(0)));
        assert_eq!(r.edges().last(), Some(EdgeId::new(8)));
    }

    #[test]
    fn check_node_and_edge() {
        let r = RingTopology::new(4).unwrap();
        assert!(r.check_node(NodeId::new(3)).is_ok());
        assert!(r.check_node(NodeId::new(4)).is_err());
        assert!(r.check_edge(EdgeId::new(3)).is_ok());
        assert!(r.check_edge(EdgeId::new(4)).is_err());
    }

    #[test]
    fn neighbor_is_inverse_of_opposite_neighbor() {
        let r = RingTopology::new(11).unwrap();
        for v in r.nodes() {
            for d in GlobalDirection::both() {
                let w = r.neighbor(v, d);
                assert_eq!(r.neighbor(w, d.opposite()), v);
                assert_eq!(r.edge_towards(v, d), r.edge_towards(w, d.opposite()));
            }
        }
    }
}
