//! Error type shared by the substrate layer.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating ring topologies and
/// edge-presence schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The requested ring size is smaller than the minimum of 3 nodes.
    RingTooSmall {
        /// The size that was requested.
        requested: usize,
    },
    /// A node index was outside `0..n`.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// The ring size.
        ring_size: usize,
    },
    /// An edge index was outside `0..n`.
    EdgeOutOfRange {
        /// The offending index.
        index: usize,
        /// The ring size.
        ring_size: usize,
    },
    /// A schedule violated 1-interval connectivity (more than one edge
    /// missing in one round).
    ConnectivityViolation {
        /// The round at which the violation occurred.
        round: u64,
    },
    /// The schedule was asked about a round beyond its fixed horizon and no
    /// default behaviour was configured.
    HorizonExceeded {
        /// The round that was requested.
        round: u64,
        /// The number of rounds the schedule covers.
        horizon: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::RingTooSmall { requested } => {
                write!(f, "ring requires at least 3 nodes, got {requested}")
            }
            GraphError::NodeOutOfRange { index, ring_size } => {
                write!(f, "node index {index} out of range for ring of size {ring_size}")
            }
            GraphError::EdgeOutOfRange { index, ring_size } => {
                write!(f, "edge index {index} out of range for ring of size {ring_size}")
            }
            GraphError::ConnectivityViolation { round } => {
                write!(f, "more than one edge missing at round {round}")
            }
            GraphError::HorizonExceeded { round, horizon } => {
                write!(f, "round {round} beyond schedule horizon {horizon}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let cases = [
            GraphError::RingTooSmall { requested: 2 },
            GraphError::NodeOutOfRange { index: 9, ring_size: 5 },
            GraphError::EdgeOutOfRange { index: 9, ring_size: 5 },
            GraphError::ConnectivityViolation { round: 3 },
            GraphError::HorizonExceeded { round: 10, horizon: 5 },
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("ring"));
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error>() {}
        assert_err::<GraphError>();
    }
}
