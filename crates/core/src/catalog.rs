//! A registry of every algorithm in the paper, and the enum-dispatched
//! protocol runtime built on top of it.
//!
//! The analysis and benchmark crates enumerate this catalogue to build the
//! feasibility map (Tables 1–4); examples use it to construct agents by name.
//!
//! # Two ways to instantiate an algorithm
//!
//! The catalogue of *Live Exploration of Dynamic Rings* is **closed and
//! small** — nine concrete protocol state machines cover all twelve
//! feasibility-map rows — which the runtime exploits by offering two
//! instantiation paths:
//!
//! * [`Algorithm::instantiate_enum`] returns a [`CatalogProtocol`], a
//!   nine-variant enum wrapping the concrete protocol types. Dispatching
//!   `decide` through it is a **static `match`** the compiler can inline, so
//!   a homogeneous team of catalogue agents (the common case in every sweep)
//!   pays **zero virtual calls** per Look–Compute cycle, and the engine's
//!   probe pool can refresh prediction probes with a plain variant-matching
//!   [`Clone::clone_from`] instead of an `as_any` downcast.
//! * [`Algorithm::instantiate`] returns the classic `Box<dyn Protocol>` —
//!   the **extension escape hatch** that also accepts user-defined protocols
//!   the catalogue has never heard of. The engine runs both representations
//!   side by side in one team (see the example below).
//!
//! The two paths are observably identical — `tests/dispatch_equivalence.rs`
//! pins identical run reports and trace digests for every catalogue
//! algorithm under FSYNC and SSYNC, with and without decision predictions —
//! so choosing between them is purely a performance decision. See
//! `docs/ARCHITECTURE.md` (“The dispatch story”) for the full design.

use crate::fsync::{KnownBound, LandmarkChirality, LandmarkNoChirality, Unconscious};
use crate::single::LoneWalker;
use crate::ssync::{EtUnconscious, PtBoundChirality, PtLandmarkChirality, PtNoChirality};
use dynring_model::{
    Decision, Protocol, ScenarioAssumptions, Snapshot, SynchronyModel, TerminationKind,
    TransportModel,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The synchrony family an algorithm is designed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmFamily {
    /// Fully synchronous algorithms (Section 3).
    Fsync,
    /// Semi-synchronous algorithms for the PT model (Section 4.2).
    SsyncPt,
    /// Semi-synchronous algorithms for the ET model (Section 4.3).
    SsyncEt,
    /// Single-agent strawman (Observation 1).
    SingleAgent,
}

/// Every algorithm of the paper, with enough parameters to instantiate it.
///
/// ```
/// use dynring_core::Algorithm;
///
/// let alg = Algorithm::KnownBound { upper_bound: 16 };
/// let agent = alg.instantiate();
/// assert_eq!(agent.name(), "KnownNNoChirality");
/// assert_eq!(alg.required_agents(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Figure 1 — FSYNC, two agents, known upper bound, no chirality.
    KnownBound {
        /// The known upper bound `N ≥ n`.
        upper_bound: usize,
    },
    /// Figure 3 — FSYNC, two agents, no knowledge, unconscious.
    Unconscious,
    /// Figure 4 — FSYNC, two agents, landmark + chirality.
    LandmarkChirality,
    /// Figure 13 — FSYNC, two agents, landmark, no chirality.
    LandmarkNoChirality,
    /// Figure 8 — FSYNC, two agents, landmark, no chirality, starting at the
    /// landmark.
    StartFromLandmarkNoChirality,
    /// Figure 14 — SSYNC/PT, two agents, chirality, known upper bound.
    PtBoundChirality {
        /// The known upper bound `N ≥ n`.
        upper_bound: usize,
    },
    /// Figure 17 — SSYNC/PT, two agents, chirality, landmark.
    PtLandmarkChirality,
    /// Figure 18 — SSYNC/PT, three agents, no chirality, known upper bound.
    PtBoundNoChirality {
        /// The known upper bound `N ≥ n`.
        upper_bound: usize,
    },
    /// Theorem 17 — SSYNC/PT, three agents, no chirality, landmark.
    PtLandmarkNoChirality,
    /// Theorem 20 — SSYNC/ET, three agents, no chirality, exact size.
    EtBoundNoChirality {
        /// The exactly known ring size `n`.
        ring_size: usize,
    },
    /// Theorem 18 — SSYNC/ET, two agents, chirality, unconscious.
    EtUnconscious,
    /// Observation 1 — a single agent (cannot succeed).
    LoneWalker {
        /// Blocked rounds after which the walker reverses (0 = never).
        patience: u64,
    },
}

impl Algorithm {
    /// Instantiates a fresh agent running this algorithm behind the classic
    /// type-erased `Box<dyn Protocol>` (the `dyn`-dispatch path).
    ///
    /// Prefer [`Algorithm::instantiate_enum`] for catalogue teams: the
    /// returned [`CatalogProtocol`] dispatches `decide` through a static
    /// `match` instead of a vtable. This boxed form remains the extension
    /// escape hatch shared with user-defined protocols.
    #[must_use]
    pub fn instantiate(&self) -> Box<dyn Protocol> {
        match *self {
            Algorithm::KnownBound { upper_bound } => Box::new(KnownBound::new(upper_bound)),
            Algorithm::Unconscious => Box::new(Unconscious::new()),
            Algorithm::LandmarkChirality => Box::new(LandmarkChirality::new()),
            Algorithm::LandmarkNoChirality => Box::new(LandmarkNoChirality::new()),
            Algorithm::StartFromLandmarkNoChirality => {
                Box::new(LandmarkNoChirality::starting_from_landmark())
            }
            Algorithm::PtBoundChirality { upper_bound } => {
                Box::new(PtBoundChirality::new(upper_bound))
            }
            Algorithm::PtLandmarkChirality => Box::new(PtLandmarkChirality::new()),
            Algorithm::PtBoundNoChirality { upper_bound } => {
                Box::new(PtNoChirality::with_upper_bound(upper_bound))
            }
            Algorithm::PtLandmarkNoChirality => Box::new(PtNoChirality::with_landmark()),
            Algorithm::EtBoundNoChirality { ring_size } => {
                Box::new(PtNoChirality::for_eventual_transport(ring_size))
            }
            Algorithm::EtUnconscious => Box::new(EtUnconscious::new()),
            Algorithm::LoneWalker { patience } => Box::new(LoneWalker::new(patience)),
        }
    }

    /// Instantiates a fresh agent running this algorithm as a
    /// [`CatalogProtocol`] (the enum-dispatch fast path).
    ///
    /// The twelve algorithm entries map onto the nine concrete protocol
    /// types: `StartFromLandmarkNoChirality` is a parameterisation of
    /// [`LandmarkNoChirality`], and the three `Pt…NoChirality` /
    /// `EtBoundNoChirality` entries are parameterisations of
    /// [`PtNoChirality`].
    #[must_use]
    pub fn instantiate_enum(&self) -> CatalogProtocol {
        match *self {
            Algorithm::KnownBound { upper_bound } => {
                CatalogProtocol::KnownBound(KnownBound::new(upper_bound))
            }
            Algorithm::Unconscious => CatalogProtocol::Unconscious(Unconscious::new()),
            Algorithm::LandmarkChirality => {
                CatalogProtocol::LandmarkChirality(LandmarkChirality::new())
            }
            Algorithm::LandmarkNoChirality => {
                CatalogProtocol::LandmarkNoChirality(LandmarkNoChirality::new())
            }
            Algorithm::StartFromLandmarkNoChirality => {
                CatalogProtocol::LandmarkNoChirality(LandmarkNoChirality::starting_from_landmark())
            }
            Algorithm::PtBoundChirality { upper_bound } => {
                CatalogProtocol::PtBoundChirality(PtBoundChirality::new(upper_bound))
            }
            Algorithm::PtLandmarkChirality => {
                CatalogProtocol::PtLandmarkChirality(PtLandmarkChirality::new())
            }
            Algorithm::PtBoundNoChirality { upper_bound } => {
                CatalogProtocol::PtNoChirality(PtNoChirality::with_upper_bound(upper_bound))
            }
            Algorithm::PtLandmarkNoChirality => {
                CatalogProtocol::PtNoChirality(PtNoChirality::with_landmark())
            }
            Algorithm::EtBoundNoChirality { ring_size } => {
                CatalogProtocol::PtNoChirality(PtNoChirality::for_eventual_transport(ring_size))
            }
            Algorithm::EtUnconscious => CatalogProtocol::EtUnconscious(EtUnconscious::new()),
            Algorithm::LoneWalker { patience } => {
                CatalogProtocol::LoneWalker(LoneWalker::new(patience))
            }
        }
    }

    /// The synchrony family the algorithm belongs to.
    #[must_use]
    pub fn family(&self) -> AlgorithmFamily {
        match self {
            Algorithm::KnownBound { .. }
            | Algorithm::Unconscious
            | Algorithm::LandmarkChirality
            | Algorithm::LandmarkNoChirality
            | Algorithm::StartFromLandmarkNoChirality => AlgorithmFamily::Fsync,
            Algorithm::PtBoundChirality { .. }
            | Algorithm::PtLandmarkChirality
            | Algorithm::PtBoundNoChirality { .. }
            | Algorithm::PtLandmarkNoChirality => AlgorithmFamily::SsyncPt,
            Algorithm::EtBoundNoChirality { .. } | Algorithm::EtUnconscious => {
                AlgorithmFamily::SsyncEt
            }
            Algorithm::LoneWalker { .. } => AlgorithmFamily::SingleAgent,
        }
    }

    /// Number of agents the algorithm is designed for.
    #[must_use]
    pub fn required_agents(&self) -> usize {
        match self {
            Algorithm::LoneWalker { .. } => 1,
            Algorithm::PtBoundNoChirality { .. }
            | Algorithm::PtLandmarkNoChirality
            | Algorithm::EtBoundNoChirality { .. } => 3,
            _ => 2,
        }
    }

    /// Whether the algorithm needs a landmark node.
    #[must_use]
    pub fn needs_landmark(&self) -> bool {
        matches!(
            self,
            Algorithm::LandmarkChirality
                | Algorithm::LandmarkNoChirality
                | Algorithm::StartFromLandmarkNoChirality
                | Algorithm::PtLandmarkChirality
                | Algorithm::PtLandmarkNoChirality
        )
    }

    /// Whether the algorithm assumes common chirality.
    #[must_use]
    pub fn needs_chirality(&self) -> bool {
        matches!(
            self,
            Algorithm::LandmarkChirality
                | Algorithm::PtBoundChirality { .. }
                | Algorithm::PtLandmarkChirality
                | Algorithm::EtUnconscious
        )
    }

    /// The termination discipline the algorithm promises.
    #[must_use]
    pub fn termination_kind(&self) -> TerminationKind {
        self.instantiate_enum().termination_kind()
    }

    /// The synchrony / transport model under which the algorithm's guarantee
    /// holds.
    #[must_use]
    pub fn synchrony(&self) -> SynchronyModel {
        match self.family() {
            AlgorithmFamily::Fsync | AlgorithmFamily::SingleAgent => SynchronyModel::Fsync,
            AlgorithmFamily::SsyncPt => SynchronyModel::Ssync(TransportModel::PassiveTransport),
            AlgorithmFamily::SsyncEt => SynchronyModel::Ssync(TransportModel::EventualTransport),
        }
    }

    /// The scenario assumptions under which the paper proves the algorithm
    /// correct, used to label feasibility-map rows.
    #[must_use]
    pub fn assumptions(&self) -> ScenarioAssumptions {
        let knows_exact = matches!(self, Algorithm::EtBoundNoChirality { .. });
        let knows_bound = matches!(
            self,
            Algorithm::KnownBound { .. }
                | Algorithm::PtBoundChirality { .. }
                | Algorithm::PtBoundNoChirality { .. }
        );
        ScenarioAssumptions {
            synchrony: self.synchrony(),
            agents: self.required_agents(),
            chirality: self.needs_chirality(),
            landmark: self.needs_landmark(),
            knows_exact_size: knows_exact,
            knows_upper_bound: knows_bound,
            anonymous_agents: true,
        }
    }

    /// Every algorithm of the paper, instantiated with the given ring size
    /// (used by sweeps that iterate over the full catalogue).
    #[must_use]
    pub fn full_catalog(ring_size: usize) -> Vec<Algorithm> {
        vec![
            Algorithm::KnownBound { upper_bound: ring_size },
            Algorithm::Unconscious,
            Algorithm::LandmarkChirality,
            Algorithm::LandmarkNoChirality,
            Algorithm::StartFromLandmarkNoChirality,
            Algorithm::PtBoundChirality { upper_bound: ring_size },
            Algorithm::PtLandmarkChirality,
            Algorithm::PtBoundNoChirality { upper_bound: ring_size },
            Algorithm::PtLandmarkNoChirality,
            Algorithm::EtBoundNoChirality { ring_size },
            Algorithm::EtUnconscious,
            Algorithm::LoneWalker { patience: 0 },
        ]
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.instantiate_enum().name())
    }
}

/// Every concrete protocol state machine of the paper behind one **statically
/// dispatched** enum — the fast path of the engine's agent runtime.
///
/// Each `decide` call resolves by a `match` on the discriminant and a direct
/// (inlinable) call into the wrapped state machine, so a homogeneous team of
/// catalogue agents runs its whole Look–Compute cycle without a single
/// virtual call. The enum also carries a variant-matching
/// [`Clone::clone_from`], which is what lets the engine's probe pool refresh
/// a prediction probe in place without the `as_any` downcast the boxed path
/// needs.
///
/// The nine variants cover the paper's algorithm catalogue as mapped out in
/// [`Algorithm::instantiate_enum`]; `Box<dyn Protocol>` (via
/// [`Algorithm::instantiate`] or any user-defined type) remains the
/// extension escape hatch, and both representations can share one team:
///
/// ```
/// use dynring_core::{Algorithm, CatalogProtocol};
/// use dynring_engine::adversary::RandomEdge;
/// use dynring_engine::scheduler::FullActivation;
/// use dynring_engine::sim::{Simulation, StopCondition};
/// use dynring_graph::{Handedness, NodeId, RingTopology};
/// use dynring_model::{Decision, LocalDirection, Protocol, Snapshot, TerminationKind};
///
/// // A user-defined protocol the catalogue has never heard of: it walks
/// // right forever (it cannot explore alone, but it can tag along).
/// #[derive(Debug, Clone)]
/// struct RightWalker;
///
/// impl Protocol for RightWalker {
///     fn name(&self) -> &'static str { "right-walker" }
///     fn termination_kind(&self) -> TerminationKind { TerminationKind::Unconscious }
///     fn decide(&mut self, _snapshot: &Snapshot) -> Decision {
///         Decision::Move(LocalDirection::Right)
///     }
///     fn has_terminated(&self) -> bool { false }
///     fn clone_box(&self) -> Box<dyn Protocol> { Box::new(self.clone()) }
/// }
///
/// // Two catalogue agents on the enum fast path (zero virtual calls in
/// // their Compute dispatch) plus the custom protocol through the boxed
/// // escape hatch, all in one simulation.
/// let alg = Algorithm::KnownBound { upper_bound: 8 };
/// let ring = RingTopology::new(8)?;
/// let mut sim = Simulation::builder(ring)
///     .agent_program(NodeId::new(0), Handedness::LeftIsCcw, alg.instantiate_enum())
///     .agent_program(NodeId::new(4), Handedness::LeftIsCcw, alg.instantiate_enum())
///     .agent(NodeId::new(2), Handedness::LeftIsCcw, Box::new(RightWalker))
///     .activation(Box::new(FullActivation))
///     .edges(Box::new(RandomEdge::new(0.5, 7)))
///     .build()?;
/// let report = sim.run(200, StopCondition::Explored);
/// assert!(report.explored());
///
/// // The enum is itself a `Protocol`, so it can cross the boxed boundary
/// // too when type erasure is genuinely needed.
/// let boxed: Box<dyn Protocol> = Box::new(alg.instantiate_enum());
/// assert_eq!(boxed.name(), CatalogProtocol::KnownBound(
///     dynring_core::fsync::KnownBound::new(8)).name());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub enum CatalogProtocol {
    /// Figure 1 — `KnownNNoChirality` (Theorems 3–4).
    KnownBound(KnownBound),
    /// Figure 3 — `UnconsciousExploration` (Theorem 5).
    Unconscious(Unconscious),
    /// Figure 4 — `LandmarkWithChirality` (Theorem 6).
    LandmarkChirality(LandmarkChirality),
    /// Figures 8 and 13 — the landmark algorithms without chirality
    /// (Theorems 7–8), covering both `Algorithm::LandmarkNoChirality` and
    /// `Algorithm::StartFromLandmarkNoChirality`.
    LandmarkNoChirality(LandmarkNoChirality),
    /// Figure 14 — `PTBoundWithChirality` (Theorems 12–13).
    PtBoundChirality(PtBoundChirality),
    /// Figure 17 — `PTLandmarkWithChirality` (Theorems 14–15).
    PtLandmarkChirality(PtLandmarkChirality),
    /// Figure 18 — the no-chirality SSYNC family (Theorems 16–17 and 20),
    /// covering the `PtBoundNoChirality`, `PtLandmarkNoChirality` and
    /// `EtBoundNoChirality` algorithm entries.
    PtNoChirality(PtNoChirality),
    /// Theorem 18 — `ETUnconscious`.
    EtUnconscious(EtUnconscious),
    /// Observation 1 — the single-agent strawman (cannot succeed).
    LoneWalker(LoneWalker),
}

/// Statically dispatches `$body` over every [`CatalogProtocol`] variant,
/// binding the wrapped concrete protocol to `$inner`.
macro_rules! dispatch {
    ($value:expr, $inner:ident => $body:expr) => {
        match $value {
            CatalogProtocol::KnownBound($inner) => $body,
            CatalogProtocol::Unconscious($inner) => $body,
            CatalogProtocol::LandmarkChirality($inner) => $body,
            CatalogProtocol::LandmarkNoChirality($inner) => $body,
            CatalogProtocol::PtBoundChirality($inner) => $body,
            CatalogProtocol::PtLandmarkChirality($inner) => $body,
            CatalogProtocol::PtNoChirality($inner) => $body,
            CatalogProtocol::EtUnconscious($inner) => $body,
            CatalogProtocol::LoneWalker($inner) => $body,
        }
    };
}

impl Clone for CatalogProtocol {
    fn clone(&self) -> Self {
        match self {
            CatalogProtocol::KnownBound(p) => CatalogProtocol::KnownBound(p.clone()),
            CatalogProtocol::Unconscious(p) => CatalogProtocol::Unconscious(p.clone()),
            CatalogProtocol::LandmarkChirality(p) => CatalogProtocol::LandmarkChirality(p.clone()),
            CatalogProtocol::LandmarkNoChirality(p) => {
                CatalogProtocol::LandmarkNoChirality(p.clone())
            }
            CatalogProtocol::PtBoundChirality(p) => CatalogProtocol::PtBoundChirality(p.clone()),
            CatalogProtocol::PtLandmarkChirality(p) => {
                CatalogProtocol::PtLandmarkChirality(p.clone())
            }
            CatalogProtocol::PtNoChirality(p) => CatalogProtocol::PtNoChirality(p.clone()),
            CatalogProtocol::EtUnconscious(p) => CatalogProtocol::EtUnconscious(p.clone()),
            CatalogProtocol::LoneWalker(p) => CatalogProtocol::LoneWalker(p.clone()),
        }
    }

    /// Variant-matching state copy: when both sides hold the same variant the
    /// copy delegates to the concrete protocol's `clone_from` (which reuses
    /// existing heap capacity where the type provides one), so refreshing an
    /// engine probe from a live catalogue protocol is allocation-free in the
    /// steady state — and needs no `as_any` downcast.
    fn clone_from(&mut self, source: &Self) {
        match (self, source) {
            (CatalogProtocol::KnownBound(dst), CatalogProtocol::KnownBound(src)) => {
                dst.clone_from(src);
            }
            (CatalogProtocol::Unconscious(dst), CatalogProtocol::Unconscious(src)) => {
                dst.clone_from(src);
            }
            (CatalogProtocol::LandmarkChirality(dst), CatalogProtocol::LandmarkChirality(src)) => {
                dst.clone_from(src);
            }
            (
                CatalogProtocol::LandmarkNoChirality(dst),
                CatalogProtocol::LandmarkNoChirality(src),
            ) => dst.clone_from(src),
            (CatalogProtocol::PtBoundChirality(dst), CatalogProtocol::PtBoundChirality(src)) => {
                dst.clone_from(src);
            }
            (
                CatalogProtocol::PtLandmarkChirality(dst),
                CatalogProtocol::PtLandmarkChirality(src),
            ) => dst.clone_from(src),
            (CatalogProtocol::PtNoChirality(dst), CatalogProtocol::PtNoChirality(src)) => {
                dst.clone_from(src);
            }
            (CatalogProtocol::EtUnconscious(dst), CatalogProtocol::EtUnconscious(src)) => {
                dst.clone_from(src);
            }
            (CatalogProtocol::LoneWalker(dst), CatalogProtocol::LoneWalker(src)) => {
                dst.clone_from(src);
            }
            (dst, src) => *dst = src.clone(),
        }
    }
}

/// The enum is itself a [`Protocol`], so a `CatalogProtocol` can cross any
/// `Box<dyn Protocol>` boundary; every method forwards to the wrapped state
/// machine through the static `match`, and the trace-facing strings (`name`,
/// `state_label`) are bit-identical to the wrapped protocol's own.
impl Protocol for CatalogProtocol {
    fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }

    fn termination_kind(&self) -> TerminationKind {
        dispatch!(self, p => p.termination_kind())
    }

    #[inline]
    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        dispatch!(self, p => p.decide(snapshot))
    }

    fn has_terminated(&self) -> bool {
        dispatch!(self, p => p.has_terminated())
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        dynring_model::clone_state_from(self, src)
    }

    fn state_label(&self) -> String {
        dispatch!(self, p => p.state_label())
    }

    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        // A leading variant tag keeps encodings of different catalogue
        // algorithms disjoint even when their field encodings would collide.
        out.push(match self {
            CatalogProtocol::KnownBound(_) => 0,
            CatalogProtocol::Unconscious(_) => 1,
            CatalogProtocol::LandmarkChirality(_) => 2,
            CatalogProtocol::LandmarkNoChirality(_) => 3,
            CatalogProtocol::PtBoundChirality(_) => 4,
            CatalogProtocol::PtLandmarkChirality(_) => 5,
            CatalogProtocol::PtNoChirality(_) => 6,
            CatalogProtocol::EtUnconscious(_) => 7,
            CatalogProtocol::LoneWalker(_) => 8,
        });
        dispatch!(self, p => p.write_state_key(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_instantiates_every_algorithm() {
        for alg in Algorithm::full_catalog(8) {
            let agent = alg.instantiate();
            assert!(!agent.name().is_empty());
            assert!(!agent.has_terminated());
        }
    }

    #[test]
    fn agent_counts_match_the_paper() {
        assert_eq!(Algorithm::LoneWalker { patience: 0 }.required_agents(), 1);
        assert_eq!(Algorithm::KnownBound { upper_bound: 8 }.required_agents(), 2);
        assert_eq!(Algorithm::PtBoundNoChirality { upper_bound: 8 }.required_agents(), 3);
        assert_eq!(Algorithm::EtBoundNoChirality { ring_size: 8 }.required_agents(), 3);
    }

    #[test]
    fn landmark_and_chirality_requirements() {
        assert!(Algorithm::LandmarkChirality.needs_landmark());
        assert!(Algorithm::LandmarkChirality.needs_chirality());
        assert!(Algorithm::LandmarkNoChirality.needs_landmark());
        assert!(!Algorithm::LandmarkNoChirality.needs_chirality());
        assert!(!Algorithm::KnownBound { upper_bound: 5 }.needs_landmark());
        assert!(Algorithm::PtLandmarkChirality.needs_chirality());
        assert!(!Algorithm::PtBoundNoChirality { upper_bound: 5 }.needs_chirality());
    }

    #[test]
    fn synchrony_families() {
        assert_eq!(Algorithm::Unconscious.family(), AlgorithmFamily::Fsync);
        assert_eq!(
            Algorithm::PtLandmarkChirality.synchrony(),
            SynchronyModel::Ssync(TransportModel::PassiveTransport)
        );
        assert_eq!(
            Algorithm::EtUnconscious.synchrony(),
            SynchronyModel::Ssync(TransportModel::EventualTransport)
        );
        assert_eq!(Algorithm::KnownBound { upper_bound: 4 }.synchrony(), SynchronyModel::Fsync);
    }

    #[test]
    fn termination_kinds() {
        assert_eq!(
            Algorithm::KnownBound { upper_bound: 4 }.termination_kind(),
            TerminationKind::Explicit
        );
        assert_eq!(Algorithm::Unconscious.termination_kind(), TerminationKind::Unconscious);
        assert_eq!(
            Algorithm::PtBoundChirality { upper_bound: 4 }.termination_kind(),
            TerminationKind::Partial
        );
    }

    #[test]
    fn display_uses_protocol_names() {
        assert_eq!(Algorithm::LandmarkChirality.to_string(), "LandmarkWithChirality");
        assert_eq!(
            Algorithm::StartFromLandmarkNoChirality.to_string(),
            "StartFromLandmarkNoChirality"
        );
    }

    #[test]
    fn enum_and_boxed_instantiations_agree_on_every_algorithm() {
        for alg in Algorithm::full_catalog(8) {
            let enumed = alg.instantiate_enum();
            let boxed = alg.instantiate();
            assert_eq!(enumed.name(), boxed.name(), "{alg:?}");
            assert_eq!(enumed.termination_kind(), boxed.termination_kind(), "{alg:?}");
            assert_eq!(enumed.has_terminated(), boxed.has_terminated(), "{alg:?}");
            assert_eq!(enumed.state_label(), boxed.state_label(), "{alg:?}");
        }
    }

    #[test]
    fn enum_clone_from_copies_across_matching_variants() {
        let mut probe = Algorithm::KnownBound { upper_bound: 4 }.instantiate_enum();
        let live = Algorithm::KnownBound { upper_bound: 9 }.instantiate_enum();
        probe.clone_from(&live);
        assert_eq!(probe.state_label(), live.state_label());
        // A variant mismatch falls back to a full clone of the source.
        let other = Algorithm::Unconscious.instantiate_enum();
        probe.clone_from(&other);
        assert_eq!(probe.name(), "UnconsciousExploration");
    }

    #[test]
    fn enum_supports_the_boxed_state_copy_api() {
        let live: Box<dyn Protocol> =
            Box::new(Algorithm::LandmarkNoChirality.instantiate_enum());
        let mut probe = live.clone_box();
        assert!(probe.clone_from_box(live.as_ref()));
        assert_eq!(probe.state_label(), live.state_label());
        // Copying from a non-enum protocol is refused (type mismatch).
        let concrete = Algorithm::LandmarkNoChirality.instantiate();
        assert!(!probe.clone_from_box(concrete.as_ref()));
    }

    #[test]
    fn assumptions_are_consistent() {
        let a = Algorithm::PtBoundNoChirality { upper_bound: 10 }.assumptions();
        assert_eq!(a.agents, 3);
        assert!(a.knows_upper_bound);
        assert!(!a.knows_exact_size);
        assert!(!a.chirality);
        let b = Algorithm::EtBoundNoChirality { ring_size: 10 }.assumptions();
        assert!(b.knows_exact_size);
    }
}
