//! A registry of every algorithm in the paper.
//!
//! The analysis and benchmark crates enumerate this catalogue to build the
//! feasibility map (Tables 1–4); examples use it to construct agents by name.

use crate::fsync::{KnownBound, LandmarkChirality, LandmarkNoChirality, Unconscious};
use crate::single::LoneWalker;
use crate::ssync::{EtUnconscious, PtBoundChirality, PtLandmarkChirality, PtNoChirality};
use dynring_model::{
    Protocol, ScenarioAssumptions, SynchronyModel, TerminationKind, TransportModel,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The synchrony family an algorithm is designed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmFamily {
    /// Fully synchronous algorithms (Section 3).
    Fsync,
    /// Semi-synchronous algorithms for the PT model (Section 4.2).
    SsyncPt,
    /// Semi-synchronous algorithms for the ET model (Section 4.3).
    SsyncEt,
    /// Single-agent strawman (Observation 1).
    SingleAgent,
}

/// Every algorithm of the paper, with enough parameters to instantiate it.
///
/// ```
/// use dynring_core::Algorithm;
///
/// let alg = Algorithm::KnownBound { upper_bound: 16 };
/// let agent = alg.instantiate();
/// assert_eq!(agent.name(), "KnownNNoChirality");
/// assert_eq!(alg.required_agents(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Figure 1 — FSYNC, two agents, known upper bound, no chirality.
    KnownBound {
        /// The known upper bound `N ≥ n`.
        upper_bound: usize,
    },
    /// Figure 3 — FSYNC, two agents, no knowledge, unconscious.
    Unconscious,
    /// Figure 4 — FSYNC, two agents, landmark + chirality.
    LandmarkChirality,
    /// Figure 13 — FSYNC, two agents, landmark, no chirality.
    LandmarkNoChirality,
    /// Figure 8 — FSYNC, two agents, landmark, no chirality, starting at the
    /// landmark.
    StartFromLandmarkNoChirality,
    /// Figure 14 — SSYNC/PT, two agents, chirality, known upper bound.
    PtBoundChirality {
        /// The known upper bound `N ≥ n`.
        upper_bound: usize,
    },
    /// Figure 17 — SSYNC/PT, two agents, chirality, landmark.
    PtLandmarkChirality,
    /// Figure 18 — SSYNC/PT, three agents, no chirality, known upper bound.
    PtBoundNoChirality {
        /// The known upper bound `N ≥ n`.
        upper_bound: usize,
    },
    /// Theorem 17 — SSYNC/PT, three agents, no chirality, landmark.
    PtLandmarkNoChirality,
    /// Theorem 20 — SSYNC/ET, three agents, no chirality, exact size.
    EtBoundNoChirality {
        /// The exactly known ring size `n`.
        ring_size: usize,
    },
    /// Theorem 18 — SSYNC/ET, two agents, chirality, unconscious.
    EtUnconscious,
    /// Observation 1 — a single agent (cannot succeed).
    LoneWalker {
        /// Blocked rounds after which the walker reverses (0 = never).
        patience: u64,
    },
}

impl Algorithm {
    /// Instantiates a fresh agent running this algorithm.
    #[must_use]
    pub fn instantiate(&self) -> Box<dyn Protocol> {
        match *self {
            Algorithm::KnownBound { upper_bound } => Box::new(KnownBound::new(upper_bound)),
            Algorithm::Unconscious => Box::new(Unconscious::new()),
            Algorithm::LandmarkChirality => Box::new(LandmarkChirality::new()),
            Algorithm::LandmarkNoChirality => Box::new(LandmarkNoChirality::new()),
            Algorithm::StartFromLandmarkNoChirality => {
                Box::new(LandmarkNoChirality::starting_from_landmark())
            }
            Algorithm::PtBoundChirality { upper_bound } => {
                Box::new(PtBoundChirality::new(upper_bound))
            }
            Algorithm::PtLandmarkChirality => Box::new(PtLandmarkChirality::new()),
            Algorithm::PtBoundNoChirality { upper_bound } => {
                Box::new(PtNoChirality::with_upper_bound(upper_bound))
            }
            Algorithm::PtLandmarkNoChirality => Box::new(PtNoChirality::with_landmark()),
            Algorithm::EtBoundNoChirality { ring_size } => {
                Box::new(PtNoChirality::for_eventual_transport(ring_size))
            }
            Algorithm::EtUnconscious => Box::new(EtUnconscious::new()),
            Algorithm::LoneWalker { patience } => Box::new(LoneWalker::new(patience)),
        }
    }

    /// The synchrony family the algorithm belongs to.
    #[must_use]
    pub fn family(&self) -> AlgorithmFamily {
        match self {
            Algorithm::KnownBound { .. }
            | Algorithm::Unconscious
            | Algorithm::LandmarkChirality
            | Algorithm::LandmarkNoChirality
            | Algorithm::StartFromLandmarkNoChirality => AlgorithmFamily::Fsync,
            Algorithm::PtBoundChirality { .. }
            | Algorithm::PtLandmarkChirality
            | Algorithm::PtBoundNoChirality { .. }
            | Algorithm::PtLandmarkNoChirality => AlgorithmFamily::SsyncPt,
            Algorithm::EtBoundNoChirality { .. } | Algorithm::EtUnconscious => {
                AlgorithmFamily::SsyncEt
            }
            Algorithm::LoneWalker { .. } => AlgorithmFamily::SingleAgent,
        }
    }

    /// Number of agents the algorithm is designed for.
    #[must_use]
    pub fn required_agents(&self) -> usize {
        match self {
            Algorithm::LoneWalker { .. } => 1,
            Algorithm::PtBoundNoChirality { .. }
            | Algorithm::PtLandmarkNoChirality
            | Algorithm::EtBoundNoChirality { .. } => 3,
            _ => 2,
        }
    }

    /// Whether the algorithm needs a landmark node.
    #[must_use]
    pub fn needs_landmark(&self) -> bool {
        matches!(
            self,
            Algorithm::LandmarkChirality
                | Algorithm::LandmarkNoChirality
                | Algorithm::StartFromLandmarkNoChirality
                | Algorithm::PtLandmarkChirality
                | Algorithm::PtLandmarkNoChirality
        )
    }

    /// Whether the algorithm assumes common chirality.
    #[must_use]
    pub fn needs_chirality(&self) -> bool {
        matches!(
            self,
            Algorithm::LandmarkChirality
                | Algorithm::PtBoundChirality { .. }
                | Algorithm::PtLandmarkChirality
                | Algorithm::EtUnconscious
        )
    }

    /// The termination discipline the algorithm promises.
    #[must_use]
    pub fn termination_kind(&self) -> TerminationKind {
        self.instantiate().termination_kind()
    }

    /// The synchrony / transport model under which the algorithm's guarantee
    /// holds.
    #[must_use]
    pub fn synchrony(&self) -> SynchronyModel {
        match self.family() {
            AlgorithmFamily::Fsync | AlgorithmFamily::SingleAgent => SynchronyModel::Fsync,
            AlgorithmFamily::SsyncPt => SynchronyModel::Ssync(TransportModel::PassiveTransport),
            AlgorithmFamily::SsyncEt => SynchronyModel::Ssync(TransportModel::EventualTransport),
        }
    }

    /// The scenario assumptions under which the paper proves the algorithm
    /// correct, used to label feasibility-map rows.
    #[must_use]
    pub fn assumptions(&self) -> ScenarioAssumptions {
        let knows_exact = matches!(self, Algorithm::EtBoundNoChirality { .. });
        let knows_bound = matches!(
            self,
            Algorithm::KnownBound { .. }
                | Algorithm::PtBoundChirality { .. }
                | Algorithm::PtBoundNoChirality { .. }
        );
        ScenarioAssumptions {
            synchrony: self.synchrony(),
            agents: self.required_agents(),
            chirality: self.needs_chirality(),
            landmark: self.needs_landmark(),
            knows_exact_size: knows_exact,
            knows_upper_bound: knows_bound,
            anonymous_agents: true,
        }
    }

    /// Every algorithm of the paper, instantiated with the given ring size
    /// (used by sweeps that iterate over the full catalogue).
    #[must_use]
    pub fn full_catalog(ring_size: usize) -> Vec<Algorithm> {
        vec![
            Algorithm::KnownBound { upper_bound: ring_size },
            Algorithm::Unconscious,
            Algorithm::LandmarkChirality,
            Algorithm::LandmarkNoChirality,
            Algorithm::StartFromLandmarkNoChirality,
            Algorithm::PtBoundChirality { upper_bound: ring_size },
            Algorithm::PtLandmarkChirality,
            Algorithm::PtBoundNoChirality { upper_bound: ring_size },
            Algorithm::PtLandmarkNoChirality,
            Algorithm::EtBoundNoChirality { ring_size },
            Algorithm::EtUnconscious,
            Algorithm::LoneWalker { patience: 0 },
        ]
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.instantiate().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_instantiates_every_algorithm() {
        for alg in Algorithm::full_catalog(8) {
            let agent = alg.instantiate();
            assert!(!agent.name().is_empty());
            assert!(!agent.has_terminated());
        }
    }

    #[test]
    fn agent_counts_match_the_paper() {
        assert_eq!(Algorithm::LoneWalker { patience: 0 }.required_agents(), 1);
        assert_eq!(Algorithm::KnownBound { upper_bound: 8 }.required_agents(), 2);
        assert_eq!(Algorithm::PtBoundNoChirality { upper_bound: 8 }.required_agents(), 3);
        assert_eq!(Algorithm::EtBoundNoChirality { ring_size: 8 }.required_agents(), 3);
    }

    #[test]
    fn landmark_and_chirality_requirements() {
        assert!(Algorithm::LandmarkChirality.needs_landmark());
        assert!(Algorithm::LandmarkChirality.needs_chirality());
        assert!(Algorithm::LandmarkNoChirality.needs_landmark());
        assert!(!Algorithm::LandmarkNoChirality.needs_chirality());
        assert!(!Algorithm::KnownBound { upper_bound: 5 }.needs_landmark());
        assert!(Algorithm::PtLandmarkChirality.needs_chirality());
        assert!(!Algorithm::PtBoundNoChirality { upper_bound: 5 }.needs_chirality());
    }

    #[test]
    fn synchrony_families() {
        assert_eq!(Algorithm::Unconscious.family(), AlgorithmFamily::Fsync);
        assert_eq!(
            Algorithm::PtLandmarkChirality.synchrony(),
            SynchronyModel::Ssync(TransportModel::PassiveTransport)
        );
        assert_eq!(
            Algorithm::EtUnconscious.synchrony(),
            SynchronyModel::Ssync(TransportModel::EventualTransport)
        );
        assert_eq!(Algorithm::KnownBound { upper_bound: 4 }.synchrony(), SynchronyModel::Fsync);
    }

    #[test]
    fn termination_kinds() {
        assert_eq!(
            Algorithm::KnownBound { upper_bound: 4 }.termination_kind(),
            TerminationKind::Explicit
        );
        assert_eq!(Algorithm::Unconscious.termination_kind(), TerminationKind::Unconscious);
        assert_eq!(
            Algorithm::PtBoundChirality { upper_bound: 4 }.termination_kind(),
            TerminationKind::Partial
        );
    }

    #[test]
    fn display_uses_protocol_names() {
        assert_eq!(Algorithm::LandmarkChirality.to_string(), "LandmarkWithChirality");
        assert_eq!(
            Algorithm::StartFromLandmarkNoChirality.to_string(),
            "StartFromLandmarkNoChirality"
        );
    }

    #[test]
    fn assumptions_are_consistent() {
        let a = Algorithm::PtBoundNoChirality { upper_bound: 10 }.assumptions();
        assert_eq!(a.agents, 3);
        assert!(a.knows_upper_bound);
        assert!(!a.knows_exact_size);
        assert!(!a.chirality);
        let b = Algorithm::EtBoundNoChirality { ring_size: 10 }.assumptions();
        assert!(b.knows_exact_size);
    }
}
