//! Exploration protocols for 1-interval-connected dynamic rings.
//!
//! This crate is the paper's primary contribution turned into code: every
//! constructive algorithm of *Live Exploration of Dynamic Rings*
//! (Di Luna, Dobrev, Flocchini, Santoro — ICDCS 2016 / arXiv:1512.05306v4)
//! implemented as a deterministic [`Protocol`](dynring_model::Protocol) state
//! machine, exactly following the pseudo-code of Figures 1, 3, 4, 8, 13, 14,
//! 17 and 18.
//!
//! # Layout
//!
//! * [`counters`] — the bookkeeping variables shared by all algorithms
//!   (`Ttime`, `Tsteps`, `Etime`, `Esteps`, `Btime`, `Ntime`, `Tnodes`,
//!   landmark distance and learned ring size);
//! * [`fsync`] — fully synchronous algorithms: [`fsync::KnownBound`]
//!   (Fig. 1), [`fsync::Unconscious`] (Fig. 3),
//!   [`fsync::LandmarkChirality`] (Fig. 4),
//!   [`fsync::LandmarkNoChirality`] (Figs. 8 and 13) together with the ID
//!   construction ([`fsync::AgentIdentifier`]) and the ID-driven direction
//!   sequences ([`fsync::DirectionSequence`]);
//! * [`ssync`] — semi-synchronous algorithms for the PT and ET transport
//!   models: [`ssync::PtBoundChirality`] (Fig. 14),
//!   [`ssync::PtLandmarkChirality`] (Fig. 17),
//!   [`ssync::PtNoChirality`] (Fig. 18, with its landmark and ET variants)
//!   and [`ssync::EtUnconscious`] (Theorem 18);
//! * [`single`] — the lone wanderer used to demonstrate Observation 1 /
//!   Corollary 1;
//! * [`catalog`] — a registry of all algorithms, used by the analysis and
//!   benchmark crates to enumerate the feasibility map.
//!
//! # Quick example
//!
//! ```
//! use dynring_core::fsync::KnownBound;
//! use dynring_model::Protocol;
//!
//! // Two anonymous agents knowing the upper bound N = 8 explore any
//! // 1-interval-connected ring of size ≤ 8 and terminate by round 3N − 6.
//! let agent = KnownBound::new(8);
//! assert_eq!(agent.name(), "KnownNNoChirality");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod counters;
pub mod fsync;
pub mod single;
pub mod ssync;

pub use catalog::{Algorithm, AlgorithmFamily, CatalogProtocol};
pub use counters::Counters;
