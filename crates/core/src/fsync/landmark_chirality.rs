//! Algorithm `LandmarkWithChirality` (Figure 4, Theorem 6).
//!
//! Two anonymous agents with chirality, no knowledge of the ring size, on a
//! ring with a landmark node: exploration with explicit termination of both
//! agents in `O(n)` rounds.
//!
//! # Transition semantics
//!
//! The paper's `Explore`/`LExplore` procedures exit as soon as a predicate is
//! satisfied and the agent "does a transition to the specified state". This
//! implementation uses the following uniform rule, which reproduces the tight
//! schedules of the paper (e.g. the `3n − 6` worst case of Figure 2) while
//! avoiding spurious re-triggering of the predicate that caused the
//! transition:
//!
//! * entering an ordinary exploring state runs its entry assignments and
//!   performs that state's move **in the same round**, without re-evaluating
//!   the new state's predicates until the next round;
//! * entering one of the imperative communication states (`BComm`, `FComm`)
//!   runs the imperative code of Figure 4 immediately, as the paper requires
//!   ("change state … and process it in the same round").

use crate::counters::Counters;
use dynring_model::{Decision, LocalDirection, Protocol, Snapshot, TerminationKind};
use serde::{Deserialize, Serialize};

/// States of Figure 4 (the two communication states are split into their
/// signal/wait sub-phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LcState {
    /// Moving left before the first catch.
    Init,
    /// Role B: moving right after catching F.
    Bounce,
    /// Role B: moving left again, trying to catch up with F.
    Return,
    /// Role F: moving left after being caught.
    Forward,
    /// B signalled termination by moving right; terminate next round.
    BCommSignal,
    /// B stayed put for one round to learn whether F knows the size.
    BCommWait,
    /// F signalled (it knows the size) by staying on the left port; terminate
    /// next round.
    FCommSignal,
    /// F stepped back into the node for one round to learn whether B wants to
    /// terminate.
    FCommWait,
    /// Terminal state.
    Terminate,
}

/// Algorithm `LandmarkWithChirality` of Figure 4.
///
/// ```
/// use dynring_core::fsync::LandmarkChirality;
/// use dynring_model::{Protocol, TerminationKind};
///
/// let agent = LandmarkChirality::new();
/// assert_eq!(agent.termination_kind(), TerminationKind::Explicit);
/// assert_eq!(agent.name(), "LandmarkWithChirality");
/// ```
///
/// In the engine's enum-dispatched runtime this type is carried by the
/// [`CatalogProtocol::LandmarkChirality`](crate::CatalogProtocol) fast-path variant
/// (statically dispatched Compute); boxing it through
/// [`Protocol::clone_box`] or `Algorithm::instantiate` selects the
/// virtual-dispatch escape hatch instead. See `docs/ARCHITECTURE.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LandmarkChirality {
    state: LcState,
    bounce_steps: Option<u64>,
    return_steps: Option<u64>,
    counters: Counters,
}

impl Default for LandmarkChirality {
    fn default() -> Self {
        Self::new()
    }
}

impl LandmarkChirality {
    /// Creates a fresh agent in state `Init`.
    #[must_use]
    pub fn new() -> Self {
        LandmarkChirality {
            state: LcState::Init,
            bounce_steps: None,
            return_steps: None,
            counters: Counters::new(),
        }
    }

    /// The agent's current state (for traces and tests).
    #[must_use]
    pub const fn state(&self) -> LcState {
        self.state
    }

    /// Access to the agent's counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    fn knows_size(&self) -> bool {
        self.counters.knows_size()
    }

    fn size(&self) -> Option<u64> {
        self.counters.known_size()
    }

    fn enter_bounce(&mut self) -> Decision {
        self.state = LcState::Bounce;
        self.counters.reset_explore();
        Decision::Move(LocalDirection::Right)
    }

    fn enter_return(&mut self) -> Decision {
        self.bounce_steps = Some(self.counters.esteps());
        self.state = LcState::Return;
        self.counters.reset_explore();
        Decision::Move(LocalDirection::Left)
    }

    fn enter_forward(&mut self) -> Decision {
        self.state = LcState::Forward;
        self.counters.reset_explore();
        Decision::Move(LocalDirection::Left)
    }

    fn enter_terminate(&mut self) -> Decision {
        self.state = LcState::Terminate;
        Decision::Terminate
    }

    /// The imperative `BComm` state of Figure 4, entered when B catches F.
    fn enter_bcomm(&mut self) -> Decision {
        let return_steps = self.counters.esteps();
        self.return_steps = Some(return_steps);
        let waited_on_same_edge =
            self.bounce_steps.is_some_and(|bounce| return_steps <= 2 * bounce);
        if waited_on_same_edge || self.knows_size() {
            // Signal the need to terminate by moving right, terminate next round.
            self.state = LcState::BCommSignal;
            Decision::Move(LocalDirection::Right)
        } else {
            // Stay one round; the decision is taken next round depending on
            // whether F stayed in the node.
            self.state = LcState::BCommWait;
            Decision::Stay
        }
    }

    /// The imperative `FComm` state of Figure 4, entered when F is caught by B
    /// after the roles have been fixed.
    fn enter_fcomm(&mut self) -> Decision {
        if self.knows_size() {
            // Signal that the ring is explored by keeping the left port,
            // terminate next round.
            self.state = LcState::FCommSignal;
            Decision::Move(LocalDirection::Left)
        } else {
            // Step back into the node for one round.
            self.state = LcState::FCommWait;
            Decision::Retreat
        }
    }

    fn step(&mut self, snapshot: &Snapshot) -> Decision {
        let c_ntime = self.counters.ntime();
        match self.state {
            LcState::Init => {
                if self.size().is_some_and(|n| c_ntime > 2 * n) {
                    return self.enter_terminate();
                }
                if snapshot.catches(LocalDirection::Left) {
                    return self.enter_bounce();
                }
                if snapshot.caught() {
                    return self.enter_forward();
                }
                Decision::Move(LocalDirection::Left)
            }
            LcState::Bounce => {
                if snapshot.meeting() {
                    return self.enter_terminate();
                }
                if self.counters.etime() > 2 * self.counters.esteps() || c_ntime > 0 {
                    return self.enter_return();
                }
                if snapshot.catches(LocalDirection::Right) {
                    return self.enter_bcomm();
                }
                Decision::Move(LocalDirection::Right)
            }
            LcState::Return => {
                if self.size().is_some_and(|n| c_ntime > 3 * n) || snapshot.caught() {
                    return self.enter_terminate();
                }
                if snapshot.catches(LocalDirection::Left) {
                    return self.enter_bcomm();
                }
                Decision::Move(LocalDirection::Left)
            }
            LcState::Forward => {
                if self.size().is_some_and(|n| c_ntime >= 7 * n)
                    || snapshot.meeting()
                    || snapshot.catches(LocalDirection::Left)
                {
                    return self.enter_terminate();
                }
                if snapshot.caught() {
                    return self.enter_fcomm();
                }
                Decision::Move(LocalDirection::Left)
            }
            LcState::BCommSignal | LcState::FCommSignal => self.enter_terminate(),
            LcState::BCommWait => {
                if snapshot.occupancy.in_node > 0 {
                    // F waited in the node: it does not know whether the ring
                    // is explored; resume the algorithm.
                    self.enter_bounce()
                } else {
                    // F left (or is waiting on a port): it knows the ring is
                    // explored and signalled so.
                    self.enter_terminate()
                }
            }
            LcState::FCommWait => {
                if snapshot.occupancy.in_node > 0 {
                    // B stayed: no termination signal; resume the algorithm.
                    self.enter_forward()
                } else {
                    // B left or holds a port: it signalled termination.
                    self.enter_terminate()
                }
            }
            LcState::Terminate => Decision::Terminate,
        }
    }
}

impl Protocol for LandmarkChirality {
    fn name(&self) -> &'static str {
        "LandmarkWithChirality"
    }

    fn termination_kind(&self) -> TerminationKind {
        TerminationKind::Explicit
    }

    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        self.counters.absorb(snapshot);
        let decision = self.step(snapshot);
        self.counters.record_decision(decision);
        decision
    }

    fn has_terminated(&self) -> bool {
        self.state == LcState::Terminate
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        dynring_model::clone_state_from(self, src)
    }

    fn state_label(&self) -> String {
        format!(
            "{:?}(Ntime={},size={:?},bounceSteps={:?})",
            self.state,
            self.counters.ntime(),
            self.counters.known_size(),
            self.bounce_steps
        )
    }

    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        use dynring_model::statekey::push_opt_u64;
        out.push(match self.state {
            LcState::Init => 0,
            LcState::Bounce => 1,
            LcState::Return => 2,
            LcState::Forward => 3,
            LcState::BCommSignal => 4,
            LcState::BCommWait => 5,
            LcState::FCommSignal => 6,
            LcState::FCommWait => 7,
            LcState::Terminate => 8,
        });
        push_opt_u64(out, self.bounce_steps);
        push_opt_u64(out, self.return_steps);
        self.counters.write_state_key(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::{LocalPosition, NodeOccupancy, PriorOutcome};

    fn plain(prior: PriorOutcome, landmark: bool) -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: landmark,
            occupancy: NodeOccupancy::default(),
            prior,
            round_hint: None,
        }
    }

    fn catches_left(prior: PriorOutcome) -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 0, on_left_port: 1, on_right_port: 0 },
            prior,
            round_hint: None,
        }
    }

    fn caught_snapshot() -> Snapshot {
        Snapshot {
            position: LocalPosition::OnPort(LocalDirection::Left),
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 1, on_left_port: 0, on_right_port: 0 },
            prior: PriorOutcome::BlockedOnPort,
            round_hint: None,
        }
    }

    #[test]
    fn init_moves_left_until_an_event() {
        let mut a = LandmarkChirality::new();
        for _ in 0..10 {
            assert_eq!(a.decide(&plain(PriorOutcome::Moved, false)), Decision::Move(LocalDirection::Left));
        }
        assert_eq!(a.state(), LcState::Init);
    }

    #[test]
    fn catching_assigns_role_b_and_bounces_right_in_the_same_round() {
        let mut a = LandmarkChirality::new();
        assert_eq!(a.decide(&catches_left(PriorOutcome::Moved)), Decision::Move(LocalDirection::Right));
        assert_eq!(a.state(), LcState::Bounce);
    }

    #[test]
    fn being_caught_assigns_role_f_and_keeps_left() {
        let mut a = LandmarkChirality::new();
        assert_eq!(a.decide(&caught_snapshot()), Decision::Move(LocalDirection::Left));
        assert_eq!(a.state(), LcState::Forward);
        // The next round no longer satisfies `caught` (the prior outcome is a
        // fresh block, but F is still on the port and B may have left), so F
        // keeps moving left rather than entering FComm spuriously.
        let still_blocked = Snapshot {
            position: LocalPosition::OnPort(LocalDirection::Left),
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior: PriorOutcome::BlockedOnPort,
            round_hint: None,
        };
        assert_eq!(a.decide(&still_blocked), Decision::Move(LocalDirection::Left));
        assert_eq!(a.state(), LcState::Forward);
    }

    #[test]
    fn bounce_turns_into_return_when_blocked_too_long() {
        let mut a = LandmarkChirality::new();
        // Become B.
        let _ = a.decide(&catches_left(PriorOutcome::Moved));
        assert_eq!(a.state(), LcState::Bounce);
        // One successful step right, then blocked long enough that
        // Etime > 2*Esteps.
        assert_eq!(a.decide(&plain(PriorOutcome::Moved, false)), Decision::Move(LocalDirection::Right));
        let _ = a.decide(&plain(PriorOutcome::BlockedOnPort, false));
        let d = a.decide(&plain(PriorOutcome::BlockedOnPort, false));
        assert_eq!(a.state(), LcState::Return);
        assert_eq!(d, Decision::Move(LocalDirection::Left));
        // bounceSteps was recorded as the number of successful right-steps.
        assert_eq!(a.bounce_steps, Some(1));
    }

    #[test]
    fn bcomm_signals_termination_when_agents_waited_on_the_same_edge() {
        let mut a = LandmarkChirality::new();
        let _ = a.decide(&catches_left(PriorOutcome::Moved)); // -> Bounce
        // Immediately blocked: Etime>2Esteps after two blocked rounds -> Return
        let _ = a.decide(&plain(PriorOutcome::BlockedOnPort, false));
        let _ = a.decide(&plain(PriorOutcome::BlockedOnPort, false));
        assert_eq!(a.state(), LcState::Return);
        assert_eq!(a.bounce_steps, Some(0));
        // B immediately catches F again without having made any step:
        // returnSteps = 0 <= 2 * 0 -> signal and terminate.
        let d = a.decide(&catches_left(PriorOutcome::BlockedOnPort));
        assert_eq!(d, Decision::Move(LocalDirection::Right));
        assert_eq!(a.state(), LcState::BCommSignal);
        assert_eq!(a.decide(&plain(PriorOutcome::Moved, false)), Decision::Terminate);
        assert!(a.has_terminated());
    }

    #[test]
    fn bcomm_waits_and_resumes_when_f_stays_in_the_node() {
        let mut a = LandmarkChirality::new();
        let _ = a.decide(&catches_left(PriorOutcome::Moved)); // Bounce
        // Make some progress to the right so bounceSteps > 0 and the
        // same-edge test fails later.
        for _ in 0..4 {
            let _ = a.decide(&plain(PriorOutcome::Moved, false));
        }
        // Forced into Return by a long block.
        for _ in 0..20 {
            let _ = a.decide(&plain(PriorOutcome::BlockedOnPort, false));
            if a.state() == LcState::Return {
                break;
            }
        }
        assert_eq!(a.state(), LcState::Return);
        // Make more than 2*bounceSteps steps left before catching F again.
        for _ in 0..12 {
            let _ = a.decide(&plain(PriorOutcome::Moved, false));
        }
        let d = a.decide(&catches_left(PriorOutcome::Moved));
        assert_eq!(d, Decision::Stay);
        assert_eq!(a.state(), LcState::BCommWait);
        // F stayed in the node -> resume bouncing right.
        let resume = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 1, on_left_port: 0, on_right_port: 0 },
            prior: PriorOutcome::Idle,
            round_hint: None,
        };
        assert_eq!(a.decide(&resume), Decision::Move(LocalDirection::Right));
        assert_eq!(a.state(), LcState::Bounce);
    }

    #[test]
    fn bcomm_terminates_when_f_left_the_node() {
        let mut a = LandmarkChirality::new();
        let _ = a.decide(&catches_left(PriorOutcome::Moved)); // Bounce
        for _ in 0..4 {
            let _ = a.decide(&plain(PriorOutcome::Moved, false));
        }
        for _ in 0..20 {
            let _ = a.decide(&plain(PriorOutcome::BlockedOnPort, false));
            if a.state() == LcState::Return {
                break;
            }
        }
        for _ in 0..12 {
            let _ = a.decide(&plain(PriorOutcome::Moved, false));
        }
        let _ = a.decide(&catches_left(PriorOutcome::Moved));
        assert_eq!(a.state(), LcState::BCommWait);
        // F is gone (it signalled by trying to leave): terminate.
        assert_eq!(a.decide(&plain(PriorOutcome::Idle, false)), Decision::Terminate);
        assert!(a.has_terminated());
    }

    #[test]
    fn fcomm_retreats_then_resumes_when_b_stays() {
        let mut a = LandmarkChirality::new();
        let _ = a.decide(&caught_snapshot()); // Forward
        assert_eq!(a.state(), LcState::Forward);
        // Caught again later (B in the node, we are blocked on the port):
        // we do not know n, so retreat and wait.
        let d = a.decide(&caught_snapshot());
        assert_eq!(d, Decision::Retreat);
        assert_eq!(a.state(), LcState::FCommWait);
        // B is still in the node: resume Forward (move left).
        let resume = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 1, on_left_port: 0, on_right_port: 0 },
            prior: PriorOutcome::Idle,
            round_hint: None,
        };
        assert_eq!(a.decide(&resume), Decision::Move(LocalDirection::Left));
        assert_eq!(a.state(), LcState::Forward);
    }

    #[test]
    fn fcomm_terminates_when_b_left_the_node() {
        let mut a = LandmarkChirality::new();
        let _ = a.decide(&caught_snapshot()); // Forward
        let _ = a.decide(&caught_snapshot()); // FCommWait
        assert_eq!(a.state(), LcState::FCommWait);
        assert_eq!(a.decide(&plain(PriorOutcome::Idle, false)), Decision::Terminate);
        assert!(a.has_terminated());
    }

    #[test]
    fn forward_terminates_on_meeting() {
        let mut a = LandmarkChirality::new();
        let _ = a.decide(&caught_snapshot()); // Forward
        let meeting = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 1, on_left_port: 0, on_right_port: 0 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        };
        assert_eq!(a.decide(&meeting), Decision::Terminate);
        assert!(a.has_terminated());
    }

    #[test]
    fn lone_agent_terminates_after_learning_n_plus_two_loops() {
        // An agent alone (the other never seen) walking a ring of size 5 with
        // a landmark learns n after one full loop and terminates once
        // Ntime > 2n.
        let n = 5u64;
        let mut a = LandmarkChirality::new();
        let mut decisions = 0u64;
        let mut terminated_at = None;
        // Walk left forever; the landmark is every n-th node. Offset starts 0
        // at the landmark.
        let mut pos = 0i64;
        for round in 0..200 {
            let at_landmark = pos.rem_euclid(n as i64) == 0;
            let prior = if round == 0 { PriorOutcome::Idle } else { PriorOutcome::Moved };
            let d = a.decide(&plain(prior, at_landmark));
            decisions += 1;
            match d {
                Decision::Move(LocalDirection::Left) => pos -= 1,
                Decision::Terminate => {
                    terminated_at = Some(decisions);
                    break;
                }
                other => panic!("unexpected decision {other:?}"),
            }
        }
        let terminated_at = terminated_at.expect("agent must terminate");
        // It learns n after n moves (n+1 decisions), then needs 2n+1 more
        // completed rounds; well under 4n decisions total.
        assert!(terminated_at <= 4 * n, "terminated at {terminated_at}, expected ≤ {}", 4 * n);
        assert_eq!(a.counters().known_size(), Some(n));
    }
}
