//! Identifier construction by bit interleaving (Section 3.2.3, Figures 9–10).
//!
//! When two agents without chirality start from the landmark, each derives a
//! (hopefully distinct) identifier from the rounds at which it was first
//! blocked (`r1`), blocked for the second time (`r2`) and, in between, the
//! round at which it first crossed the landmark (`r3`, or 0 if it did not).
//! From these it computes
//!
//! * `k1 = r1`,
//! * `k2 = r2 − max(r1, r3)`,
//! * `k3 = max(0, r3 − r1)`,
//!
//! and the identifier is obtained by interleaving the bits of `k1`, `k2` and
//! `k3` (each padded with leading zeros to the length of the longest) —
//! taking, for every bit position, the bit of `k1`, then of `k2`, then of
//! `k3`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Minimal binary representation of `value` (at least one digit).
fn to_bits(value: u64) -> Vec<u8> {
    if value == 0 {
        return vec![0];
    }
    let len = 64 - value.leading_zeros() as usize;
    (0..len).rev().map(|i| ((value >> i) & 1) as u8).collect()
}

/// Interleaves the bits of `k1`, `k2`, `k3` (each padded with a prefix of
/// zeros to the length of the longest), producing the identifier's bit string
/// and its numeric value (leading zeros are ignored for the value, as in
/// Figure 9).
///
/// ```
/// use dynring_core::fsync::interleave_id;
///
/// // Figure 9, agent a: k1 = 2 (10), k2 = 2 (10), k3 = 0 (00)
/// let (bits, value) = interleave_id(2, 2, 0);
/// assert_eq!(bits, "110000");
/// assert_eq!(value, 48);
///
/// // Figure 9, agent b: k1 = 3 (011), k2 = 4 (100), k3 = 0 (000)
/// let (bits, value) = interleave_id(3, 4, 0);
/// assert_eq!(bits, "010100100");
/// assert_eq!(value, 164);
/// ```
#[must_use]
pub fn interleave_id(k1: u64, k2: u64, k3: u64) -> (String, u64) {
    let (b1, b2, b3) = (to_bits(k1), to_bits(k2), to_bits(k3));
    let width = b1.len().max(b2.len()).max(b3.len());
    let pad = |bits: &[u8]| -> Vec<u8> {
        let mut padded = vec![0u8; width - bits.len()];
        padded.extend_from_slice(bits);
        padded
    };
    let (b1, b2, b3) = (pad(&b1), pad(&b2), pad(&b3));
    let mut bits = String::with_capacity(3 * width);
    let mut value: u64 = 0;
    for i in 0..width {
        for bit in [b1[i], b2[i], b3[i]] {
            bits.push(if bit == 1 { '1' } else { '0' });
            value = (value << 1) | u64::from(bit);
        }
    }
    (bits, value)
}

/// The identifier an agent computes from its blocking history
/// (`StartFromLandmarkNoChirality`, state `Ready`).
#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AgentIdentifier {
    k1: u64,
    k2: u64,
    k3: u64,
    bits: String,
    value: u64,
}

// Manual `Clone` so that `clone_from` reuses the capacity of `bits` (the
// engine's probe pool refreshes protocol copies every round; see
// `dynring_model::Protocol::clone_from_box`).
impl Clone for AgentIdentifier {
    fn clone(&self) -> Self {
        AgentIdentifier {
            k1: self.k1,
            k2: self.k2,
            k3: self.k3,
            bits: self.bits.clone(),
            value: self.value,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.k1 = source.k1;
        self.k2 = source.k2;
        self.k3 = source.k3;
        self.bits.clone_from(&source.bits);
        self.value = source.value;
    }
}

impl AgentIdentifier {
    /// Builds the identifier from the three counters of Figure 8.
    #[must_use]
    pub fn from_counters(k1: u64, k2: u64, k3: u64) -> Self {
        let (bits, value) = interleave_id(k1, k2, k3);
        AgentIdentifier { k1, k2, k3, bits, value }
    }

    /// Builds the identifier from the raw blocking rounds `r1`, `r2`, `r3`
    /// (with `r3 = 0` meaning "the landmark was not crossed between `r1` and
    /// `r2`"), applying the formulas of Section 3.2.3.
    #[must_use]
    pub fn from_rounds(r1: u64, r2: u64, r3: u64) -> Self {
        let k1 = r1;
        let k2 = r2.saturating_sub(r1.max(r3));
        let k3 = r3.saturating_sub(r1);
        Self::from_counters(k1, k2, k3)
    }

    /// The numeric value of the identifier (leading zeros ignored).
    #[must_use]
    pub const fn value(&self) -> u64 {
        self.value
    }

    /// The full interleaved bit string, including leading zeros.
    #[must_use]
    pub fn bits(&self) -> &str {
        &self.bits
    }

    /// The component `k1`.
    #[must_use]
    pub const fn k1(&self) -> u64 {
        self.k1
    }

    /// The component `k2`.
    #[must_use]
    pub const fn k2(&self) -> u64 {
        self.k2
    }

    /// The component `k3`.
    #[must_use]
    pub const fn k3(&self) -> u64 {
        self.k3
    }

    /// Appends a packed, injective encoding of the identifier to `out`. The
    /// bit string and numeric value are pure functions of `(k1, k2, k3)`
    /// (every constructor derives them via [`interleave_id`]), so emitting
    /// the three components alone is injective on the whole struct.
    pub fn write_state_key(&self, out: &mut Vec<u8>) {
        use dynring_model::statekey::push_u64;
        push_u64(out, self.k1);
        push_u64(out, self.k2);
        push_u64(out, self.k3);
    }
}

impl fmt::Display for AgentIdentifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ID({}={})", self.bits, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_binary_representation() {
        assert_eq!(to_bits(0), vec![0]);
        assert_eq!(to_bits(1), vec![1]);
        assert_eq!(to_bits(6), vec![1, 1, 0]);
        assert_eq!(to_bits(8), vec![1, 0, 0, 0]);
    }

    #[test]
    fn figure_9_agent_a() {
        // r1 = 2, r2 = 4, r3 = 0  =>  k1 = 2, k2 = 2, k3 = 0, ID = 110000b = 48
        // (the figure prints the k's with an extra leading zero; the
        // interleaving pads to the longest of the three, which is 2 bits, and
        // the resulting numeric value 48 matches the figure exactly).
        let id = AgentIdentifier::from_rounds(2, 4, 0);
        assert_eq!(id.k1(), 2);
        assert_eq!(id.k2(), 2);
        assert_eq!(id.k3(), 0);
        assert_eq!(id.bits(), "110000");
        assert_eq!(id.value(), 48);
    }

    #[test]
    fn figure_9_agent_b() {
        // r1 = 3, r2 = 7, r3 = 0  =>  k1 = 3, k2 = 4, k3 = 0, ID = 10100100b = 164
        let id = AgentIdentifier::from_rounds(3, 7, 0);
        assert_eq!((id.k1(), id.k2(), id.k3()), (3, 4, 0));
        assert_eq!(id.bits(), "010100100");
        assert_eq!(id.value(), 164);
    }

    #[test]
    fn figure_10_agent_a() {
        // r1 = 2, r2 = 5, r3 = 4  =>  k1 = 2 (10), k2 = 1 (01), k3 = 2 (10), ID = 101010b = 42
        let id = AgentIdentifier::from_rounds(2, 5, 4);
        assert_eq!((id.k1(), id.k2(), id.k3()), (2, 1, 2));
        assert_eq!(id.bits(), "101010");
        assert_eq!(id.value(), 42);
    }

    #[test]
    fn figure_10_agent_b() {
        // r1 = 6, r2 = 8, r3 = 0  =>  k1 = 6 (110), k2 = 2 (010), k3 = 0 (000), ID = 100110000b = 304
        let id = AgentIdentifier::from_rounds(6, 8, 0);
        assert_eq!((id.k1(), id.k2(), id.k3()), (6, 2, 0));
        assert_eq!(id.bits(), "100110000");
        assert_eq!(id.value(), 304);
    }

    #[test]
    fn ids_are_equal_iff_components_are_equal() {
        // Exhaustive check over a small grid, as claimed in Section 3.2.3:
        // "two IDs are equal if and only if their ki's are equal".
        let mut seen = std::collections::HashMap::new();
        for k1 in 0..6u64 {
            for k2 in 0..6u64 {
                for k3 in 0..6u64 {
                    let id = AgentIdentifier::from_counters(k1, k2, k3);
                    if let Some(prev) = seen.insert(id.bits().to_owned(), (k1, k2, k3)) {
                        assert_eq!(prev, (k1, k2, k3), "collision between {prev:?} and {:?}", (k1, k2, k3));
                    }
                }
            }
        }
    }

    #[test]
    fn display_contains_bits_and_value() {
        let id = AgentIdentifier::from_counters(1, 0, 0);
        let s = id.to_string();
        assert!(s.contains("100"));
        assert!(s.contains('='));
    }

    #[test]
    fn zero_identifier_is_well_formed() {
        let id = AgentIdentifier::from_counters(0, 0, 0);
        assert_eq!(id.bits(), "000");
        assert_eq!(id.value(), 0);
    }
}
