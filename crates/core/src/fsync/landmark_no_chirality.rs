//! Algorithms `StartFromLandmarkNoChirality` (Figure 8, Theorem 7) and
//! `LandmarkNoChirality` (Figure 13, Theorem 8).
//!
//! Two anonymous agents **without chirality** on a ring with a landmark:
//! exploration with explicit termination in `O(n log n)` rounds. The
//! difficulty is the symmetric case in which the agents move in opposite
//! directions forever; it is broken by deriving (with high reliability)
//! distinct identifiers from the rounds at which each agent was blocked
//! ([`super::ident`]) and then following identifier-dependent direction
//! sequences ([`super::dirseq`]) that guarantee a long common-direction
//! window (Lemma 3).
//!
//! The same type implements both figures: [`LandmarkNoChirality::new`] is the
//! arbitrary-start algorithm of Figure 13 and
//! [`LandmarkNoChirality::starting_from_landmark`] the Figure 8 variant (used
//! when both agents are known to start on the landmark).
//!
//! If at any point the agents catch each other they fall back to the
//! role-based `Bounce`/`Return`/`Forward`/`BComm`/`FComm` machinery of
//! Figure 4, expressed relative to the direction of travel at the moment of
//! the catch (the paper states the two cases are "the same as in Algorithm
//! `LandmarkWithChirality`").

use crate::counters::Counters;
use crate::fsync::dirseq::DirectionSequence;
use crate::fsync::ident::AgentIdentifier;
use dynring_model::{Decision, LocalDirection, Protocol, Snapshot, TerminationKind};
use serde::{Deserialize, Serialize};

/// States of Figures 8 and 13 (`Ready` is transient and therefore not
/// represented: it is processed within the round that enters it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LnState {
    /// `Init` (arbitrary start) or `InitL` (start from the landmark).
    Init,
    /// `FirstBlock` / `FirstBlockL`: reversed direction after the first block.
    FirstBlock,
    /// `AtLandmark` / `AtLandmarkL`: reached the landmark after the first block.
    AtLandmark,
    /// Waiting one round at the landmark to confirm a simultaneous arrival.
    AtLandmarkWait,
    /// The agent knows `n` (it closed a loop around the landmark) and simply
    /// waits out the global time bound.
    Happy,
    /// Following the identifier-driven direction sequence.
    Reverse,
    /// Role B of the Figure 4 block (moving away from F).
    Bounce,
    /// Role B of the Figure 4 block (moving back towards F).
    Return,
    /// Role F of the Figure 4 block.
    Forward,
    /// B signalled termination; terminate next round.
    BCommSignal,
    /// B waits one round for F's answer.
    BCommWait,
    /// F signalled that it knows the size; terminate next round.
    FCommSignal,
    /// F waits one round for B's answer.
    FCommWait,
    /// Terminal state.
    Terminate,
}

/// Algorithm `LandmarkNoChirality` (Figure 13) /
/// `StartFromLandmarkNoChirality` (Figure 8).
///
/// ```
/// use dynring_core::fsync::LandmarkNoChirality;
/// use dynring_model::{Protocol, TerminationKind};
///
/// let agent = LandmarkNoChirality::new();
/// assert_eq!(agent.termination_kind(), TerminationKind::Explicit);
/// assert_eq!(agent.name(), "LandmarkNoChirality");
/// ```
///
/// In the engine's enum-dispatched runtime this type is carried by the
/// [`CatalogProtocol::LandmarkNoChirality`](crate::CatalogProtocol) fast-path variant
/// (statically dispatched Compute); boxing it through
/// [`Protocol::clone_box`] or `Algorithm::instantiate` selects the
/// virtual-dispatch escape hatch instead. See `docs/ARCHITECTURE.md`.
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LandmarkNoChirality {
    state: LnState,
    /// Whether the current `Init`/`FirstBlock`/`AtLandmark` states are the
    /// `…L` (started-at-the-landmark) variants of Figure 8.
    landmark_phase: bool,
    dir: LocalDirection,
    k1: u64,
    k3: u64,
    identifier: Option<AgentIdentifier>,
    sequence: Option<DirectionSequence>,
    /// Direction of travel at the moment of the first catch; the Figure 4
    /// block is expressed relative to it.
    fwd: Option<LocalDirection>,
    bounce_steps: Option<u64>,
    return_steps: Option<u64>,
    counters: Counters,
}

// Manual `Clone` so that `clone_from` forwards to the capacity-reusing
// `clone_from` of the identifier and direction sequence instead of
// reallocating them (see `dynring_model::Protocol::clone_from_box`).
impl Clone for LandmarkNoChirality {
    fn clone(&self) -> Self {
        LandmarkNoChirality {
            state: self.state,
            landmark_phase: self.landmark_phase,
            dir: self.dir,
            k1: self.k1,
            k3: self.k3,
            identifier: self.identifier.clone(),
            sequence: self.sequence.clone(),
            fwd: self.fwd,
            bounce_steps: self.bounce_steps,
            return_steps: self.return_steps,
            counters: self.counters.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.state = source.state;
        self.landmark_phase = source.landmark_phase;
        self.dir = source.dir;
        self.k1 = source.k1;
        self.k3 = source.k3;
        // `Option::clone_from` forwards to the inner `clone_from` when both
        // sides are `Some`, reusing the existing heap buffers.
        self.identifier.clone_from(&source.identifier);
        self.sequence.clone_from(&source.sequence);
        self.fwd = source.fwd;
        self.bounce_steps = source.bounce_steps;
        self.return_steps = source.return_steps;
        self.counters = source.counters.clone();
    }
}

impl Default for LandmarkNoChirality {
    fn default() -> Self {
        Self::new()
    }
}

impl LandmarkNoChirality {
    /// Figure 13: agents start at arbitrary nodes.
    #[must_use]
    pub fn new() -> Self {
        Self::with_phase(false)
    }

    /// Figure 8: both agents are known to start at the landmark.
    #[must_use]
    pub fn starting_from_landmark() -> Self {
        Self::with_phase(true)
    }

    fn with_phase(landmark_phase: bool) -> Self {
        LandmarkNoChirality {
            state: LnState::Init,
            landmark_phase,
            dir: LocalDirection::Left,
            k1: 0,
            k3: 0,
            identifier: None,
            sequence: None,
            fwd: None,
            bounce_steps: None,
            return_steps: None,
            counters: Counters::new(),
        }
    }

    /// The agent's current state.
    #[must_use]
    pub const fn state(&self) -> LnState {
        self.state
    }

    /// The identifier computed in state `Ready`, if any.
    #[must_use]
    pub const fn identifier(&self) -> Option<&AgentIdentifier> {
        self.identifier.as_ref()
    }

    /// Access to the agent's counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The global termination bound `32·((3·⌈log n⌉ + 3)·5·n)` of Figure 8.
    #[must_use]
    pub fn termination_bound(ring_size: u64) -> u64 {
        let log = ceil_log2(ring_size);
        32 * ((3 * log + 3) * 5 * ring_size)
    }

    fn knows_size(&self) -> bool {
        self.counters.knows_size()
    }

    fn current_round(&self) -> u64 {
        // Under FSYNC the agent's completed-activation count equals the
        // number of completed rounds; the current round is one more.
        self.counters.ttime() + 1
    }

    // ------------------------------------------------------------------
    // Figure 4 block, relative to the direction of travel at the catch.
    // ------------------------------------------------------------------

    fn forward_dir(&self) -> LocalDirection {
        self.fwd.unwrap_or(LocalDirection::Left)
    }

    fn bounce_dir(&self) -> LocalDirection {
        self.forward_dir().opposite()
    }

    fn enter_bounce(&mut self) -> Decision {
        if self.fwd.is_none() {
            self.fwd = Some(self.dir);
        }
        self.state = LnState::Bounce;
        self.counters.reset_explore();
        Decision::Move(self.bounce_dir())
    }

    fn enter_forward(&mut self) -> Decision {
        if self.fwd.is_none() {
            self.fwd = Some(self.dir);
        }
        self.state = LnState::Forward;
        self.counters.reset_explore();
        Decision::Move(self.forward_dir())
    }

    fn enter_return(&mut self) -> Decision {
        self.bounce_steps = Some(self.counters.esteps());
        self.state = LnState::Return;
        self.counters.reset_explore();
        Decision::Move(self.forward_dir())
    }

    fn enter_terminate(&mut self) -> Decision {
        self.state = LnState::Terminate;
        Decision::Terminate
    }

    fn enter_bcomm(&mut self) -> Decision {
        let return_steps = self.counters.esteps();
        self.return_steps = Some(return_steps);
        let same_edge = self.bounce_steps.is_some_and(|b| return_steps <= 2 * b);
        if same_edge || self.knows_size() {
            self.state = LnState::BCommSignal;
            Decision::Move(self.bounce_dir())
        } else {
            self.state = LnState::BCommWait;
            Decision::Stay
        }
    }

    fn enter_fcomm(&mut self) -> Decision {
        if self.knows_size() {
            self.state = LnState::FCommSignal;
            Decision::Move(self.forward_dir())
        } else {
            self.state = LnState::FCommWait;
            Decision::Retreat
        }
    }

    fn catch_block_step(&mut self, snapshot: &Snapshot) -> Decision {
        let ntime = self.counters.ntime();
        let size = self.counters.known_size();
        match self.state {
            LnState::Bounce => {
                if snapshot.meeting() {
                    return self.enter_terminate();
                }
                if self.counters.etime() > 2 * self.counters.esteps() || ntime > 0 {
                    return self.enter_return();
                }
                if snapshot.catches(self.bounce_dir()) {
                    return self.enter_bcomm();
                }
                Decision::Move(self.bounce_dir())
            }
            LnState::Return => {
                if size.is_some_and(|n| ntime > 3 * n) || snapshot.caught() {
                    return self.enter_terminate();
                }
                if snapshot.catches(self.forward_dir()) {
                    return self.enter_bcomm();
                }
                Decision::Move(self.forward_dir())
            }
            LnState::Forward => {
                if size.is_some_and(|n| ntime >= 7 * n)
                    || snapshot.meeting()
                    || snapshot.catches(self.forward_dir())
                {
                    return self.enter_terminate();
                }
                if snapshot.caught() {
                    return self.enter_fcomm();
                }
                Decision::Move(self.forward_dir())
            }
            LnState::BCommSignal | LnState::FCommSignal => self.enter_terminate(),
            LnState::BCommWait => {
                if snapshot.occupancy.in_node > 0 {
                    self.state = LnState::Bounce;
                    self.counters.reset_explore();
                    Decision::Move(self.bounce_dir())
                } else {
                    self.enter_terminate()
                }
            }
            LnState::FCommWait => {
                if snapshot.occupancy.in_node > 0 {
                    self.state = LnState::Forward;
                    self.counters.reset_explore();
                    Decision::Move(self.forward_dir())
                } else {
                    self.enter_terminate()
                }
            }
            _ => unreachable!("catch_block_step called in state {:?}", self.state),
        }
    }

    // ------------------------------------------------------------------
    // Pre-catch states of Figures 8 / 13.
    // ------------------------------------------------------------------

    fn enter_happy(&mut self) -> Decision {
        self.state = LnState::Happy;
        self.counters.reset_explore();
        Decision::Move(self.dir)
    }

    fn enter_first_block(&mut self) -> Decision {
        self.dir = LocalDirection::Right;
        self.k1 = if self.landmark_phase {
            self.counters.ttime().saturating_sub(1)
        } else {
            self.counters.ttime()
        };
        self.state = LnState::FirstBlock;
        self.counters.reset_explore();
        Decision::Move(self.dir)
    }

    fn enter_at_landmark(&mut self, snapshot: &Snapshot) -> Decision {
        self.k3 = self.counters.etime();
        self.counters.reset_explore();
        if snapshot.is_landmark && snapshot.occupancy.in_node > 0 {
            // A possible simultaneous arrival: wait one round to confirm.
            self.state = LnState::AtLandmarkWait;
            Decision::Stay
        } else {
            self.state = LnState::AtLandmark;
            Decision::Move(self.dir)
        }
    }

    /// State `Ready`: compute the identifier and start the direction
    /// sequence, processing state `Reverse` in the same round.
    fn enter_ready(&mut self) -> Decision {
        let k2 = self.counters.etime();
        let id = AgentIdentifier::from_counters(self.k1, k2, self.k3);
        self.sequence = Some(DirectionSequence::new(id.value()));
        self.identifier = Some(id);
        self.state = LnState::Reverse;
        self.counters.reset_explore();
        self.dir = self
            .sequence
            .as_ref()
            .expect("sequence was just installed")
            .direction(self.current_round());
        Decision::Move(self.dir)
    }

    fn enter_restart_at_landmark(&mut self) -> Decision {
        // Figure 13: both agents met at the landmark while establishing their
        // identifiers; restart as if they had started there (state `InitL`).
        self.landmark_phase = true;
        self.dir = LocalDirection::Left;
        self.k1 = 0;
        self.k3 = 0;
        self.identifier = None;
        self.sequence = None;
        self.state = LnState::Init;
        self.counters.reset_explore();
        Decision::Move(self.dir)
    }

    fn pre_catch_step(&mut self, snapshot: &Snapshot) -> Decision {
        match self.state {
            // NOTE: the catch predicates are evaluated before the `Btime > 0`
            // transitions. Figure 8/13 lists `Btime > 0` first, but Section
            // 3.2.3 states that "if at any point the agents catch each other,
            // they enter states Forward and Bounce and proceed with Algorithm
            // LandmarkWithChirality"; since a caught agent is by definition
            // blocked, the literal predicate order would make `caught`
            // unreachable and break the BComm/FComm pairing, so the prose is
            // followed here.
            LnState::Init => {
                if self.knows_size() {
                    return self.enter_happy();
                }
                if snapshot.catches(self.dir) {
                    return self.enter_bounce();
                }
                if snapshot.caught() {
                    return self.enter_forward();
                }
                if self.counters.btime() > 0 {
                    return self.enter_first_block();
                }
                Decision::Move(self.dir)
            }
            LnState::FirstBlock => {
                if self.knows_size() {
                    return self.enter_happy();
                }
                if snapshot.catches(self.dir) {
                    return self.enter_bounce();
                }
                if snapshot.caught() {
                    return self.enter_forward();
                }
                if snapshot.is_landmark {
                    return self.enter_at_landmark(snapshot);
                }
                if self.counters.btime() > 0 {
                    return self.enter_ready();
                }
                Decision::Move(self.dir)
            }
            LnState::AtLandmark => {
                if self.knows_size() {
                    return self.enter_happy();
                }
                if snapshot.catches(self.dir) {
                    return self.enter_bounce();
                }
                if snapshot.caught() {
                    return self.enter_forward();
                }
                if self.counters.btime() > 0 {
                    return self.enter_ready();
                }
                Decision::Move(self.dir)
            }
            LnState::AtLandmarkWait => {
                if snapshot.is_landmark && snapshot.occupancy.in_node > 0 {
                    if self.landmark_phase {
                        // Figure 8: both agents bounced off the same edge and
                        // returned together — the ring is explored.
                        return self.enter_terminate();
                    }
                    return self.enter_restart_at_landmark();
                }
                self.state = LnState::AtLandmark;
                Decision::Move(self.dir)
            }
            LnState::Happy => {
                let bound = self
                    .counters
                    .known_size()
                    .map(Self::termination_bound)
                    .expect("Happy is only entered once n is known");
                if self.counters.ttime() > bound {
                    return self.enter_terminate();
                }
                if snapshot.catches(self.dir) {
                    return self.enter_bounce();
                }
                if snapshot.caught() {
                    return self.enter_forward();
                }
                Decision::Move(self.dir)
            }
            LnState::Reverse => {
                if self.knows_size() {
                    let bound = Self::termination_bound(
                        self.counters.known_size().expect("size is known"),
                    );
                    if self.counters.ttime() >= bound {
                        return self.enter_terminate();
                    }
                    if snapshot.catches(self.dir) {
                        return self.enter_bounce();
                    }
                    if snapshot.caught() {
                        return self.enter_forward();
                    }
                    return Decision::Move(self.dir);
                }
                // NOTE: the catch predicates take priority over the scheduled
                // direction switch. Figure 8 lists `switch(Ttime)` first, but
                // if a caught agent ignored the catch for one round its
                // partner would enter BComm without a matching FComm and the
                // termination handshake of Figure 4 would break; Section 3.2.3
                // states that a catch always moves the agents to the
                // Forward/Bounce pair, which is what is implemented here.
                if snapshot.catches(self.dir) {
                    return self.enter_bounce();
                }
                if snapshot.caught() {
                    return self.enter_forward();
                }
                let round = self.current_round();
                let switches = self
                    .sequence
                    .as_ref()
                    .expect("Reverse is only entered after the sequence is set")
                    .switches_at(round);
                if switches {
                    self.dir = self
                        .sequence
                        .as_ref()
                        .expect("sequence is set")
                        .direction(round);
                    self.counters.reset_explore();
                    return Decision::Move(self.dir);
                }
                Decision::Move(self.dir)
            }
            _ => unreachable!("pre_catch_step called in state {:?}", self.state),
        }
    }

    fn step(&mut self, snapshot: &Snapshot) -> Decision {
        match self.state {
            LnState::Init
            | LnState::FirstBlock
            | LnState::AtLandmark
            | LnState::AtLandmarkWait
            | LnState::Happy
            | LnState::Reverse => self.pre_catch_step(snapshot),
            LnState::Terminate => Decision::Terminate,
            _ => self.catch_block_step(snapshot),
        }
    }
}

/// `⌈log₂ value⌉` for `value ≥ 1` (0 for `value ≤ 1`).
fn ceil_log2(value: u64) -> u64 {
    if value <= 1 {
        return 0;
    }
    64 - (value - 1).leading_zeros() as u64
}

impl Protocol for LandmarkNoChirality {
    fn name(&self) -> &'static str {
        if self.landmark_phase {
            "StartFromLandmarkNoChirality"
        } else {
            "LandmarkNoChirality"
        }
    }

    fn termination_kind(&self) -> TerminationKind {
        TerminationKind::Explicit
    }

    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        self.counters.absorb(snapshot);
        let decision = self.step(snapshot);
        self.counters.record_decision(decision);
        decision
    }

    fn has_terminated(&self) -> bool {
        self.state == LnState::Terminate
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        dynring_model::clone_state_from(self, src)
    }

    fn state_label(&self) -> String {
        format!(
            "{:?}(dir={},id={:?},n={:?})",
            self.state,
            self.dir,
            self.identifier.as_ref().map(AgentIdentifier::value),
            self.counters.known_size()
        )
    }

    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        use dynring_model::statekey::{push_opt_u64, push_u64};
        out.push(match self.state {
            LnState::Init => 0,
            LnState::FirstBlock => 1,
            LnState::AtLandmark => 2,
            LnState::AtLandmarkWait => 3,
            LnState::Happy => 4,
            LnState::Reverse => 5,
            LnState::Bounce => 6,
            LnState::Return => 7,
            LnState::Forward => 8,
            LnState::BCommSignal => 9,
            LnState::BCommWait => 10,
            LnState::FCommSignal => 11,
            LnState::FCommWait => 12,
            LnState::Terminate => 13,
        });
        out.push(u8::from(self.landmark_phase));
        out.push(crate::counters::direction_key(Some(self.dir)));
        push_u64(out, self.k1);
        push_u64(out, self.k3);
        match &self.identifier {
            Some(id) => {
                out.push(1);
                id.write_state_key(out);
            }
            None => out.push(0),
        }
        match &self.sequence {
            Some(seq) => {
                out.push(1);
                seq.write_state_key(out);
            }
            None => out.push(0),
        }
        out.push(crate::counters::direction_key(self.fwd));
        push_opt_u64(out, self.bounce_steps);
        push_opt_u64(out, self.return_steps);
        self.counters.write_state_key(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::{LocalPosition, NodeOccupancy, PriorOutcome};

    fn plain(prior: PriorOutcome, landmark: bool) -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: landmark,
            occupancy: NodeOccupancy::default(),
            prior,
            round_hint: None,
        }
    }

    fn blocked(landmark: bool) -> Snapshot {
        Snapshot {
            position: LocalPosition::OnPort(LocalDirection::Left),
            is_landmark: landmark,
            occupancy: NodeOccupancy::default(),
            prior: PriorOutcome::BlockedOnPort,
            round_hint: None,
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn termination_bound_matches_formula() {
        // n = 8: 32 * ((3*3 + 3) * 5 * 8) = 32 * 480 = 15360
        assert_eq!(LandmarkNoChirality::termination_bound(8), 15360);
    }

    #[test]
    fn starts_left_and_reverses_after_first_block() {
        let mut a = LandmarkNoChirality::new();
        assert_eq!(a.decide(&plain(PriorOutcome::Idle, true)), Decision::Move(LocalDirection::Left));
        assert_eq!(a.state(), LnState::Init);
        // Blocked once: at the next activation Btime > 0, the agent records
        // k1 and reverses to the right.
        assert_eq!(a.decide(&blocked(true)), Decision::Move(LocalDirection::Right));
        assert_eq!(a.state(), LnState::FirstBlock);
    }

    #[test]
    fn second_block_computes_identifier_and_starts_sequence() {
        let mut a = LandmarkNoChirality::starting_from_landmark();
        let _ = a.decide(&plain(PriorOutcome::Idle, true));
        let _ = a.decide(&blocked(true)); // -> FirstBlock, k1 recorded
        // A couple of successful right moves, then blocked again.
        let _ = a.decide(&plain(PriorOutcome::Moved, false));
        let _ = a.decide(&plain(PriorOutcome::Moved, false));
        let d = a.decide(&Snapshot {
            position: LocalPosition::OnPort(LocalDirection::Right),
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior: PriorOutcome::BlockedOnPort,
            round_hint: None,
        });
        assert_eq!(a.state(), LnState::Reverse);
        assert!(a.identifier().is_some());
        assert!(d.is_move());
    }

    #[test]
    fn crossing_the_landmark_between_blocks_sets_k3() {
        let mut a = LandmarkNoChirality::new();
        let _ = a.decide(&plain(PriorOutcome::Idle, false));
        let _ = a.decide(&blocked(false)); // -> FirstBlock
        let _ = a.decide(&plain(PriorOutcome::Moved, false));
        // Arrive at the landmark: k3 is recorded, state AtLandmark.
        let d = a.decide(&plain(PriorOutcome::Moved, true));
        assert_eq!(a.state(), LnState::AtLandmark);
        assert!(d.is_move());
        // Second block: identifier computed with k3 > 0.
        let _ = a.decide(&plain(PriorOutcome::Moved, false));
        let _ = a.decide(&Snapshot {
            position: LocalPosition::OnPort(LocalDirection::Right),
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior: PriorOutcome::BlockedOnPort,
            round_hint: None,
        });
        assert_eq!(a.state(), LnState::Reverse);
        let id = a.identifier().expect("identifier must be computed");
        assert!(id.k3() > 0, "k3 should record the landmark crossing, got {id}");
    }

    #[test]
    fn learning_n_switches_to_happy_and_eventually_terminates() {
        let n = 4u64;
        let mut a = LandmarkNoChirality::new();
        // Walk left around the ring (landmark every n steps), never blocked.
        let mut pos = 0i64;
        let mut decision = a.decide(&plain(PriorOutcome::Idle, true));
        let mut rounds = 1u64;
        let bound = LandmarkNoChirality::termination_bound(n) + 16;
        while decision != Decision::Terminate {
            match decision {
                Decision::Move(LocalDirection::Left) => pos -= 1,
                Decision::Move(LocalDirection::Right) => pos += 1,
                other => panic!("unexpected decision {other:?}"),
            }
            let at_landmark = pos.rem_euclid(n as i64) == 0;
            decision = a.decide(&plain(PriorOutcome::Moved, at_landmark));
            rounds += 1;
            assert!(rounds < bound + 10, "agent did not terminate within the bound");
        }
        assert!(a.has_terminated());
        assert_eq!(a.counters().known_size(), Some(n));
        assert!(rounds <= bound + 2, "terminated at {rounds}, bound {bound}");
    }

    #[test]
    fn simultaneous_landmark_arrival_terminates_in_the_landmark_start_variant() {
        // Figure 12: both agents bounce off the same missing edge and return
        // to the landmark at the same time — they confirm over one waiting
        // round and terminate.
        let mut a = LandmarkNoChirality::starting_from_landmark();
        let _ = a.decide(&plain(PriorOutcome::Idle, true)); // at the landmark, go left
        let _ = a.decide(&plain(PriorOutcome::Moved, false)); // one step away
        let _ = a.decide(&blocked(false)); // blocked: reverse (FirstBlock, right)
        // Arrive back at the landmark together with the other agent.
        let both_here = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: true,
            occupancy: NodeOccupancy { in_node: 1, on_left_port: 0, on_right_port: 0 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        };
        assert_eq!(a.decide(&both_here), Decision::Stay);
        assert_eq!(a.state(), LnState::AtLandmarkWait);
        // Still together one round later: terminate.
        assert_eq!(a.decide(&both_here), Decision::Terminate);
        assert!(a.has_terminated());
    }

    #[test]
    fn simultaneous_landmark_arrival_restarts_in_the_arbitrary_start_variant() {
        let mut a = LandmarkNoChirality::new();
        let _ = a.decide(&plain(PriorOutcome::Idle, false));
        let _ = a.decide(&blocked(false)); // -> FirstBlock (right)
        // First landmark sighting happens together with the other agent.
        let both_here = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: true,
            occupancy: NodeOccupancy { in_node: 1, on_left_port: 0, on_right_port: 0 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        };
        assert_eq!(a.decide(&both_here), Decision::Stay);
        assert_eq!(a.state(), LnState::AtLandmarkWait);
        // Still together: restart as StartFromLandmarkNoChirality.
        assert_eq!(a.decide(&both_here), Decision::Move(LocalDirection::Left));
        assert_eq!(a.state(), LnState::Init);
        assert_eq!(a.name(), "StartFromLandmarkNoChirality");
    }

    #[test]
    fn catching_enters_the_figure4_block_relative_to_the_travel_direction() {
        let mut a = LandmarkNoChirality::new();
        let _ = a.decide(&plain(PriorOutcome::Idle, false));
        let _ = a.decide(&blocked(false)); // now moving right (FirstBlock)
        // Catch the other agent on the right port while moving right: bounce
        // away, i.e. to the left.
        let catch_right = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 0, on_left_port: 0, on_right_port: 1 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        };
        assert_eq!(a.decide(&catch_right), Decision::Move(LocalDirection::Left));
        assert_eq!(a.state(), LnState::Bounce);
    }

    #[test]
    fn being_caught_keeps_the_travel_direction() {
        let mut a = LandmarkNoChirality::new();
        let _ = a.decide(&plain(PriorOutcome::Idle, false));
        // Caught while moving left in Init.
        let caught = Snapshot {
            position: LocalPosition::OnPort(LocalDirection::Left),
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 1, on_left_port: 0, on_right_port: 0 },
            prior: PriorOutcome::BlockedOnPort,
            round_hint: None,
        };
        assert_eq!(a.decide(&caught), Decision::Move(LocalDirection::Left));
        assert_eq!(a.state(), LnState::Forward);
    }

    #[test]
    fn never_terminates_before_exploring_when_alone_and_unobstructed() {
        // Defensive check: with no landmark sighting and no block, the agent
        // keeps moving (it can never spuriously terminate).
        let mut a = LandmarkNoChirality::new();
        let mut d = a.decide(&plain(PriorOutcome::Idle, false));
        for _ in 0..500 {
            assert!(d.is_move(), "agent stopped unexpectedly: {d:?}");
            d = a.decide(&plain(PriorOutcome::Moved, false));
        }
    }
}
