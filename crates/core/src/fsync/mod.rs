//! Fully synchronous (FSYNC) exploration algorithms (Section 3).
//!
//! All agents are active in every round. The algorithms here are exactly
//! those of the paper:
//!
//! | Algorithm | Paper | Assumptions | Guarantee |
//! |---|---|---|---|
//! | [`KnownBound`] | Fig. 1, Th. 3 | known upper bound `N`, no chirality | explicit termination by round `3N − 6` |
//! | [`Unconscious`] | Fig. 3, Th. 5 | nothing | exploration in `O(n)` rounds, never stops |
//! | [`LandmarkChirality`] | Fig. 4, Th. 6 | landmark + chirality | explicit termination in `O(n)` rounds |
//! | [`LandmarkNoChirality`] | Figs. 8/13, Th. 7/8 | landmark only | explicit termination in `O(n log n)` rounds |

mod dirseq;
mod ident;
mod known_bound;
mod landmark_chirality;
mod landmark_no_chirality;
mod unconscious;

pub use dirseq::DirectionSequence;
pub use ident::{interleave_id, AgentIdentifier};
pub use known_bound::KnownBound;
pub use landmark_chirality::LandmarkChirality;
pub use landmark_no_chirality::LandmarkNoChirality;
pub use unconscious::Unconscious;

pub mod pseudocode {
    //! Cross-reference of state names used in the paper's pseudo-code to the
    //! Rust enums of this module, for readers following along with the PDF.
    //!
    //! * Figure 1 (`KnownNNoChirality`): `Init`, `Bounce`, `Forward`,
    //!   `Terminate` → [`super::KnownBound`].
    //! * Figure 3 (`Unconscious Exploration`): `Init`, `Bounce`, `Reverse`,
    //!   `Forward`, `Keep` → [`super::Unconscious`].
    //! * Figure 4 (`LandmarkWithChirality`): `Init`, `Bounce`, `Return`,
    //!   `Forward`, `Terminate`, `BComm`, `FComm` →
    //!   [`super::LandmarkChirality`].
    //! * Figures 8/13 (`StartFromLandmarkNoChirality` /
    //!   `LandmarkNoChirality`): `Init`, `FirstBlock`, `AtLandmark`, `InitL`,
    //!   `Happy`, `FirstBlockL`, `AtLandmarkL`, `Ready`, `Reverse` plus the
    //!   Figure 4 states → [`super::LandmarkNoChirality`].
}
