//! ID-driven direction sequences (Section 3.2.3, Figure 11, Lemma 3).
//!
//! Once an agent has computed its identifier, it follows a predetermined
//! direction pattern: rounds are grouped into phases (`phase(j)` contains the
//! rounds `2^j ≤ r < 2^{j+1}`), the string `S(ID) = 10 ∘ b(ID) ∘ 0` is
//! stretched by duplicating every character `2^{j - j̄}` times in phase `j`,
//! and the agent moves left on `0` and right on `1`. Lemma 3 guarantees that
//! two agents with *different* identifiers eventually share the same
//! direction for any desired number `c·n` of consecutive rounds, within
//! `32·((len(ID) + 3)·c·n) + 1` rounds.

use dynring_model::LocalDirection;
use serde::{Deserialize, Serialize};

/// The per-phase direction schedule derived from an agent identifier.
///
/// ```
/// use dynring_core::fsync::DirectionSequence;
/// use dynring_model::LocalDirection;
///
/// let seq = DirectionSequence::new(1);
/// // S(1) = "10" ∘ "1" ∘ "0" = "1010", so the base phase has length 4.
/// assert_eq!(seq.base_string(), "1010");
/// assert_eq!(seq.base_phase(), 2);
/// // Rounds in phases j ≤ j̄ go left.
/// assert_eq!(seq.direction(1), LocalDirection::Left);
/// assert_eq!(seq.direction(7), LocalDirection::Left);
/// // Phase 3 follows Dup("1010", 2) = "11001100".
/// assert_eq!(seq.direction(8), LocalDirection::Right);
/// assert_eq!(seq.direction(10), LocalDirection::Left);
/// ```
#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DirectionSequence {
    id: u64,
    base: Vec<u8>,
    base_phase: u32,
}

// Manual `Clone` so that `clone_from` reuses the capacity of `base` (the
// engine's probe pool refreshes protocol copies every round; see
// `dynring_model::Protocol::clone_from_box`).
impl Clone for DirectionSequence {
    fn clone(&self) -> Self {
        DirectionSequence { id: self.id, base: self.base.clone(), base_phase: self.base_phase }
    }

    fn clone_from(&mut self, source: &Self) {
        self.id = source.id;
        self.base.clone_from(&source.base);
        self.base_phase = source.base_phase;
    }
}

/// Minimal binary representation of `value`.
fn binary_string(value: u64) -> Vec<u8> {
    if value == 0 {
        return vec![0];
    }
    let len = 64 - value.leading_zeros() as usize;
    (0..len).rev().map(|i| ((value >> i) & 1) as u8).collect()
}

/// `Dup(S, k)`: repeat each character of `S` exactly `k` times.
fn duplicate(bits: &[u8], factor: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(bits.len() * factor);
    for &b in bits {
        out.extend(std::iter::repeat_n(b, factor));
    }
    out
}

/// The phase of a (1-based) round: `phase(j)` contains rounds `2^j ≤ r < 2^{j+1}`.
fn phase_of(round: u64) -> u32 {
    debug_assert!(round >= 1, "rounds are 1-based");
    63 - round.leading_zeros()
}

impl DirectionSequence {
    /// Builds the direction schedule for the given identifier value.
    #[must_use]
    pub fn new(id: u64) -> Self {
        // S(ID) = "10" ∘ b(ID) ∘ "0"
        let mut s = vec![1u8, 0u8];
        s.extend(binary_string(id));
        s.push(0);
        // j̄ = min j with 2^j ≥ len(S); pad S with leading zeros to length 2^j̄.
        let mut base_phase = 0u32;
        while (1usize << base_phase) < s.len() {
            base_phase += 1;
        }
        let mut base = vec![0u8; (1usize << base_phase) - s.len()];
        base.extend_from_slice(&s);
        DirectionSequence { id, base, base_phase }
    }

    /// The identifier this sequence was built from.
    #[must_use]
    pub const fn id(&self) -> u64 {
        self.id
    }

    /// Appends a packed, injective encoding of the sequence to `out`. The
    /// base string and base phase are pure functions of the identifier (the
    /// only constructor is [`DirectionSequence::new`]), so emitting the
    /// identifier alone is injective on the whole struct.
    pub fn write_state_key(&self, out: &mut Vec<u8>) {
        dynring_model::statekey::push_u64(out, self.id);
    }

    /// `j̄`: the first phase whose length accommodates `S(ID)`.
    #[must_use]
    pub const fn base_phase(&self) -> u32 {
        self.base_phase
    }

    /// The unpadded base string `S(ID) = 10 ∘ b(ID) ∘ 0` as text (for
    /// inspection and tests). `S(ID)` always starts with `1`, so stripping the
    /// padding zeros recovers it exactly.
    #[must_use]
    pub fn base_string(&self) -> String {
        let s: String = self.base.iter().map(|&b| if b == 1 { '1' } else { '0' }).collect();
        s.trim_start_matches('0').to_string()
    }

    /// The direction string `d(ID, j)` of a phase `j > j̄`.
    ///
    /// # Panics
    ///
    /// Panics if `j ≤ j̄` (those phases use the fixed direction `left`).
    #[must_use]
    pub fn phase_string(&self, phase: u32) -> Vec<u8> {
        assert!(phase > self.base_phase, "phase {phase} uses the fixed left direction");
        duplicate(&self.base, 1usize << (phase - self.base_phase))
    }

    /// The direction prescribed for the given (1-based) round.
    ///
    /// # Panics
    ///
    /// Panics if `round` is 0.
    #[must_use]
    pub fn direction(&self, round: u64) -> LocalDirection {
        assert!(round >= 1, "rounds are 1-based");
        let phase = phase_of(round);
        if phase <= self.base_phase {
            return LocalDirection::Left;
        }
        let within = (round - (1u64 << phase)) as usize;
        let stretched = self.phase_string(phase);
        if stretched[within % stretched.len()] == 0 {
            LocalDirection::Left
        } else {
            LocalDirection::Right
        }
    }

    /// Whether the direction changes between `round − 1` and `round`
    /// (the `switch(Ttime)` test of Figure 8). The first round never switches.
    #[must_use]
    pub fn switches_at(&self, round: u64) -> bool {
        if round <= 1 {
            return false;
        }
        self.direction(round) != self.direction(round - 1)
    }

    /// Length of the longest run of identical directions shared by `self` and
    /// `other` within rounds `1..=horizon` (used to validate Lemma 3).
    #[must_use]
    pub fn longest_common_run(&self, other: &DirectionSequence, horizon: u64) -> u64 {
        let mut best = 0u64;
        let mut current = 0u64;
        for r in 1..=horizon {
            if self.direction(r) == other.direction(r) {
                current += 1;
                best = best.max(current);
            } else {
                current = 0;
            }
        }
        best
    }

    /// The bound of Lemma 3: `32·((len + 3)·c·n) + 1`, where `len` is the
    /// length of the binary representation of the larger identifier.
    #[must_use]
    pub fn lemma3_horizon(id_a: u64, id_b: u64, c_times_n: u64) -> u64 {
        let len = binary_string(id_a.max(id_b)).len() as u64;
        32 * ((len + 3) * c_times_n) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_of_rounds() {
        assert_eq!(phase_of(1), 0);
        assert_eq!(phase_of(2), 1);
        assert_eq!(phase_of(3), 1);
        assert_eq!(phase_of(4), 2);
        assert_eq!(phase_of(7), 2);
        assert_eq!(phase_of(8), 3);
    }

    #[test]
    fn duplication_matches_paper_example() {
        // Dup(1010, 2) = 11001100
        assert_eq!(duplicate(&[1, 0, 1, 0], 2), vec![1, 1, 0, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn base_string_for_id_one() {
        let seq = DirectionSequence::new(1);
        assert_eq!(seq.base_string(), "1010");
        assert_eq!(seq.base_phase(), 2);
        assert_eq!(seq.id(), 1);
    }

    #[test]
    fn early_phases_go_left() {
        let seq = DirectionSequence::new(5);
        for r in 1..8 {
            // For ID = 5, S = 10 101 0 (len 6), so j̄ = 3 and phases 0..3
            // (rounds 1..15) are all `left`.
            assert_eq!(seq.direction(r), LocalDirection::Left, "round {r}");
        }
    }

    #[test]
    fn phase_string_has_phase_length() {
        let seq = DirectionSequence::new(1);
        for phase in (seq.base_phase() + 1)..(seq.base_phase() + 5) {
            assert_eq!(seq.phase_string(phase).len() as u64, 1u64 << phase);
        }
    }

    #[test]
    #[should_panic(expected = "fixed left direction")]
    fn phase_string_rejects_base_phases() {
        let _ = DirectionSequence::new(1).phase_string(1);
    }

    #[test]
    fn directions_in_first_active_phase_follow_the_base_string() {
        let seq = DirectionSequence::new(1);
        // Phase 3 covers rounds 8..15 and follows Dup("1010", 2) = 11001100.
        let expected = [1, 1, 0, 0, 1, 1, 0, 0];
        for (i, &bit) in expected.iter().enumerate() {
            let dir = seq.direction(8 + i as u64);
            let want = if bit == 1 { LocalDirection::Right } else { LocalDirection::Left };
            assert_eq!(dir, want, "round {}", 8 + i);
        }
    }

    #[test]
    fn switch_detection() {
        let seq = DirectionSequence::new(1);
        assert!(!seq.switches_at(1));
        // Within phase 3 (rounds 8..15 = 11001100): switches at rounds 10, 12, 14.
        assert!(!seq.switches_at(9));
        assert!(seq.switches_at(10));
        assert!(!seq.switches_at(11));
        assert!(seq.switches_at(12));
    }

    #[test]
    fn lemma3_common_run_exists_for_distinct_ids() {
        // For several pairs of distinct IDs and a small c·n, a common run of
        // length c·n appears within the Lemma 3 horizon.
        let pairs = [(1u64, 2u64), (3, 7), (48, 164), (42, 304), (5, 6)];
        let c_n = 20u64;
        for (a, b) in pairs {
            let sa = DirectionSequence::new(a);
            let sb = DirectionSequence::new(b);
            let horizon = DirectionSequence::lemma3_horizon(a, b, c_n);
            let run = sa.longest_common_run(&sb, horizon);
            assert!(
                run >= c_n,
                "ids {a} and {b}: common run {run} < {c_n} within horizon {horizon}"
            );
        }
    }

    #[test]
    fn each_sequence_eventually_uses_both_directions_for_long_runs() {
        // Last claim of Lemma 3: each agent moves in both directions for runs
        // of length at least c·n by the horizon.
        let c_n = 16u64;
        for id in [1u64, 2, 9, 48, 164] {
            let seq = DirectionSequence::new(id);
            let horizon = DirectionSequence::lemma3_horizon(id, id, c_n);
            let mut left_run = 0u64;
            let mut right_run = 0u64;
            let mut best_left = 0u64;
            let mut best_right = 0u64;
            for r in 1..=horizon {
                match seq.direction(r) {
                    LocalDirection::Left => {
                        left_run += 1;
                        right_run = 0;
                    }
                    LocalDirection::Right => {
                        right_run += 1;
                        left_run = 0;
                    }
                }
                best_left = best_left.max(left_run);
                best_right = best_right.max(right_run);
            }
            assert!(best_left >= c_n, "id {id}: left run {best_left}");
            assert!(best_right >= c_n, "id {id}: right run {best_right}");
        }
    }
}
