//! Algorithm `Unconscious Exploration` (Figure 3, Theorem 5).
//!
//! Two anonymous agents without chirality and with no knowledge whatsoever
//! explore every 1-interval-connected ring within `O(n)` rounds, without ever
//! terminating (termination is impossible in this setting by Theorems 1/2).

use crate::counters::Counters;
use dynring_model::{Decision, LocalDirection, Protocol, Snapshot, TerminationKind};
use serde::{Deserialize, Serialize};

/// The states of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum State {
    /// Initial guessing phase.
    Init,
    /// Caught the other agent: move in the opposite direction forever.
    Bounce,
    /// Guess expired while blocked for more than `G` rounds: reverse.
    Reverse,
    /// Was caught: keep the current direction forever.
    Forward,
    /// Guess expired without a long block: keep direction, double the guess.
    Keep,
}

/// Algorithm `Unconscious Exploration` of Figure 3.
///
/// Each agent guesses the ring size (`G`, initially 2), moves in one
/// direction for `2G` rounds, doubles the guess, and reverses direction only
/// if it spent more than `G` of those rounds blocked on a missing edge.
/// Catching / being caught fixes the two agents on opposite directions
/// forever, after which the ring is explored within `n − 1` further rounds.
///
/// The paper's Figure 3 writes `F ← 2·G` in state `Reverse`; consistently
/// with the proof of Theorem 5 ("G is always doubled after 2G time steps")
/// this implementation doubles `G` on every phase change, whether the
/// direction is kept or reversed.
///
/// ```
/// use dynring_core::fsync::Unconscious;
/// use dynring_model::{Protocol, TerminationKind};
///
/// let agent = Unconscious::new();
/// assert_eq!(agent.termination_kind(), TerminationKind::Unconscious);
/// assert!(!agent.has_terminated());
/// ```
///
/// In the engine's enum-dispatched runtime this type is carried by the
/// [`CatalogProtocol::Unconscious`](crate::CatalogProtocol) fast-path variant
/// (statically dispatched Compute); boxing it through
/// [`Protocol::clone_box`] or `Algorithm::instantiate` selects the
/// virtual-dispatch escape hatch instead. See `docs/ARCHITECTURE.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Unconscious {
    state: State,
    guess: u64,
    dir: LocalDirection,
    counters: Counters,
}

impl Default for Unconscious {
    fn default() -> Self {
        Self::new()
    }
}

impl Unconscious {
    /// Initial size guess `G` of Figure 3.
    pub const INITIAL_GUESS: u64 = 2;

    /// Creates a fresh agent with guess `G = 2` moving left.
    #[must_use]
    pub fn new() -> Self {
        Unconscious {
            state: State::Init,
            guess: Self::INITIAL_GUESS,
            dir: LocalDirection::Left,
            counters: Counters::new(),
        }
    }

    /// The current size guess `G`.
    #[must_use]
    pub const fn guess(&self) -> u64 {
        self.guess
    }

    /// The direction the agent is currently committed to.
    #[must_use]
    pub const fn direction(&self) -> LocalDirection {
        self.dir
    }

    /// Access to the agent's counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    fn guessing_step(&mut self, snapshot: &Snapshot) -> Option<Decision> {
        // Shared predicate list of states Init / Reverse / Keep, in the order
        // of Figure 3.
        let c = &self.counters;
        if c.etime() >= 2 * self.guess && c.btime() > self.guess {
            self.state = State::Reverse;
            self.guess *= 2;
            self.dir = self.dir.opposite();
            self.counters.reset_explore();
            return None;
        }
        if c.etime() >= 2 * self.guess {
            self.state = State::Keep;
            self.guess *= 2;
            self.counters.reset_explore();
            return None;
        }
        if snapshot.catches(self.dir) {
            self.state = State::Bounce;
            self.dir = self.dir.opposite();
            self.counters.reset_explore();
            return None;
        }
        if snapshot.caught() {
            self.state = State::Forward;
            self.counters.reset_explore();
            return None;
        }
        Some(Decision::Move(self.dir))
    }

    fn step(&mut self, snapshot: &Snapshot) -> Decision {
        for _ in 0..4 {
            match self.state {
                State::Init | State::Reverse | State::Keep => {
                    if let Some(d) = self.guessing_step(snapshot) {
                        return d;
                    }
                }
                State::Bounce | State::Forward => return Decision::Move(self.dir),
            }
        }
        Decision::Move(self.dir)
    }
}

impl Protocol for Unconscious {
    fn name(&self) -> &'static str {
        "UnconsciousExploration"
    }

    fn termination_kind(&self) -> TerminationKind {
        TerminationKind::Unconscious
    }

    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        self.counters.absorb(snapshot);
        let decision = self.step(snapshot);
        self.counters.record_decision(decision);
        decision
    }

    fn has_terminated(&self) -> bool {
        false
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        dynring_model::clone_state_from(self, src)
    }

    fn state_label(&self) -> String {
        format!("{:?}(G={},dir={})", self.state, self.guess, self.dir)
    }

    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        out.push(match self.state {
            State::Init => 0,
            State::Bounce => 1,
            State::Reverse => 2,
            State::Forward => 3,
            State::Keep => 4,
        });
        dynring_model::statekey::push_u64(out, self.guess);
        out.push(crate::counters::direction_key(Some(self.dir)));
        self.counters.write_state_key(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::{LocalPosition, NodeOccupancy, PriorOutcome};

    fn plain(prior: PriorOutcome) -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior,
            round_hint: None,
        }
    }

    #[test]
    fn starts_left_with_guess_two() {
        let mut a = Unconscious::new();
        assert_eq!(a.guess(), 2);
        assert_eq!(a.decide(&plain(PriorOutcome::Idle)), Decision::Move(LocalDirection::Left));
        assert_eq!(a.direction(), LocalDirection::Left);
    }

    #[test]
    fn guess_doubles_every_2g_rounds_without_blocks() {
        let mut a = Unconscious::new();
        let _ = a.decide(&plain(PriorOutcome::Idle));
        let mut doublings = Vec::new();
        for round in 1..=30 {
            let before = a.guess();
            let d = a.decide(&plain(PriorOutcome::Moved));
            assert_eq!(d, Decision::Move(LocalDirection::Left), "never reverses if never blocked");
            if a.guess() != before {
                doublings.push(round);
            }
        }
        // G: 2 -> 4 after 4 completed rounds, -> 8 after 8 more, -> 16 after 16 more.
        assert_eq!(doublings, vec![4, 12, 28]);
        assert_eq!(a.guess(), 16);
    }

    #[test]
    fn reverses_direction_when_blocked_more_than_g_rounds() {
        let mut a = Unconscious::new();
        let _ = a.decide(&plain(PriorOutcome::Idle));
        // Block the agent for the entire phase: Etime reaches 2G=4 with
        // Btime=4 > G=2, so the phase ends in Reverse and direction flips.
        let mut last = Decision::Stay;
        for _ in 0..4 {
            last = a.decide(&plain(PriorOutcome::BlockedOnPort));
        }
        assert_eq!(last, Decision::Move(LocalDirection::Right));
        assert_eq!(a.direction(), LocalDirection::Right);
        assert_eq!(a.guess(), 4);
    }

    #[test]
    fn catching_locks_opposite_direction_forever() {
        let mut a = Unconscious::new();
        let catch = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 0, on_left_port: 1, on_right_port: 0 },
            prior: PriorOutcome::Idle,
            round_hint: None,
        };
        assert_eq!(a.decide(&catch), Decision::Move(LocalDirection::Right));
        // From now on the direction never changes, no matter what happens.
        for _ in 0..50 {
            assert_eq!(a.decide(&plain(PriorOutcome::BlockedOnPort)), Decision::Move(LocalDirection::Right));
        }
    }

    #[test]
    fn being_caught_locks_current_direction_forever() {
        let mut a = Unconscious::new();
        let _ = a.decide(&plain(PriorOutcome::Idle));
        let caught = Snapshot {
            position: LocalPosition::OnPort(LocalDirection::Left),
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 1, on_left_port: 0, on_right_port: 0 },
            prior: PriorOutcome::BlockedOnPort,
            round_hint: None,
        };
        assert_eq!(a.decide(&caught), Decision::Move(LocalDirection::Left));
        for _ in 0..50 {
            assert_eq!(a.decide(&plain(PriorOutcome::Moved)), Decision::Move(LocalDirection::Left));
        }
    }

    #[test]
    fn never_terminates() {
        let mut a = Unconscious::new();
        for _ in 0..200 {
            let d = a.decide(&plain(PriorOutcome::Moved));
            assert!(d.is_move());
            assert!(!a.has_terminated());
        }
    }
}
