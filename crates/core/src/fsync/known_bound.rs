//! Algorithm `KnownNNoChirality` (Figure 1, Theorem 3).
//!
//! Two anonymous agents without chirality, knowing an upper bound `N ≥ n` on
//! the ring size, explore any 1-interval-connected ring and both explicitly
//! terminate within `3N − 6` rounds.

use crate::counters::Counters;
use dynring_model::{Decision, LocalDirection, Protocol, Snapshot, TerminationKind};
use serde::{Deserialize, Serialize};

/// The states of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum State {
    /// Moving left, watching for blocks/catches.
    Init,
    /// Reversed: moving right until the global timeout.
    Bounce,
    /// Confirmed: keep moving left until the global timeout.
    Forward,
    /// Terminal state.
    Terminate,
}

/// Algorithm `KnownNNoChirality` of Figure 1.
///
/// The agent starts moving `left` (in its own frame). It switches to state
/// `Bounce` (and goes `right` until the end) if it catches the other agent in
/// the first `2N − 4` rounds, if it fails to acquire a port, or if `2N − 4`
/// rounds have passed while it has been blocked for the last `N − 1` rounds.
/// It switches to `Forward` (keeps going `left`) if it is caught, or when
/// `2N − 4` rounds have passed otherwise. Both agents terminate at round
/// `3N − 6`.
///
/// ```
/// use dynring_core::fsync::KnownBound;
/// use dynring_model::{Protocol, TerminationKind};
///
/// let agent = KnownBound::new(10);
/// assert_eq!(agent.termination_kind(), TerminationKind::Explicit);
/// ```
///
/// In the engine's enum-dispatched runtime this type is carried by the
/// [`CatalogProtocol::KnownBound`](crate::CatalogProtocol) fast-path variant
/// (statically dispatched Compute); boxing it through
/// [`Protocol::clone_box`] or `Algorithm::instantiate` selects the
/// virtual-dispatch escape hatch instead. See `docs/ARCHITECTURE.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnownBound {
    bound: u64,
    state: State,
    counters: Counters,
}

impl KnownBound {
    /// Creates an agent knowing the upper bound `N ≥ n` on the ring size.
    ///
    /// # Panics
    ///
    /// Panics if `upper_bound < 3` (no ring that small exists).
    #[must_use]
    pub fn new(upper_bound: usize) -> Self {
        assert!(upper_bound >= 3, "the ring-size upper bound must be at least 3");
        KnownBound { bound: upper_bound as u64, state: State::Init, counters: Counters::new() }
    }

    /// The upper bound `N` this agent was configured with.
    #[must_use]
    pub fn upper_bound(&self) -> usize {
        self.bound as usize
    }

    /// The round threshold `2N − 4` of Figure 1.
    #[must_use]
    pub fn reverse_deadline(&self) -> u64 {
        self.bound.saturating_mul(2).saturating_sub(4)
    }

    /// The termination threshold `3N − 6` of Figure 1 / Theorem 3.
    #[must_use]
    pub fn termination_deadline(&self) -> u64 {
        self.bound.saturating_mul(3).saturating_sub(6)
    }

    /// Access to the agent's counters (used by tests and traces).
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    fn step(&mut self, snapshot: &Snapshot) -> Decision {
        // Chained transitions are processed in the same round, as in the
        // paper ("change state and process it"). Two iterations suffice for
        // this algorithm; the loop guard is defensive.
        for _ in 0..4 {
            match self.state {
                State::Init => {
                    let c = &self.counters;
                    let past_reverse_deadline = c.ttime() >= self.reverse_deadline();
                    // Figure 1 writes `Btime = N − 1`; an agent that was
                    // blocked earlier than round N − 3 reaches the deadline
                    // with `Btime > N − 1`, and the proof of Theorem 3
                    // requires it to bounce in that case too, so the test is
                    // `≥` here.
                    if (past_reverse_deadline && c.btime() >= self.bound.saturating_sub(1))
                        || snapshot.failed()
                        || snapshot.catches(LocalDirection::Left)
                    {
                        self.state = State::Bounce;
                        self.counters.reset_explore();
                        continue;
                    }
                    if snapshot.caught() || past_reverse_deadline {
                        self.state = State::Forward;
                        self.counters.reset_explore();
                        continue;
                    }
                    return Decision::Move(LocalDirection::Left);
                }
                State::Bounce => {
                    if self.counters.ttime() >= self.termination_deadline() {
                        self.state = State::Terminate;
                        continue;
                    }
                    return Decision::Move(LocalDirection::Right);
                }
                State::Forward => {
                    if self.counters.ttime() >= self.termination_deadline() {
                        self.state = State::Terminate;
                        continue;
                    }
                    return Decision::Move(LocalDirection::Left);
                }
                State::Terminate => return Decision::Terminate,
            }
        }
        Decision::Terminate
    }
}

impl Protocol for KnownBound {
    fn name(&self) -> &'static str {
        "KnownNNoChirality"
    }

    fn termination_kind(&self) -> TerminationKind {
        TerminationKind::Explicit
    }

    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        self.counters.absorb(snapshot);
        let decision = self.step(snapshot);
        self.counters.record_decision(decision);
        decision
    }

    fn has_terminated(&self) -> bool {
        self.state == State::Terminate
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        dynring_model::clone_state_from(self, src)
    }

    fn state_label(&self) -> String {
        format!("{:?}(Ttime={},Btime={})", self.state, self.counters.ttime(), self.counters.btime())
    }

    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        dynring_model::statekey::push_u64(out, self.bound);
        out.push(match self.state {
            State::Init => 0,
            State::Bounce => 1,
            State::Forward => 2,
            State::Terminate => 3,
        });
        self.counters.write_state_key(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::{LocalPosition, NodeOccupancy, PriorOutcome};

    fn plain(prior: PriorOutcome) -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior,
            round_hint: None,
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_bound_below_three() {
        let _ = KnownBound::new(2);
    }

    #[test]
    fn thresholds_match_figure_1() {
        let a = KnownBound::new(10);
        assert_eq!(a.reverse_deadline(), 16);
        assert_eq!(a.termination_deadline(), 24);
        assert_eq!(a.upper_bound(), 10);
    }

    #[test]
    fn starts_moving_left_and_keeps_left_without_events() {
        let mut a = KnownBound::new(8);
        for _ in 0..5 {
            assert_eq!(a.decide(&plain(PriorOutcome::Moved)), Decision::Move(LocalDirection::Left));
        }
        assert!(!a.has_terminated());
    }

    #[test]
    fn failed_port_acquisition_causes_bounce() {
        let mut a = KnownBound::new(8);
        assert_eq!(a.decide(&plain(PriorOutcome::Idle)), Decision::Move(LocalDirection::Left));
        assert_eq!(
            a.decide(&plain(PriorOutcome::PortAcquisitionFailed)),
            Decision::Move(LocalDirection::Right)
        );
        // It stays in Bounce (right) from then on.
        assert_eq!(a.decide(&plain(PriorOutcome::Moved)), Decision::Move(LocalDirection::Right));
    }

    #[test]
    fn catching_the_other_agent_causes_bounce() {
        let mut a = KnownBound::new(8);
        let snap = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 0, on_left_port: 1, on_right_port: 0 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        };
        assert_eq!(a.decide(&snap), Decision::Move(LocalDirection::Right));
    }

    #[test]
    fn being_caught_causes_forward() {
        let mut a = KnownBound::new(8);
        let snap = Snapshot {
            position: LocalPosition::OnPort(LocalDirection::Left),
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 1, on_left_port: 0, on_right_port: 0 },
            prior: PriorOutcome::BlockedOnPort,
            round_hint: None,
        };
        assert_eq!(a.decide(&snap), Decision::Move(LocalDirection::Left));
        // Forward keeps going left even if it later sees the other agent on
        // its left port (no more bouncing).
        let catches = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 0, on_left_port: 1, on_right_port: 0 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        };
        assert_eq!(a.decide(&catches), Decision::Move(LocalDirection::Left));
    }

    #[test]
    fn terminates_exactly_at_the_deadline() {
        let n = 6;
        let mut a = KnownBound::new(n);
        let deadline = a.termination_deadline(); // 3N - 6 = 12
        let mut rounds = 0u64;
        loop {
            let d = a.decide(&plain(if rounds == 0 {
                PriorOutcome::Idle
            } else {
                PriorOutcome::Moved
            }));
            rounds += 1;
            if d == Decision::Terminate {
                break;
            }
            assert!(rounds < 100, "agent never terminated");
        }
        // Ttime = deadline at the terminating decision, which happens in
        // round deadline + 1 (the agent has completed `deadline` rounds).
        assert_eq!(rounds, deadline + 1);
        assert!(a.has_terminated());
        // Once terminated it stays terminated.
        assert_eq!(a.decide(&plain(PriorOutcome::Idle)), Decision::Terminate);
    }

    #[test]
    fn blocked_for_last_n_minus_1_rounds_of_the_first_phase_causes_bounce() {
        // N = 5: reverse deadline 2N-4 = 6. The bounce-on-block predicate
        // fires at the decision where Ttime = 6 and Btime = N-1 = 4, i.e. the
        // agent spent the last 4 of the first 6 rounds waiting on a port.
        let mut a = KnownBound::new(5);
        assert_eq!(a.decide(&plain(PriorOutcome::Idle)), Decision::Move(LocalDirection::Left));
        for _ in 0..2 {
            assert_eq!(a.decide(&plain(PriorOutcome::Moved)), Decision::Move(LocalDirection::Left));
        }
        for _ in 0..3 {
            assert_eq!(
                a.decide(&plain(PriorOutcome::BlockedOnPort)),
                Decision::Move(LocalDirection::Left)
            );
        }
        // Fourth consecutive blocked round: Ttime = 6, Btime = 4 → Bounce.
        assert_eq!(
            a.decide(&plain(PriorOutcome::BlockedOnPort)),
            Decision::Move(LocalDirection::Right)
        );
        assert_eq!(a.decide(&plain(PriorOutcome::Moved)), Decision::Move(LocalDirection::Right));
    }

    #[test]
    fn agent_blocked_from_the_start_still_bounces_at_the_deadline() {
        // Blocked from round 1: at Ttime = 2N-4 its Btime exceeds N-1, and it
        // must still reverse (this is the case the proof of Theorem 3 needs
        // when both agents are parked on the two sides of the same missing
        // edge).
        let mut a = KnownBound::new(5);
        assert_eq!(a.decide(&plain(PriorOutcome::Idle)), Decision::Move(LocalDirection::Left));
        for _ in 0..5 {
            assert_eq!(
                a.decide(&plain(PriorOutcome::BlockedOnPort)),
                Decision::Move(LocalDirection::Left)
            );
        }
        // Ttime = 6 = 2N-4, Btime = 6 ≥ N-1 = 4 → Bounce.
        assert_eq!(
            a.decide(&plain(PriorOutcome::BlockedOnPort)),
            Decision::Move(LocalDirection::Right)
        );
    }

    #[test]
    fn unblocked_agent_switches_to_forward_at_the_reverse_deadline() {
        // N = 5: at Ttime = 6 with no block the agent enters Forward and
        // keeps moving left; it no longer reacts to `catches`.
        let mut a = KnownBound::new(5);
        let _ = a.decide(&plain(PriorOutcome::Idle));
        for _ in 0..6 {
            assert_eq!(a.decide(&plain(PriorOutcome::Moved)), Decision::Move(LocalDirection::Left));
        }
        let catches = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 0, on_left_port: 1, on_right_port: 0 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        };
        assert_eq!(a.decide(&catches), Decision::Move(LocalDirection::Left));
    }

    #[test]
    fn clone_box_preserves_state() {
        let mut a = KnownBound::new(8);
        let _ = a.decide(&plain(PriorOutcome::Idle));
        let _ = a.decide(&plain(PriorOutcome::PortAcquisitionFailed));
        let cloned = a.clone_box();
        assert_eq!(cloned.state_label(), a.state_label());
        assert_eq!(a.name(), "KnownNNoChirality");
    }
}
