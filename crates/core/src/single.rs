//! The lone wanderer (Observation 1 / Corollary 1).
//!
//! A single agent can never explore a dynamic ring: the adversary simply
//! removes, in every round, the edge the agent is about to cross. This
//! protocol is the natural single-agent strategy (walk in one direction,
//! optionally turning around after a long block) and exists so that the
//! impossibility can be demonstrated experimentally against the
//! [`BlockSingleAgent`-style adversary](https://docs.rs/dynring-engine) in
//! the analysis crate.

use crate::counters::Counters;
use dynring_model::{Decision, LocalDirection, Protocol, Snapshot, TerminationKind};
use serde::{Deserialize, Serialize};

/// A single agent walking around the ring, reversing direction after waiting
/// on a missing edge for `patience` consecutive rounds (`patience = 0` never
/// reverses).
///
/// ```
/// use dynring_core::single::LoneWalker;
/// use dynring_model::Protocol;
///
/// let agent = LoneWalker::new(3);
/// assert_eq!(agent.name(), "LoneWalker");
/// ```
///
/// In the engine's enum-dispatched runtime this type is carried by the
/// [`CatalogProtocol::LoneWalker`](crate::CatalogProtocol) fast-path variant
/// (statically dispatched Compute); boxing it through
/// [`Protocol::clone_box`] or `Algorithm::instantiate` selects the
/// virtual-dispatch escape hatch instead. See `docs/ARCHITECTURE.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoneWalker {
    patience: u64,
    dir: LocalDirection,
    counters: Counters,
}

impl LoneWalker {
    /// Creates a walker that reverses after `patience` blocked rounds
    /// (`0` = never reverse).
    #[must_use]
    pub fn new(patience: u64) -> Self {
        LoneWalker { patience, dir: LocalDirection::Left, counters: Counters::new() }
    }

    /// The walker's current direction.
    #[must_use]
    pub const fn direction(&self) -> LocalDirection {
        self.dir
    }

    /// Access to the agent's counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }
}

impl Protocol for LoneWalker {
    fn name(&self) -> &'static str {
        "LoneWalker"
    }

    fn termination_kind(&self) -> TerminationKind {
        TerminationKind::Unconscious
    }

    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        self.counters.absorb(snapshot);
        if self.patience > 0 && self.counters.btime() >= self.patience {
            self.dir = self.dir.opposite();
        }
        let decision = Decision::Move(self.dir);
        self.counters.record_decision(decision);
        decision
    }

    fn has_terminated(&self) -> bool {
        false
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        dynring_model::clone_state_from(self, src)
    }

    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        dynring_model::statekey::push_u64(out, self.patience);
        out.push(crate::counters::direction_key(Some(self.dir)));
        self.counters.write_state_key(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::{LocalPosition, NodeOccupancy, PriorOutcome};

    fn snap(prior: PriorOutcome) -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior,
            round_hint: None,
        }
    }

    #[test]
    fn walks_left_until_patience_runs_out() {
        let mut a = LoneWalker::new(2);
        assert_eq!(a.decide(&snap(PriorOutcome::Idle)), Decision::Move(LocalDirection::Left));
        assert_eq!(a.decide(&snap(PriorOutcome::BlockedOnPort)), Decision::Move(LocalDirection::Left));
        // Second consecutive blocked round reaches the patience threshold.
        assert_eq!(a.decide(&snap(PriorOutcome::BlockedOnPort)), Decision::Move(LocalDirection::Right));
        assert_eq!(a.direction(), LocalDirection::Right);
    }

    #[test]
    fn zero_patience_never_reverses() {
        let mut a = LoneWalker::new(0);
        for _ in 0..20 {
            assert_eq!(a.decide(&snap(PriorOutcome::BlockedOnPort)), Decision::Move(LocalDirection::Left));
        }
        assert!(!a.has_terminated());
    }
}
