//! Algorithms `PTBoundWithChirality` (Figure 14, Theorem 12) and
//! `PTLandmarkWithChirality` (Figure 17, Theorem 14).
//!
//! Two agents with chirality in the Passive Transport model. Both algorithms
//! share the `Init` / `Bounce` / `Reverse` structure; they differ only in the
//! termination test: `Tnodes ≥ N` when an upper bound is known versus
//! "`n` is known" (a full loop around the landmark) when the ring has a
//! landmark. One agent always terminates explicitly; the other terminates or
//! ends up waiting forever on a port (strong partial termination).

use crate::counters::Counters;
use dynring_model::{Decision, LocalDirection, Protocol, Snapshot, TerminationKind};
use serde::{Deserialize, Serialize};

/// How the agent decides that the whole ring has certainly been visited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum DoneTest {
    /// `Tnodes ≥ N` for a known upper bound `N` (Figure 14).
    UpperBound(u64),
    /// The agent completed a loop around the landmark, i.e. "n is known"
    /// (Figure 17).
    LandmarkLoop,
}

/// States of Figures 14 / 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum State {
    /// Moving left until the other agent is caught.
    Init,
    /// Caught the other agent: moving right.
    Bounce,
    /// Found a missing edge while bouncing: moving left again.
    Reverse,
    /// Terminal state.
    Terminate,
}

/// Shared implementation of the two-agent PT algorithms with chirality.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct PtChirality {
    done: DoneTest,
    state: State,
    left_steps: Option<u64>,
    right_steps: Option<u64>,
    counters: Counters,
}

impl PtChirality {
    fn new(done: DoneTest) -> Self {
        PtChirality {
            done,
            state: State::Init,
            left_steps: None,
            right_steps: None,
            counters: Counters::new(),
        }
    }

    fn explored(&self) -> bool {
        match self.done {
            DoneTest::UpperBound(n) => self.counters.tnodes() >= n,
            DoneTest::LandmarkLoop => self.counters.knows_size(),
        }
    }

    fn enter_terminate(&mut self) -> Decision {
        self.state = State::Terminate;
        Decision::Terminate
    }

    fn enter_bounce(&mut self) -> Decision {
        // leftSteps ← Esteps; terminate if the previous right excursion was
        // already at least as long (the agents crossed).
        let left_steps = self.counters.esteps();
        self.left_steps = Some(left_steps);
        if self.right_steps.is_some_and(|right| right >= left_steps) {
            return self.enter_terminate();
        }
        self.state = State::Bounce;
        self.counters.reset_explore();
        Decision::Move(LocalDirection::Right)
    }

    fn enter_reverse(&mut self) -> Decision {
        self.right_steps = Some(self.counters.esteps());
        self.state = State::Reverse;
        self.counters.reset_explore();
        Decision::Move(LocalDirection::Left)
    }

    fn write_state_key(&self, out: &mut Vec<u8>) {
        use dynring_model::statekey::{push_opt_u64, push_u64};
        match self.done {
            DoneTest::UpperBound(n) => {
                out.push(0);
                push_u64(out, n);
            }
            DoneTest::LandmarkLoop => out.push(1),
        }
        out.push(match self.state {
            State::Init => 0,
            State::Bounce => 1,
            State::Reverse => 2,
            State::Terminate => 3,
        });
        push_opt_u64(out, self.left_steps);
        push_opt_u64(out, self.right_steps);
        self.counters.write_state_key(out);
    }

    fn step(&mut self, snapshot: &Snapshot) -> Decision {
        match self.state {
            State::Init => {
                if self.explored() {
                    return self.enter_terminate();
                }
                if snapshot.catches(LocalDirection::Left) {
                    return self.enter_bounce();
                }
                Decision::Move(LocalDirection::Left)
            }
            State::Bounce => {
                if self.explored() {
                    return self.enter_terminate();
                }
                if self.counters.btime() > 0 {
                    return self.enter_reverse();
                }
                Decision::Move(LocalDirection::Right)
            }
            State::Reverse => {
                if self.explored() {
                    return self.enter_terminate();
                }
                if snapshot.catches(LocalDirection::Left) {
                    return self.enter_bounce();
                }
                Decision::Move(LocalDirection::Left)
            }
            State::Terminate => Decision::Terminate,
        }
    }

    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        self.counters.absorb(snapshot);
        let decision = self.step(snapshot);
        self.counters.record_decision(decision);
        decision
    }

    fn label(&self) -> String {
        format!(
            "{:?}(Tnodes={},left={:?},right={:?})",
            self.state,
            self.counters.tnodes(),
            self.left_steps,
            self.right_steps
        )
    }
}

/// Algorithm `PTBoundWithChirality` of Figure 14: two agents, chirality,
/// known upper bound `N`; `O(N²)` edge traversals (Theorem 12), which is
/// optimal up to the accuracy of the bound (Theorem 13).
///
/// ```
/// use dynring_core::ssync::PtBoundChirality;
/// use dynring_model::{Protocol, TerminationKind};
///
/// let agent = PtBoundChirality::new(12);
/// assert_eq!(agent.termination_kind(), TerminationKind::Partial);
/// ```
///
/// In the engine's enum-dispatched runtime this type is carried by the
/// [`CatalogProtocol::PtBoundChirality`](crate::CatalogProtocol) fast-path variant
/// (statically dispatched Compute); boxing it through
/// [`Protocol::clone_box`] or `Algorithm::instantiate` selects the
/// virtual-dispatch escape hatch instead. See `docs/ARCHITECTURE.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtBoundChirality {
    inner: PtChirality,
}

impl PtBoundChirality {
    /// Creates an agent knowing the upper bound `N ≥ n`.
    ///
    /// # Panics
    ///
    /// Panics if `upper_bound < 3`.
    #[must_use]
    pub fn new(upper_bound: usize) -> Self {
        assert!(upper_bound >= 3, "the ring-size upper bound must be at least 3");
        PtBoundChirality { inner: PtChirality::new(DoneTest::UpperBound(upper_bound as u64)) }
    }

    /// Access to the agent's counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.inner.counters
    }
}

impl Protocol for PtBoundChirality {
    fn name(&self) -> &'static str {
        "PTBoundWithChirality"
    }

    fn termination_kind(&self) -> TerminationKind {
        TerminationKind::Partial
    }

    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        self.inner.decide(snapshot)
    }

    fn has_terminated(&self) -> bool {
        self.inner.state == State::Terminate
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        dynring_model::clone_state_from(self, src)
    }

    fn state_label(&self) -> String {
        self.inner.label()
    }

    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        self.inner.write_state_key(out);
        true
    }
}

/// Algorithm `PTLandmarkWithChirality` of Figure 17: two agents, chirality,
/// landmark; `O(n²)` edge traversals (Theorem 14), asymptotically optimal
/// (Theorem 15).
///
/// ```
/// use dynring_core::ssync::PtLandmarkChirality;
/// use dynring_model::Protocol;
///
/// let agent = PtLandmarkChirality::new();
/// assert_eq!(agent.name(), "PTLandmarkWithChirality");
/// ```
///
/// In the engine's enum-dispatched runtime this type is carried by the
/// [`CatalogProtocol::PtLandmarkChirality`](crate::CatalogProtocol) fast-path variant
/// (statically dispatched Compute); boxing it through
/// [`Protocol::clone_box`] or `Algorithm::instantiate` selects the
/// virtual-dispatch escape hatch instead. See `docs/ARCHITECTURE.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtLandmarkChirality {
    inner: PtChirality,
}

impl Default for PtLandmarkChirality {
    fn default() -> Self {
        Self::new()
    }
}

impl PtLandmarkChirality {
    /// Creates a fresh agent.
    #[must_use]
    pub fn new() -> Self {
        PtLandmarkChirality { inner: PtChirality::new(DoneTest::LandmarkLoop) }
    }

    /// Access to the agent's counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.inner.counters
    }
}

impl Protocol for PtLandmarkChirality {
    fn name(&self) -> &'static str {
        "PTLandmarkWithChirality"
    }

    fn termination_kind(&self) -> TerminationKind {
        TerminationKind::Partial
    }

    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        self.inner.decide(snapshot)
    }

    fn has_terminated(&self) -> bool {
        self.inner.state == State::Terminate
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        dynring_model::clone_state_from(self, src)
    }

    fn state_label(&self) -> String {
        self.inner.label()
    }

    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        self.inner.write_state_key(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::{LocalPosition, NodeOccupancy, PriorOutcome};

    fn plain(prior: PriorOutcome, landmark: bool) -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: landmark,
            occupancy: NodeOccupancy::default(),
            prior,
            round_hint: None,
        }
    }

    fn catches_left() -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 0, on_left_port: 1, on_right_port: 0 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn bound_variant_rejects_tiny_bounds() {
        let _ = PtBoundChirality::new(2);
    }

    #[test]
    fn moves_left_until_catching_then_bounces_right() {
        let mut a = PtBoundChirality::new(10);
        assert_eq!(a.decide(&plain(PriorOutcome::Idle, false)), Decision::Move(LocalDirection::Left));
        assert_eq!(a.decide(&plain(PriorOutcome::Moved, false)), Decision::Move(LocalDirection::Left));
        assert_eq!(a.decide(&catches_left()), Decision::Move(LocalDirection::Right));
        // A missing edge while bouncing reverses again.
        assert_eq!(
            a.decide(&plain(PriorOutcome::BlockedOnPort, false)),
            Decision::Move(LocalDirection::Left)
        );
    }

    #[test]
    fn terminates_after_perceiving_n_distinct_nodes() {
        let upper = 6;
        let mut a = PtBoundChirality::new(upper);
        let mut d = a.decide(&plain(PriorOutcome::Idle, false));
        let mut moves = 0;
        while d.is_move() {
            d = a.decide(&plain(PriorOutcome::Moved, false));
            moves += 1;
            assert!(moves < 20, "should have terminated after {upper} perceived nodes");
        }
        assert_eq!(d, Decision::Terminate);
        assert!(a.has_terminated());
        // It needed upper-1 successful moves to have perceived `upper` nodes.
        assert_eq!(a.counters().tnodes() as usize, upper);
    }

    #[test]
    fn terminates_when_bounce_then_reverse_detects_crossing() {
        let mut a = PtBoundChirality::new(50);
        // Catch immediately: leftSteps = 0, bounce right.
        assert_eq!(a.decide(&catches_left()), Decision::Move(LocalDirection::Right));
        // Make 3 successful right steps, then hit a missing edge → Reverse.
        for _ in 0..3 {
            assert_eq!(a.decide(&plain(PriorOutcome::Moved, false)), Decision::Move(LocalDirection::Right));
        }
        assert_eq!(
            a.decide(&plain(PriorOutcome::BlockedOnPort, false)),
            Decision::Move(LocalDirection::Left)
        );
        // Catch again after only 1 left step: rightSteps (3) ≥ leftSteps (1),
        // so the agents must have crossed — terminate.
        assert_eq!(a.decide(&plain(PriorOutcome::Moved, false)), Decision::Move(LocalDirection::Left));
        assert_eq!(a.decide(&catches_left()), Decision::Terminate);
        assert!(a.has_terminated());
    }

    #[test]
    fn landmark_variant_terminates_after_a_full_loop() {
        let n = 5i64;
        let mut a = PtLandmarkChirality::new();
        let mut pos = 0i64;
        let mut d = a.decide(&plain(PriorOutcome::Idle, true));
        let mut steps = 0;
        while let Decision::Move(dir) = d {
            pos += match dir {
                LocalDirection::Left => -1,
                LocalDirection::Right => 1,
            };
            steps += 1;
            assert!(steps < 3 * n, "should terminate after one loop");
            d = a.decide(&plain(PriorOutcome::Moved, pos.rem_euclid(n) == 0));
        }
        assert_eq!(d, Decision::Terminate);
        assert_eq!(a.counters().known_size(), Some(n as u64));
    }

    #[test]
    fn landmark_variant_keeps_walking_without_a_landmark() {
        let mut a = PtLandmarkChirality::new();
        let mut d = a.decide(&plain(PriorOutcome::Idle, false));
        for _ in 0..100 {
            assert!(d.is_move());
            d = a.decide(&plain(PriorOutcome::Moved, false));
        }
        assert!(!a.has_terminated());
    }

    #[test]
    fn names_and_termination_kinds() {
        assert_eq!(PtBoundChirality::new(5).name(), "PTBoundWithChirality");
        assert_eq!(PtLandmarkChirality::new().name(), "PTLandmarkWithChirality");
        assert_eq!(PtBoundChirality::new(5).termination_kind(), TerminationKind::Partial);
        assert_eq!(PtLandmarkChirality::new().termination_kind(), TerminationKind::Partial);
    }
}
