//! Unconscious exploration in the ET model (Theorem 18).
//!
//! "A trivial algorithm in which an agent changes direction only when it
//! catches someone solves the exploration in ET" — two agents with chirality
//! suffice.

use crate::counters::Counters;
use dynring_model::{Decision, LocalDirection, Protocol, Snapshot, TerminationKind};
use serde::{Deserialize, Serialize};

/// The Theorem 18 protocol: walk in one direction, reverse only on a catch,
/// never terminate.
///
/// ```
/// use dynring_core::ssync::EtUnconscious;
/// use dynring_model::{Protocol, TerminationKind};
///
/// let agent = EtUnconscious::new();
/// assert_eq!(agent.termination_kind(), TerminationKind::Unconscious);
/// ```
///
/// In the engine's enum-dispatched runtime this type is carried by the
/// [`CatalogProtocol::EtUnconscious`](crate::CatalogProtocol) fast-path variant
/// (statically dispatched Compute); boxing it through
/// [`Protocol::clone_box`] or `Algorithm::instantiate` selects the
/// virtual-dispatch escape hatch instead. See `docs/ARCHITECTURE.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EtUnconscious {
    dir: LocalDirection,
    counters: Counters,
}

impl Default for EtUnconscious {
    fn default() -> Self {
        Self::new()
    }
}

impl EtUnconscious {
    /// Creates a fresh agent moving left.
    #[must_use]
    pub fn new() -> Self {
        EtUnconscious { dir: LocalDirection::Left, counters: Counters::new() }
    }

    /// The direction the agent is currently following.
    #[must_use]
    pub const fn direction(&self) -> LocalDirection {
        self.dir
    }

    /// Access to the agent's counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }
}

impl Protocol for EtUnconscious {
    fn name(&self) -> &'static str {
        "ETUnconscious"
    }

    fn termination_kind(&self) -> TerminationKind {
        TerminationKind::Unconscious
    }

    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        self.counters.absorb(snapshot);
        if snapshot.catches(self.dir) {
            self.dir = self.dir.opposite();
        }
        let decision = Decision::Move(self.dir);
        self.counters.record_decision(decision);
        decision
    }

    fn has_terminated(&self) -> bool {
        false
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        dynring_model::clone_state_from(self, src)
    }

    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        out.push(crate::counters::direction_key(Some(self.dir)));
        self.counters.write_state_key(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::{LocalPosition, NodeOccupancy, PriorOutcome};

    fn plain(prior: PriorOutcome) -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior,
            round_hint: None,
        }
    }

    #[test]
    fn reverses_only_on_catches() {
        let mut a = EtUnconscious::new();
        assert_eq!(a.decide(&plain(PriorOutcome::Idle)), Decision::Move(LocalDirection::Left));
        // Blocked rounds do not change direction.
        for _ in 0..10 {
            assert_eq!(a.decide(&plain(PriorOutcome::BlockedOnPort)), Decision::Move(LocalDirection::Left));
        }
        // Catching the other agent on the left port reverses.
        let catch = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 0, on_left_port: 1, on_right_port: 0 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        };
        assert_eq!(a.decide(&catch), Decision::Move(LocalDirection::Right));
        assert_eq!(a.direction(), LocalDirection::Right);
        // Catching on the right port reverses back.
        let catch_right = Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 0, on_left_port: 0, on_right_port: 1 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        };
        assert_eq!(a.decide(&catch_right), Decision::Move(LocalDirection::Left));
    }

    #[test]
    fn never_terminates() {
        let mut a = EtUnconscious::new();
        for _ in 0..100 {
            let _ = a.decide(&plain(PriorOutcome::Moved));
            assert!(!a.has_terminated());
        }
    }
}
