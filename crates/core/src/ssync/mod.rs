//! Semi-synchronous (SSYNC) exploration algorithms (Section 4).
//!
//! Under SSYNC an adversary activates an arbitrary non-empty subset of the
//! agents each round (every agent infinitely often); what happens to an agent
//! sleeping on a port distinguishes the NS / PT / ET transport models. The
//! complexity measure is the total number of edge traversals.
//!
//! | Algorithm | Paper | Model | Assumptions | Guarantee |
//! |---|---|---|---|---|
//! | [`PtBoundChirality`] | Fig. 14, Th. 12 | PT | 2 agents, chirality, known `N` | exploration, strong partial termination, `O(N²)` moves |
//! | [`PtLandmarkChirality`] | Fig. 17, Th. 14 | PT | 2 agents, chirality, landmark | exploration, strong partial termination, `O(n²)` moves |
//! | [`PtNoChirality`] (bound) | Fig. 18, Th. 16 | PT | 3 agents, known `N` | exploration, strong partial termination, `O(N²)` moves |
//! | [`PtNoChirality`] (landmark) | Th. 17 | PT | 3 agents, landmark | exploration, strong partial termination, `O(n²)` moves |
//! | [`PtNoChirality`] (exact, strict) | Th. 20 | ET | 3 agents, exact `n` | exploration, strong partial termination |
//! | [`EtUnconscious`] | Th. 18 | ET | 2 agents, chirality | unconscious exploration |
//!
//! Exploration in the NS model is impossible with any number of agents
//! (Theorem 9); there is therefore no NS algorithm — the analysis crate
//! demonstrates the impossibility by running these protocols against the
//! Theorem 9 adversary.

mod et_unconscious;
mod pt_chirality;
mod pt_no_chirality;

pub use et_unconscious::EtUnconscious;
pub use pt_chirality::{PtBoundChirality, PtLandmarkChirality};
pub use pt_no_chirality::{PtNoChirality, SizeTermination};
