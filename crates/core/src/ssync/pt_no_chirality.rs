//! Algorithms `PTBoundNoChirality` (Figure 18, Theorem 16),
//! `PTLandmarkNoChirality` (Theorem 17) and `ETBoundNoChirality`
//! (Theorem 20).
//!
//! Three anonymous agents without chirality in the PT (or ET) model. The
//! three variants share the zig-zag structure of Figure 18: an agent reverses
//! direction only when it *catches* another agent waiting on a missing edge,
//! memorises the distance `d` travelled between direction changes, and
//! terminates as soon as a new excursion is not strictly longer than the
//! previous one (the agents must have crossed), or when it has certainly
//! visited the whole ring.

use crate::counters::Counters;
use dynring_model::{Decision, LocalDirection, Protocol, Snapshot, TerminationKind};
use serde::{Deserialize, Serialize};

/// The "certainly explored" test used by the three variants of Figure 18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeTermination {
    /// `Tnodes ≥ N` for a known upper bound `N ≥ n` (Figure 18).
    UpperBound(u64),
    /// `Tnodes ≥ n` for exactly known ring size `n` (the `ETBoundNoChirality`
    /// adaptation of Theorem 20; exact knowledge is necessary in ET by
    /// Theorem 19).
    ExactSize(u64),
    /// "n is known": the agent completed a loop around the landmark
    /// (`PTLandmarkNoChirality`, Theorem 17).
    LandmarkLoop,
}

impl SizeTermination {
    fn satisfied(self, counters: &Counters) -> bool {
        match self {
            SizeTermination::UpperBound(n) | SizeTermination::ExactSize(n) => {
                counters.tnodes() >= n
            }
            SizeTermination::LandmarkLoop => counters.knows_size(),
        }
    }
}

/// States of Figure 18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum State {
    /// Moving left until another agent is caught.
    Init,
    /// Moving right after catching someone while moving left.
    Bounce,
    /// Moving left after catching someone while moving right.
    Reverse,
    /// Met another agent in a node while moving left.
    MeetingR,
    /// Met another agent in a node while moving right.
    MeetingB,
    /// Terminal state.
    Terminate,
}

/// Algorithm `PTBoundNoChirality` of Figure 18 and its landmark / ET
/// variants, selected by the [`SizeTermination`] test and the strictness of
/// the distance check.
///
/// ```
/// use dynring_core::ssync::{PtNoChirality, SizeTermination};
/// use dynring_model::{Protocol, TerminationKind};
///
/// // Figure 18: PT model, three agents, known upper bound.
/// let pt = PtNoChirality::with_upper_bound(16);
/// assert_eq!(pt.name(), "PTBoundNoChirality");
///
/// // Theorem 20: ET model, three agents, exact ring size, strict checks.
/// let et = PtNoChirality::for_eventual_transport(16);
/// assert_eq!(et.name(), "ETBoundNoChirality");
/// assert_eq!(et.termination_kind(), TerminationKind::Partial);
/// ```
///
/// In the engine's enum-dispatched runtime this type is carried by the
/// [`CatalogProtocol::PtNoChirality`](crate::CatalogProtocol) fast-path variant
/// (statically dispatched Compute); boxing it through
/// [`Protocol::clone_box`] or `Algorithm::instantiate` selects the
/// virtual-dispatch escape hatch instead. See `docs/ARCHITECTURE.md`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtNoChirality {
    done: SizeTermination,
    /// ET uses strict comparisons (`<` instead of `≤`) in the distance
    /// checks, per Section 4.3.2.
    strict: bool,
    state: State,
    d: u64,
    counters: Counters,
}

impl PtNoChirality {
    /// Figure 18 (`PTBoundNoChirality`): PT model with a known upper bound.
    ///
    /// # Panics
    ///
    /// Panics if `upper_bound < 3`.
    #[must_use]
    pub fn with_upper_bound(upper_bound: usize) -> Self {
        assert!(upper_bound >= 3, "the ring-size upper bound must be at least 3");
        Self::build(SizeTermination::UpperBound(upper_bound as u64), false)
    }

    /// Theorem 17 (`PTLandmarkNoChirality`): PT model with a landmark.
    #[must_use]
    pub fn with_landmark() -> Self {
        Self::build(SizeTermination::LandmarkLoop, false)
    }

    /// Theorem 20 (`ETBoundNoChirality`): ET model with exactly known size
    /// and strict distance checks.
    ///
    /// # Panics
    ///
    /// Panics if `ring_size < 3`.
    #[must_use]
    pub fn for_eventual_transport(ring_size: usize) -> Self {
        assert!(ring_size >= 3, "the ring size must be at least 3");
        Self::build(SizeTermination::ExactSize(ring_size as u64), true)
    }

    /// Fully general constructor (exposed for experiments that want to mix
    /// the dimensions, e.g. ablations in the benchmark crate).
    #[must_use]
    pub fn with_termination(done: SizeTermination, strict: bool) -> Self {
        Self::build(done, strict)
    }

    fn build(done: SizeTermination, strict: bool) -> Self {
        PtNoChirality { done, strict, state: State::Init, d: 0, counters: Counters::new() }
    }

    /// The termination test this agent uses.
    #[must_use]
    pub const fn termination_test(&self) -> SizeTermination {
        self.done
    }

    /// The memorised excursion length `d`.
    #[must_use]
    pub const fn excursion(&self) -> u64 {
        self.d
    }

    /// Access to the agent's counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    fn explored(&self) -> bool {
        self.done.satisfied(&self.counters)
    }

    /// The distance test of function `CheckD` and of the `Meeting*` states:
    /// `x ≤ d` in PT, `x < d` in ET.
    fn too_short(&self, x: u64) -> bool {
        if self.strict {
            x < self.d
        } else {
            x <= self.d
        }
    }

    fn enter_terminate(&mut self) -> Decision {
        self.state = State::Terminate;
        Decision::Terminate
    }

    /// Function `CheckD(x)` of Figure 18. Returns `true` if the agent must
    /// terminate.
    fn check_d(&mut self, x: u64) -> bool {
        if self.d > 0 {
            if self.too_short(x) {
                return true;
            }
            self.d = x;
        }
        false
    }

    fn enter_bounce(&mut self) -> Decision {
        let steps = self.counters.esteps();
        if self.check_d(steps) {
            return self.enter_terminate();
        }
        self.state = State::Bounce;
        self.counters.reset_explore();
        Decision::Move(LocalDirection::Right)
    }

    fn enter_reverse(&mut self) -> Decision {
        let steps = self.counters.esteps();
        if self.d == 0 {
            // First change of direction from Bounce to Reverse: remember the
            // excursion length without testing it.
            self.d = steps;
        } else if self.check_d(steps) {
            return self.enter_terminate();
        }
        self.state = State::Reverse;
        self.counters.reset_explore();
        Decision::Move(LocalDirection::Left)
    }

    fn enter_meeting(&mut self, state: State, dir: LocalDirection) -> Decision {
        // The Meeting states do NOT reset Esteps (ExploreNoResetEsteps).
        if self.d > 0 && self.too_short(self.counters.esteps()) {
            return self.enter_terminate();
        }
        self.state = state;
        Decision::Move(dir)
    }

    fn step(&mut self, snapshot: &Snapshot) -> Decision {
        match self.state {
            State::Init => {
                if self.explored() {
                    return self.enter_terminate();
                }
                if snapshot.catches(LocalDirection::Left) {
                    return self.enter_bounce();
                }
                Decision::Move(LocalDirection::Left)
            }
            State::Bounce => {
                if self.explored() {
                    return self.enter_terminate();
                }
                if snapshot.meeting() {
                    return self.enter_meeting(State::MeetingB, LocalDirection::Right);
                }
                if snapshot.catches(LocalDirection::Right) {
                    return self.enter_reverse();
                }
                Decision::Move(LocalDirection::Right)
            }
            State::Reverse => {
                if self.explored() {
                    return self.enter_terminate();
                }
                if snapshot.meeting() {
                    return self.enter_meeting(State::MeetingR, LocalDirection::Left);
                }
                if snapshot.catches(LocalDirection::Left) {
                    return self.enter_bounce();
                }
                Decision::Move(LocalDirection::Left)
            }
            State::MeetingR => {
                if self.explored() {
                    return self.enter_terminate();
                }
                if snapshot.catches(LocalDirection::Left) {
                    return self.enter_bounce();
                }
                Decision::Move(LocalDirection::Left)
            }
            State::MeetingB => {
                if self.explored() {
                    return self.enter_terminate();
                }
                if snapshot.catches(LocalDirection::Right) {
                    return self.enter_reverse();
                }
                Decision::Move(LocalDirection::Right)
            }
            State::Terminate => Decision::Terminate,
        }
    }
}

impl Protocol for PtNoChirality {
    fn name(&self) -> &'static str {
        match self.done {
            SizeTermination::UpperBound(_) => "PTBoundNoChirality",
            SizeTermination::ExactSize(_) => "ETBoundNoChirality",
            SizeTermination::LandmarkLoop => "PTLandmarkNoChirality",
        }
    }

    fn termination_kind(&self) -> TerminationKind {
        TerminationKind::Partial
    }

    fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        self.counters.absorb(snapshot);
        let decision = self.step(snapshot);
        self.counters.record_decision(decision);
        decision
    }

    fn has_terminated(&self) -> bool {
        self.state == State::Terminate
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        dynring_model::clone_state_from(self, src)
    }

    fn state_label(&self) -> String {
        format!("{:?}(d={},Tnodes={})", self.state, self.d, self.counters.tnodes())
    }

    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        use dynring_model::statekey::push_u64;
        match self.done {
            SizeTermination::UpperBound(n) => {
                out.push(0);
                push_u64(out, n);
            }
            SizeTermination::ExactSize(n) => {
                out.push(1);
                push_u64(out, n);
            }
            SizeTermination::LandmarkLoop => out.push(2),
        }
        out.push(u8::from(self.strict));
        out.push(match self.state {
            State::Init => 0,
            State::Bounce => 1,
            State::Reverse => 2,
            State::MeetingR => 3,
            State::MeetingB => 4,
            State::Terminate => 5,
        });
        push_u64(out, self.d);
        self.counters.write_state_key(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::{LocalPosition, NodeOccupancy, PriorOutcome};

    fn plain(prior: PriorOutcome) -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior,
            round_hint: None,
        }
    }

    fn catches(dir: LocalDirection) -> Snapshot {
        let mut occ = NodeOccupancy::default();
        match dir {
            LocalDirection::Left => occ.on_left_port = 1,
            LocalDirection::Right => occ.on_right_port = 1,
        }
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: occ,
            prior: PriorOutcome::Moved,
            round_hint: None,
        }
    }

    fn meeting() -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy { in_node: 1, on_left_port: 0, on_right_port: 0 },
            prior: PriorOutcome::Moved,
            round_hint: None,
        }
    }

    #[test]
    fn zig_zag_between_catches() {
        let mut a = PtNoChirality::with_upper_bound(50);
        assert_eq!(a.decide(&plain(PriorOutcome::Idle)), Decision::Move(LocalDirection::Left));
        // Catch while going left → go right.
        assert_eq!(a.decide(&catches(LocalDirection::Left)), Decision::Move(LocalDirection::Right));
        // Make 4 steps right, then one more successful step into the node
        // where the catch happens: the excursion length is 5.
        for _ in 0..4 {
            assert_eq!(a.decide(&plain(PriorOutcome::Moved)), Decision::Move(LocalDirection::Right));
        }
        assert_eq!(a.decide(&catches(LocalDirection::Right)), Decision::Move(LocalDirection::Left));
        assert_eq!(a.excursion(), 5);
    }

    #[test]
    fn terminates_when_an_excursion_stops_growing() {
        let mut a = PtNoChirality::with_upper_bound(50);
        let _ = a.decide(&plain(PriorOutcome::Idle));
        let _ = a.decide(&catches(LocalDirection::Left)); // → Bounce
        for _ in 0..4 {
            let _ = a.decide(&plain(PriorOutcome::Moved));
        }
        let _ = a.decide(&catches(LocalDirection::Right)); // → Reverse, d = 4
        // Only 3 steps left before catching again: 3 ≤ 4 → terminate.
        for _ in 0..3 {
            assert_eq!(a.decide(&plain(PriorOutcome::Moved)), Decision::Move(LocalDirection::Left));
        }
        assert_eq!(a.decide(&catches(LocalDirection::Left)), Decision::Terminate);
        assert!(a.has_terminated());
    }

    #[test]
    fn growing_excursions_keep_the_agent_alive() {
        let mut a = PtNoChirality::with_upper_bound(1000);
        let _ = a.decide(&plain(PriorOutcome::Idle));
        let _ = a.decide(&catches(LocalDirection::Left));
        let mut dir = LocalDirection::Right;
        for length in 3u64..9 {
            for _ in 0..length {
                assert_eq!(a.decide(&plain(PriorOutcome::Moved)), Decision::Move(dir));
            }
            let d = a.decide(&catches(dir));
            assert!(d.is_move(), "agent terminated although excursions keep growing");
            dir = dir.opposite();
        }
        assert!(!a.has_terminated());
    }

    #[test]
    fn meeting_checks_distance_without_resetting_esteps() {
        let mut a = PtNoChirality::with_upper_bound(50);
        let _ = a.decide(&plain(PriorOutcome::Idle));
        let _ = a.decide(&catches(LocalDirection::Left)); // Bounce
        for _ in 0..2 {
            let _ = a.decide(&plain(PriorOutcome::Moved));
        }
        let _ = a.decide(&catches(LocalDirection::Right)); // Reverse, d = 2
        // One step left, then meet someone in a node: Esteps = 1 ≤ d → terminate.
        let _ = a.decide(&plain(PriorOutcome::Moved));
        assert_eq!(a.decide(&meeting()), Decision::Terminate);
    }

    #[test]
    fn meeting_with_long_enough_excursion_continues() {
        let mut a = PtNoChirality::with_upper_bound(50);
        let _ = a.decide(&plain(PriorOutcome::Idle));
        let _ = a.decide(&catches(LocalDirection::Left)); // Bounce
        for _ in 0..2 {
            let _ = a.decide(&plain(PriorOutcome::Moved));
        }
        let _ = a.decide(&catches(LocalDirection::Right)); // Reverse, d = 2
        for _ in 0..3 {
            let _ = a.decide(&plain(PriorOutcome::Moved));
        }
        // Esteps = 3 > d = 2: keep going left in state MeetingR.
        assert_eq!(a.decide(&meeting()), Decision::Move(LocalDirection::Left));
        assert!(!a.has_terminated());
    }

    #[test]
    fn upper_bound_termination_by_node_count() {
        let mut a = PtNoChirality::with_upper_bound(5);
        let mut d = a.decide(&plain(PriorOutcome::Idle));
        let mut steps = 0;
        while d.is_move() {
            d = a.decide(&plain(PriorOutcome::Moved));
            steps += 1;
            assert!(steps < 10);
        }
        assert_eq!(a.counters().tnodes(), 5);
    }

    #[test]
    fn et_variant_uses_strict_distance_checks() {
        // With equal excursions the PT variant terminates but the ET variant
        // keeps going (strict inequality).
        let mut pt = PtNoChirality::with_upper_bound(50);
        let mut et = PtNoChirality::for_eventual_transport(50);
        for agent in [&mut pt, &mut et] {
            let _ = agent.decide(&plain(PriorOutcome::Idle));
            let _ = agent.decide(&catches(LocalDirection::Left));
            for _ in 0..3 {
                let _ = agent.decide(&plain(PriorOutcome::Moved));
            }
            let _ = agent.decide(&catches(LocalDirection::Right)); // d = 3
            for _ in 0..3 {
                let _ = agent.decide(&plain(PriorOutcome::Moved));
            }
        }
        assert_eq!(pt.decide(&catches(LocalDirection::Left)), Decision::Terminate);
        assert!(et.decide(&catches(LocalDirection::Left)).is_move());
    }

    #[test]
    fn landmark_variant_terminates_after_a_loop() {
        let n = 4i64;
        let mut a = PtNoChirality::with_landmark();
        let mut pos = 0i64;
        let mut d = a.decide(&Snapshot {
            position: LocalPosition::InNode,
            is_landmark: true,
            occupancy: NodeOccupancy::default(),
            prior: PriorOutcome::Idle,
            round_hint: None,
        });
        let mut steps = 0;
        while let Decision::Move(dir) = d {
            pos += match dir {
                LocalDirection::Left => -1,
                LocalDirection::Right => 1,
            };
            steps += 1;
            assert!(steps < 3 * n);
            d = a.decide(&Snapshot {
                position: LocalPosition::InNode,
                is_landmark: pos.rem_euclid(n) == 0,
                occupancy: NodeOccupancy::default(),
                prior: PriorOutcome::Moved,
                round_hint: None,
            });
        }
        assert_eq!(d, Decision::Terminate);
        assert_eq!(a.counters().known_size(), Some(n as u64));
        assert_eq!(a.name(), "PTLandmarkNoChirality");
    }

    #[test]
    fn names_follow_the_variant() {
        assert_eq!(PtNoChirality::with_upper_bound(8).name(), "PTBoundNoChirality");
        assert_eq!(PtNoChirality::with_landmark().name(), "PTLandmarkNoChirality");
        assert_eq!(PtNoChirality::for_eventual_transport(8).name(), "ETBoundNoChirality");
        assert_eq!(
            PtNoChirality::with_termination(SizeTermination::UpperBound(9), true).name(),
            "PTBoundNoChirality"
        );
    }
}
