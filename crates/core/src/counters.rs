//! The bookkeeping variables maintained by every algorithm.
//!
//! Section 3 of the paper defines the variables `Ttime`, `Tsteps`, `Etime`,
//! `Esteps` and `Btime`; the landmark algorithms (procedure `LExplore`) add
//! `Ntime`, the learned ring size and the distance from the landmark, and the
//! SSYNC algorithms add `Tnodes`. [`Counters`] maintains all of them from the
//! only information an agent legitimately has: the outcome of its own
//! previous attempt (the `prior` field of the [`Snapshot`]) and the landmark
//! flag of the node it stands on.
//!
//! # Conventions
//!
//! * All time counters count *completed activations*: at the moment a
//!   protocol evaluates its predicates in round `t`, `Ttime = t − 1` under
//!   FSYNC (the agent has been through `t − 1` full rounds). Under SSYNC the
//!   counters count the agent's own activations, which is all it can observe.
//! * `Tnodes` is the number of *distinct nodes the agent can soundly claim to
//!   have visited*: the length of the interval of net offsets it has
//!   occupied (`max − min + 1`). If the walk wrapped around the ring this
//!   over-counts, but in that case the ring is explored anyway, so every
//!   termination test of the form `Tnodes ≥ bound` stays sound.
//! * The ring size is learned (Procedure `LExplore`) the first time the agent
//!   stands on the landmark with a net offset different from the offset of
//!   its first landmark visit; the absolute difference is exactly `n`.

use dynring_model::{Decision, LocalDirection, PriorOutcome, Snapshot};
use serde::{Deserialize, Serialize};

/// Per-agent bookkeeping shared by all algorithms of the paper.
///
/// Call [`Counters::absorb`] at the very beginning of every
/// [`Protocol::decide`](dynring_model::Protocol::decide) invocation and
/// [`Counters::record_decision`] just before returning, so the next
/// activation can interpret its `prior` outcome.
///
/// ```
/// use dynring_core::Counters;
/// use dynring_model::{Decision, LocalDirection, LocalPosition, NodeOccupancy, PriorOutcome, Snapshot};
///
/// let mut c = Counters::new();
/// let mut snap = Snapshot {
///     position: LocalPosition::InNode,
///     is_landmark: false,
///     occupancy: NodeOccupancy::default(),
///     prior: PriorOutcome::Idle,
///     round_hint: None,
/// };
/// c.absorb(&snap);
/// c.record_decision(Decision::Move(LocalDirection::Right));
/// snap.prior = PriorOutcome::Moved;
/// c.absorb(&snap);
/// assert_eq!(c.tsteps(), 1);
/// assert_eq!(c.tnodes(), 2);
/// assert_eq!(c.ttime(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Counters {
    activated: bool,
    ttime: u64,
    tsteps: u64,
    etime: u64,
    esteps: u64,
    btime: u64,
    ntime: u64,
    offset: i64,
    min_offset: i64,
    max_offset: i64,
    landmark_ref: Option<i64>,
    known_size: Option<u64>,
    last_attempt: Option<LocalDirection>,
}

impl Default for Counters {
    fn default() -> Self {
        Self::new()
    }
}

impl Counters {
    /// Fresh counters for an agent that has not yet been activated.
    #[must_use]
    pub fn new() -> Self {
        Counters {
            activated: false,
            ttime: 0,
            tsteps: 0,
            etime: 0,
            esteps: 0,
            btime: 0,
            ntime: 0,
            offset: 0,
            min_offset: 0,
            max_offset: 0,
            landmark_ref: None,
            known_size: None,
            last_attempt: None,
        }
    }

    /// Processes the outcome of the previous activation and the landmark flag
    /// of the current node. Must be called exactly once per activation,
    /// before any predicate is evaluated.
    pub fn absorb(&mut self, snapshot: &Snapshot) {
        if self.activated {
            self.ttime += 1;
            self.etime += 1;
            if self.known_size.is_some() {
                self.ntime += 1;
            }
        } else {
            self.activated = true;
        }

        match snapshot.prior {
            PriorOutcome::Moved | PriorOutcome::Transported => {
                if let Some(dir) = self.last_attempt {
                    self.apply_step(dir);
                }
                self.btime = 0;
            }
            PriorOutcome::BlockedOnPort => {
                self.btime += 1;
            }
            PriorOutcome::PortAcquisitionFailed => {
                self.btime = 0;
            }
            PriorOutcome::Idle => {}
        }

        if snapshot.is_landmark {
            match self.landmark_ref {
                None => self.landmark_ref = Some(self.offset),
                Some(reference) => {
                    if self.known_size.is_none() && self.offset != reference {
                        self.known_size = Some(self.offset.abs_diff(reference));
                    }
                }
            }
        }
    }

    fn apply_step(&mut self, dir: LocalDirection) {
        let delta = match dir {
            LocalDirection::Right => 1,
            LocalDirection::Left => -1,
        };
        self.offset += delta;
        self.min_offset = self.min_offset.min(self.offset);
        self.max_offset = self.max_offset.max(self.offset);
        self.esteps += 1;
        self.tsteps += 1;
    }

    /// Records the decision returned by the current activation so that the
    /// outcome reported at the next activation can be attributed to the right
    /// direction of travel.
    pub fn record_decision(&mut self, decision: Decision) {
        match decision {
            Decision::Move(dir) => self.last_attempt = Some(dir),
            Decision::Retreat | Decision::Terminate => self.last_attempt = None,
            // `Stay` keeps a previously held port (and its direction), so a
            // later passive transport must still be attributed to it.
            Decision::Stay => {}
        }
    }

    /// Resets the per-`Explore` counters (`Etime`, `Esteps`). The paper calls
    /// this implicitly whenever a state change starts a new `Explore`.
    pub fn reset_explore(&mut self) {
        self.etime = 0;
        self.esteps = 0;
    }

    /// `Ttime` — completed activations since the beginning of the execution.
    #[must_use]
    pub const fn ttime(&self) -> u64 {
        self.ttime
    }

    /// `Tsteps` — successful edge traversals since the beginning (including
    /// passive transports).
    #[must_use]
    pub const fn tsteps(&self) -> u64 {
        self.tsteps
    }

    /// `Etime` — completed activations since the last `Explore` reset.
    #[must_use]
    pub const fn etime(&self) -> u64 {
        self.etime
    }

    /// `Esteps` — successful traversals since the last `Explore` reset.
    #[must_use]
    pub const fn esteps(&self) -> u64 {
        self.esteps
    }

    /// `Btime` — consecutive completed activations spent waiting on a port.
    #[must_use]
    pub const fn btime(&self) -> u64 {
        self.btime
    }

    /// `Ntime` — completed activations since the ring size was learned.
    #[must_use]
    pub const fn ntime(&self) -> u64 {
        self.ntime
    }

    /// `Tnodes` — number of distinct nodes the agent can soundly claim to
    /// have visited (length of its offset interval).
    #[must_use]
    pub fn tnodes(&self) -> u64 {
        (self.max_offset - self.min_offset) as u64 + 1
    }

    /// The agent's net offset (in local-`right` units) from its start node.
    #[must_use]
    pub const fn offset(&self) -> i64 {
        self.offset
    }

    /// The ring size, if the agent has learned it by completing a full loop
    /// around the landmark ("n is known" in the pseudo-code).
    #[must_use]
    pub const fn known_size(&self) -> Option<u64> {
        self.known_size
    }

    /// Whether the agent has learned the exact ring size.
    #[must_use]
    pub const fn knows_size(&self) -> bool {
        self.known_size.is_some()
    }

    /// Distance (in net offset) from the first landmark visit, if the
    /// landmark has been seen.
    #[must_use]
    pub fn distance_from_landmark(&self) -> Option<u64> {
        self.landmark_ref.map(|r| self.offset.abs_diff(r))
    }

    /// Whether the agent has ever stood on the landmark.
    #[must_use]
    pub const fn has_seen_landmark(&self) -> bool {
        self.landmark_ref.is_some()
    }

    /// Whether the agent has been activated at least once.
    #[must_use]
    pub const fn has_been_activated(&self) -> bool {
        self.activated
    }

    /// The direction of the last attempted move, if the last decision was a
    /// move (or a stay that kept a held port).
    #[must_use]
    pub const fn last_attempt(&self) -> Option<LocalDirection> {
        self.last_attempt
    }

    /// Appends a packed, injective encoding of every counter field to `out`
    /// (see [`dynring_model::statekey`]). Every field of the struct is
    /// emitted with a fixed width, so two `Counters` values serialise to the
    /// same bytes iff they are equal.
    pub fn write_state_key(&self, out: &mut Vec<u8>) {
        use dynring_model::statekey::{push_i64, push_opt_i64, push_opt_u64, push_u64};
        out.push(u8::from(self.activated));
        push_u64(out, self.ttime);
        push_u64(out, self.tsteps);
        push_u64(out, self.etime);
        push_u64(out, self.esteps);
        push_u64(out, self.btime);
        push_u64(out, self.ntime);
        push_i64(out, self.offset);
        push_i64(out, self.min_offset);
        push_i64(out, self.max_offset);
        push_opt_i64(out, self.landmark_ref);
        push_opt_u64(out, self.known_size);
        out.push(direction_key(self.last_attempt));
    }
}

/// Single-byte injective encoding of an optional local direction.
#[must_use]
pub(crate) fn direction_key(dir: Option<LocalDirection>) -> u8 {
    match dir {
        None => 0,
        Some(LocalDirection::Left) => 1,
        Some(LocalDirection::Right) => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::{LocalPosition, NodeOccupancy};

    fn snap(prior: PriorOutcome, landmark: bool) -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: landmark,
            occupancy: NodeOccupancy::default(),
            prior,
            round_hint: None,
        }
    }

    fn step(c: &mut Counters, dir: LocalDirection, prior_next: PriorOutcome, landmark: bool) {
        c.record_decision(Decision::Move(dir));
        c.absorb(&snap(prior_next, landmark));
    }

    #[test]
    fn first_activation_does_not_advance_time() {
        let mut c = Counters::new();
        assert!(!c.has_been_activated());
        c.absorb(&snap(PriorOutcome::Idle, false));
        assert!(c.has_been_activated());
        assert_eq!(c.ttime(), 0);
        assert_eq!(c.etime(), 0);
        assert_eq!(c.tnodes(), 1);
    }

    #[test]
    fn successful_moves_update_offsets_and_steps() {
        let mut c = Counters::new();
        c.absorb(&snap(PriorOutcome::Idle, false));
        step(&mut c, LocalDirection::Right, PriorOutcome::Moved, false);
        step(&mut c, LocalDirection::Right, PriorOutcome::Moved, false);
        step(&mut c, LocalDirection::Left, PriorOutcome::Moved, false);
        assert_eq!(c.tsteps(), 3);
        assert_eq!(c.esteps(), 3);
        assert_eq!(c.offset(), 1);
        assert_eq!(c.tnodes(), 3); // offsets 0, 1, 2 visited
        assert_eq!(c.ttime(), 3);
    }

    #[test]
    fn blocked_rounds_accumulate_btime_and_reset_on_move() {
        let mut c = Counters::new();
        c.absorb(&snap(PriorOutcome::Idle, false));
        step(&mut c, LocalDirection::Left, PriorOutcome::BlockedOnPort, false);
        assert_eq!(c.btime(), 1);
        step(&mut c, LocalDirection::Left, PriorOutcome::BlockedOnPort, false);
        assert_eq!(c.btime(), 2);
        step(&mut c, LocalDirection::Left, PriorOutcome::Moved, false);
        assert_eq!(c.btime(), 0);
        assert_eq!(c.tsteps(), 1);
        assert_eq!(c.offset(), -1);
    }

    #[test]
    fn failed_port_acquisition_resets_btime_and_does_not_move() {
        let mut c = Counters::new();
        c.absorb(&snap(PriorOutcome::Idle, false));
        step(&mut c, LocalDirection::Left, PriorOutcome::BlockedOnPort, false);
        step(&mut c, LocalDirection::Right, PriorOutcome::PortAcquisitionFailed, false);
        assert_eq!(c.btime(), 0);
        assert_eq!(c.tsteps(), 0);
        assert_eq!(c.offset(), 0);
    }

    #[test]
    fn explore_reset_clears_only_e_counters() {
        let mut c = Counters::new();
        c.absorb(&snap(PriorOutcome::Idle, false));
        step(&mut c, LocalDirection::Right, PriorOutcome::Moved, false);
        step(&mut c, LocalDirection::Right, PriorOutcome::Moved, false);
        c.reset_explore();
        assert_eq!(c.etime(), 0);
        assert_eq!(c.esteps(), 0);
        assert_eq!(c.ttime(), 2);
        assert_eq!(c.tsteps(), 2);
    }

    #[test]
    fn transported_counts_as_a_step_in_the_attempted_direction() {
        let mut c = Counters::new();
        c.absorb(&snap(PriorOutcome::Idle, false));
        // The agent tries to go left, gets blocked, sleeps, and is carried
        // across passively (PT model).
        step(&mut c, LocalDirection::Left, PriorOutcome::BlockedOnPort, false);
        c.record_decision(Decision::Stay);
        c.absorb(&snap(PriorOutcome::Transported, false));
        assert_eq!(c.tsteps(), 2 - 1); // only the transport moved the agent
        assert_eq!(c.offset(), -1);
    }

    #[test]
    fn landmark_loop_teaches_ring_size() {
        let mut c = Counters::new();
        // Start on the landmark.
        c.absorb(&snap(PriorOutcome::Idle, true));
        assert!(c.has_seen_landmark());
        assert!(!c.knows_size());
        // Walk right around a ring of size 5, returning to the landmark.
        for i in 1..=5 {
            let at_landmark = i == 5;
            step(&mut c, LocalDirection::Right, PriorOutcome::Moved, at_landmark);
        }
        assert_eq!(c.known_size(), Some(5));
        assert_eq!(c.distance_from_landmark(), Some(5));
        // Ntime starts accumulating only after n is learned.
        assert_eq!(c.ntime(), 0);
        step(&mut c, LocalDirection::Right, PriorOutcome::Moved, false);
        assert_eq!(c.ntime(), 1);
    }

    #[test]
    fn landmark_back_and_forth_does_not_teach_size() {
        let mut c = Counters::new();
        c.absorb(&snap(PriorOutcome::Idle, true));
        step(&mut c, LocalDirection::Right, PriorOutcome::Moved, false);
        step(&mut c, LocalDirection::Left, PriorOutcome::Moved, true);
        // Returned to the landmark with the same offset: no loop completed.
        assert!(!c.knows_size());
        assert_eq!(c.distance_from_landmark(), Some(0));
    }

    #[test]
    fn landmark_seen_midway_uses_first_visit_as_reference() {
        let mut c = Counters::new();
        c.absorb(&snap(PriorOutcome::Idle, false));
        step(&mut c, LocalDirection::Right, PriorOutcome::Moved, true); // first landmark visit at offset 1
        for i in 0..4 {
            // ring of size 4: landmark reappears after 4 more right-steps
            let at_landmark = i == 3;
            step(&mut c, LocalDirection::Right, PriorOutcome::Moved, at_landmark);
        }
        assert_eq!(c.known_size(), Some(4));
    }

    #[test]
    fn retreat_and_terminate_clear_last_attempt() {
        let mut c = Counters::new();
        c.absorb(&snap(PriorOutcome::Idle, false));
        c.record_decision(Decision::Move(LocalDirection::Left));
        assert_eq!(c.last_attempt(), Some(LocalDirection::Left));
        c.record_decision(Decision::Retreat);
        assert_eq!(c.last_attempt(), None);
        c.record_decision(Decision::Move(LocalDirection::Right));
        c.record_decision(Decision::Terminate);
        assert_eq!(c.last_attempt(), None);
    }

    #[test]
    fn tnodes_counts_span_of_offsets() {
        let mut c = Counters::new();
        c.absorb(&snap(PriorOutcome::Idle, false));
        for _ in 0..3 {
            step(&mut c, LocalDirection::Left, PriorOutcome::Moved, false);
        }
        for _ in 0..5 {
            step(&mut c, LocalDirection::Right, PriorOutcome::Moved, false);
        }
        // Offsets visited: -3 .. +2  => 6 distinct nodes
        assert_eq!(c.tnodes(), 6);
    }
}
