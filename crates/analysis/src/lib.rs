//! Experiment harness reproducing the evaluation of *Live Exploration of
//! Dynamic Rings*.
//!
//! The paper is a theory paper: its "evaluation" is the feasibility and
//! complexity map of Tables 1–4 together with the worst-case schedules and
//! runs drawn in the figures. This crate turns every row of those tables and
//! every figure into an executable experiment:
//!
//! * [`scenario`] — declarative scenario descriptions (ring, agents,
//!   knowledge, adversary) and a one-call runner;
//! * [`tables`] — one function per table of the paper; each returns
//!   structured [`report::RowResult`]s that the benchmark harness prints in
//!   the same shape as the paper's tables;
//! * [`figures`] — the hand-crafted schedules of Figures 2 and 12 and the
//!   qualitative runs of Figures 5–7, 15 and 16;
//! * [`sweeps`] — parameter sweeps over the ring size used to check the
//!   asymptotic claims (`3N − 6`, `O(n)`, `O(n log n)`, `O(N²)`, `O(n²)`);
//! * [`lower_bounds`] — the experiments accompanying Theorems 4, 13 and 15;
//! * [`model_check`] — exhaustive bounded search over **every** adversary
//!   play of a small cell, proving the Table 1/3 impossibility rows for
//!   small `n` and discovering worst-case schedules;
//! * [`report`] — markdown rendering of all of the above (used by
//!   `EXPERIMENTS.md` and the examples).
//!
//! # Example: regenerate Table 2
//!
//! ```
//! use dynring_analysis::tables;
//!
//! let rows = tables::table2(&[6, 9], 3);
//! assert_eq!(rows.len(), 3);
//! for row in &rows {
//!     assert!(row.holds, "{} violated: {}", row.id, row.observed);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod figures;
pub mod lower_bounds;
pub mod model_check;
pub mod report;
pub mod scenario;
pub mod sweeps;
pub mod tables;

pub use batch::BatchRunner;
pub use model_check::{ModelCheck, Objective, TableCell, Verdict};
pub use report::{markdown_table, RowResult};
pub use scenario::{AdversaryKind, Scenario, ScenarioBatchRunner, ScenarioRunner, SchedulerKind};
pub use sweeps::PlacementDensity;
