//! Parallel execution of independent scenario batteries.
//!
//! The feasibility map runs thousands of independent [`Scenario`]s (ring
//! sizes × placements × orientations × adversaries). A [`BatchRunner`] fans
//! such a battery across OS threads with [`std::thread::scope`] (no external
//! dependency) and merges the results **in input order**, so every consumer —
//! sweeps, tables, the `feasibility_map` example — produces output
//! bit-identical to the sequential path regardless of thread count or
//! scheduling.
//!
//! The default thread count comes from the `DYNRING_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`]; a runner
//! with one thread runs inline on the caller's thread (no spawn at all), which
//! is the reference path the equivalence tests compare against.

use crate::scenario::{Scenario, ScenarioBatchRunner};
use dynring_engine::sim::RunReport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A worker panic captured by [`BatchRunner::run_map_catching`], identifying
/// the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the input whose `work` call panicked.
    pub index: usize,
    /// The panic payload, if it was a string (the common `panic!` case);
    /// otherwise a placeholder.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked on input {}: {}", self.index, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Fans independent work items across threads, merging results in input
/// order.
///
/// ```
/// use dynring_analysis::batch::BatchRunner;
///
/// let doubled = BatchRunner::new(4).run_map(&[1, 2, 3], |x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner {
    threads: usize,
}

impl BatchRunner {
    /// A runner using `threads` worker threads (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        BatchRunner { threads: threads.max(1) }
    }

    /// The inline sequential runner (the reference path: no thread is ever
    /// spawned).
    #[must_use]
    pub fn sequential() -> Self {
        BatchRunner::new(1)
    }

    /// The default runner: `DYNRING_THREADS` if set (a positive integer),
    /// otherwise the machine's available parallelism.
    ///
    /// # Panics
    ///
    /// An unparsable `DYNRING_THREADS` (e.g. `"8x"` or `"0"`) is a hard
    /// error: a typo'd knob silently falling back to all cores would skew
    /// every "sequential reference" comparison, so the misconfiguration
    /// aborts loudly instead.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = match std::env::var("DYNRING_THREADS") {
            Ok(raw) => match parse_thread_count(&raw) {
                Ok(t) => t,
                Err(message) => panic!("invalid DYNRING_THREADS: {message}"),
            },
            Err(std::env::VarError::NotPresent) => {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
            Err(std::env::VarError::NotUnicode(_)) => {
                panic!("invalid DYNRING_THREADS: value is not valid unicode")
            }
        };
        BatchRunner::new(threads)
    }

    /// Number of worker threads this runner uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `work` to every input and returns the results in input order.
    ///
    /// With more than one thread the items are handed out through a shared
    /// counter (work stealing — batteries mix cheap and expensive scenarios),
    /// and each result is reassembled into its input slot afterwards, so the
    /// output is deterministic whatever the interleaving.
    ///
    /// # Panics
    ///
    /// Propagates a worker panic, identifying the offending input index in
    /// the message. The other inputs still run to completion first (see
    /// [`BatchRunner::run_map_catching`], which returns them instead).
    pub fn run_map<I, T, F>(&self, inputs: &[I], work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run_map_with(inputs, || (), |(), input| work(input))
    }

    /// [`BatchRunner::run_map`] with **per-worker mutable state**: every
    /// worker thread calls `state` once and threads the result through its
    /// share of the inputs. This is what lets a battery hold one recycled
    /// [`ScenarioRunner`](crate::scenario::ScenarioRunner) (and therefore
    /// one reusable `Simulation`) per
    /// thread without any cross-thread sharing; results are still merged in
    /// input order, so the output is identical whatever the thread count.
    ///
    /// # Panics
    ///
    /// Propagates a worker panic, identifying the offending input index in
    /// the message.
    pub fn run_map_with<I, T, S, FS, F>(&self, inputs: &[I], state: FS, work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        FS: Fn() -> S + Sync,
        F: Fn(&mut S, &I) -> T + Sync,
    {
        self.run_map_catching(inputs, state, work)
            .into_iter()
            .map(|slot| match slot {
                Ok(result) => result,
                Err(panic) => panic!("batch {panic}"),
            })
            .collect()
    }

    /// [`BatchRunner::run_map_with`] with **per-cell panic isolation**: each
    /// `work` call runs under [`std::panic::catch_unwind`], so one panicking
    /// input no longer aborts the whole batch — its slot comes back as
    /// `Err(WorkerPanic)` (with the input index and panic message) and every
    /// other input still produces its `Ok` result.
    ///
    /// A panic may leave the per-worker state half-updated, so the worker
    /// **quarantines the poisoned state**: it drops its local `S` and builds
    /// a fresh one via `state` before touching the next input. Results after
    /// a panic are therefore exactly what a fresh worker would produce —
    /// this is what lets the service layer's supervisor trust the survivors
    /// of a poisoned battery.
    ///
    /// The panic still unwinds through the standard panic hook before being
    /// captured, so the usual `thread '…' panicked` line appears on stderr;
    /// only the *abort* is suppressed.
    pub fn run_map_catching<I, T, S, FS, F>(
        &self,
        inputs: &[I],
        state: FS,
        work: F,
    ) -> Vec<Result<T, WorkerPanic>>
    where
        I: Sync,
        T: Send,
        FS: Fn() -> S + Sync,
        F: Fn(&mut S, &I) -> T + Sync,
    {
        let caught = |local: &mut S, index: usize, input: &I| -> Result<T, WorkerPanic> {
            catch_unwind(AssertUnwindSafe(|| work(local, input))).map_err(|payload| {
                WorkerPanic { index, message: panic_message(payload.as_ref()) }
            })
        };
        let workers = self.threads.min(inputs.len());
        if workers <= 1 {
            let mut local = state();
            return inputs
                .iter()
                .enumerate()
                .map(|(index, input)| {
                    let result = caught(&mut local, index, input);
                    if result.is_err() {
                        local = state();
                    }
                    result
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<T, WorkerPanic>>> = Vec::with_capacity(inputs.len());
        slots.resize_with(inputs.len(), || None);
        let chunks = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = state();
                        let mut produced: Vec<(usize, Result<T, WorkerPanic>)> = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            let Some(input) = inputs.get(index) else { break };
                            let result = caught(&mut local, index, input);
                            if result.is_err() {
                                local = state();
                            }
                            produced.push((index, result));
                        }
                        produced
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().expect(
                        "batch workers catch work panics; a join failure is a harness bug",
                    )
                })
                .collect::<Vec<_>>()
        });
        for (index, result) in chunks.into_iter().flatten() {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every input index was claimed exactly once"))
            .collect()
    }

    /// Runs every scenario and returns the reports in input order.
    ///
    /// The battery is first partitioned into maximal runs of consecutive
    /// same-shape cells ([`group_ranges`], capped at
    /// [`batch_lanes_from_env`] lanes); each group rides the engine's
    /// batched lockstep path through a per-worker
    /// [`ScenarioBatchRunner`], and singleton cells fall back to the
    /// recycled solo simulation inside the same runner (trace-recording
    /// cells batch like any other since the columnar trace). Results
    /// are merged in input order, so the output is byte-identical to the
    /// cell-by-cell sequential path whatever the thread or lane count.
    #[must_use]
    pub fn run_reports(&self, scenarios: &[Scenario]) -> Vec<RunReport> {
        let ranges = group_ranges(scenarios, |s| s, batch_lanes_from_env());
        self.run_map_with(&ranges, ScenarioBatchRunner::new, |runner, range| {
            runner.run_group(&scenarios[range.clone()])
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::from_env()
    }
}

/// Parses a `DYNRING_THREADS`-style value: a positive integer, rejecting
/// everything else with a human-readable message (the strict core behind
/// [`BatchRunner::from_env`], split out so it can be tested without touching
/// the process environment).
///
/// # Errors
///
/// Returns the message to show the user when the value is not a positive
/// integer.
pub fn parse_thread_count(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err(format!(
            "{trimmed:?} is zero; use a positive thread count (or unset the variable \
             to use all cores)"
        )),
        Ok(t) => Ok(t),
        Err(_) => Err(format!(
            "{raw:?} is not a positive integer thread count (examples: 1, 8)"
        )),
    }
}

/// The default lane cap for batched execution: throughput on the batched
/// path is flat from ~8 lanes up (the per-lane state already saturates the
/// cache-resident working set), and 16 keeps groups small enough that a
/// battery's shape changes don't leave long ragged tails.
pub const DEFAULT_BATCH_LANES: usize = 16;

/// Parses a `DYNRING_BATCH_LANES`-style value: a positive integer or the
/// literal `solo` (= 1, turning every cell into a singleton group and thereby
/// forcing the recycled solo path for every shape), rejecting everything else
/// with a human-readable message — the same strict contract as
/// [`parse_thread_count`]: a typo'd knob must abort loudly, never fall back
/// silently.
///
/// # Errors
///
/// Returns the message to show the user when the value is not a positive
/// integer or `solo`.
pub fn parse_batch_lanes(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed == "solo" {
        return Ok(1);
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err(format!(
            "{trimmed:?} is zero; use a positive lane count (or unset the variable \
             for the default of {DEFAULT_BATCH_LANES})"
        )),
        Ok(lanes) => Ok(lanes),
        Err(_) => Err(format!(
            "{raw:?} is not a positive integer lane count, or the literal \"solo\" \
             (examples: 1, 16, solo)"
        )),
    }
}

/// The lane cap batched execution uses: `DYNRING_BATCH_LANES` if set (a
/// positive integer), otherwise [`DEFAULT_BATCH_LANES`]. A cap of 1 turns
/// every cell into a singleton group, i.e. disables the batched path.
///
/// # Panics
///
/// An unparsable `DYNRING_BATCH_LANES` is a hard error, exactly like
/// `DYNRING_THREADS` in [`BatchRunner::from_env`].
#[must_use]
pub fn batch_lanes_from_env() -> usize {
    match std::env::var("DYNRING_BATCH_LANES") {
        Ok(raw) => match parse_batch_lanes(&raw) {
            Ok(lanes) => lanes,
            Err(message) => panic!("invalid DYNRING_BATCH_LANES: {message}"),
        },
        Err(std::env::VarError::NotPresent) => DEFAULT_BATCH_LANES,
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("invalid DYNRING_BATCH_LANES: value is not valid unicode")
        }
    }
}

/// Partitions a battery into maximal runs of **consecutive same-shape
/// cells** (capped at `max_lanes` per range, clamped to at least 1) — the
/// unit the batched engine path executes as one `SimBatch` lane group
/// (trace-recording cells group like any other since the columnar trace).
/// Concatenating the ranges always reproduces `0..items.len()` in order, so
/// merging per-range results in input order is output-identical to the
/// cell-by-cell path.
#[must_use]
pub fn group_ranges<T>(
    items: &[T],
    scenario_of: impl Fn(&T) -> &Scenario,
    max_lanes: usize,
) -> Vec<std::ops::Range<usize>> {
    let max_lanes = max_lanes.max(1);
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < items.len() {
        let first = scenario_of(&items[start]);
        let mut end = start + 1;
        while end < items.len()
            && end - start < max_lanes
            && first.same_batch_shape(scenario_of(&items[end]))
        {
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AdversaryKind, ScenarioRunner};
    use dynring_core::Algorithm;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7] {
            let out = BatchRunner::new(threads).run_map(&inputs, |x| x * 3);
            assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn parallel_reports_match_the_sequential_reference() {
        let scenarios: Vec<Scenario> = (0..6)
            .map(|i| {
                Scenario::fsync(6 + i % 3, Algorithm::KnownBound { upper_bound: 6 + i % 3 })
                    .with_adversary(AdversaryKind::Sticky {
                        min_hold: 1,
                        max_hold: 6,
                        present: 0.25,
                        seed: i as u64,
                    })
            })
            .collect();
        let sequential = BatchRunner::sequential().run_reports(&scenarios);
        let parallel = BatchRunner::new(4).run_reports(&scenarios);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn thread_count_is_clamped_and_env_parse_is_safe() {
        assert_eq!(BatchRunner::new(0).threads(), 1);
        assert_eq!(BatchRunner::sequential().threads(), 1);
        assert!(BatchRunner::from_env().threads() >= 1);
    }

    #[test]
    fn empty_and_singleton_batches_run_inline() {
        let empty: Vec<usize> = Vec::new();
        assert!(BatchRunner::new(8).run_map(&empty, |x| *x).is_empty());
        assert_eq!(BatchRunner::new(8).run_map(&[41], |x| x + 1), vec![42]);
    }

    #[test]
    fn thread_count_parsing_is_strict() {
        assert_eq!(parse_thread_count("4"), Ok(4));
        assert_eq!(parse_thread_count(" 16 "), Ok(16));
        for bad in ["8x", "0", "-2", "", "all", "3.5"] {
            let err = parse_thread_count(bad).unwrap_err();
            assert!(
                err.contains("positive") || err.contains("zero"),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn lane_count_parsing_is_strict_and_accepts_solo() {
        assert_eq!(parse_batch_lanes("8"), Ok(8));
        assert_eq!(parse_batch_lanes(" 16 "), Ok(16));
        assert_eq!(parse_batch_lanes("solo"), Ok(1));
        assert_eq!(parse_batch_lanes(" solo "), Ok(1));
        for bad in ["8x", "0", "-2", "", "all", "3.5", "SOLO"] {
            let err = parse_batch_lanes(bad).unwrap_err();
            assert!(
                err.contains("positive") || err.contains("zero"),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn catching_map_quarantines_the_panicking_cell() {
        let inputs: Vec<usize> = (0..40).collect();
        for threads in [1, 4] {
            let results = BatchRunner::new(threads).run_map_catching(
                &inputs,
                || (),
                |(), x| {
                    assert!(*x != 17, "cell seventeen is poisoned");
                    x * 2
                },
            );
            assert_eq!(results.len(), inputs.len());
            for (i, result) in results.iter().enumerate() {
                if i == 17 {
                    let panic = result.as_ref().unwrap_err();
                    assert_eq!(panic.index, 17);
                    assert!(panic.message.contains("seventeen"), "{panic}");
                } else {
                    assert_eq!(result.as_ref().unwrap(), &(i * 2), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn catching_map_rebuilds_poisoned_worker_state() {
        // Sequential so one worker state sees both the panic and the
        // survivors: the counter must restart from zero after the panic,
        // proving the poisoned state was quarantined and rebuilt.
        let inputs: Vec<usize> = (0..6).collect();
        let results = BatchRunner::sequential().run_map_catching(
            &inputs,
            || 0usize,
            |count, x| {
                *count += 1;
                assert!(*x != 2, "poison");
                *count
            },
        );
        let counts: Vec<Option<usize>> = results.into_iter().map(Result::ok).collect();
        assert_eq!(counts, vec![Some(1), Some(2), None, Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn run_map_panics_name_the_offending_index() {
        let inputs: Vec<usize> = (0..8).collect();
        let outcome = std::panic::catch_unwind(|| {
            BatchRunner::new(2).run_map(&inputs, |x| {
                assert!(*x != 5, "boom");
                *x
            })
        });
        let payload = outcome.expect_err("a worker panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("propagated panic carries a formatted message");
        assert!(message.contains("input 5"), "{message}");
        assert!(message.contains("boom"), "{message}");
    }

    #[test]
    fn reports_survive_a_poisoned_sibling_cell() {
        // A battery where one scenario panics (start out of range) must
        // still produce every other report, identical to running them alone.
        let good = Scenario::fsync(8, Algorithm::KnownBound { upper_bound: 8 });
        let bad = good.clone().with_starts(vec![99, 100]);
        let scenarios = vec![good.clone(), bad, good.clone()];
        let results = BatchRunner::new(2).run_map_catching(
            &scenarios,
            ScenarioRunner::new,
            |runner, scenario| runner.run(scenario),
        );
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        let reference = good.run();
        assert_eq!(results[0].as_ref().unwrap(), &reference);
        assert_eq!(results[2].as_ref().unwrap(), &reference);
    }
}
