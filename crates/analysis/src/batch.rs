//! Parallel execution of independent scenario batteries.
//!
//! The feasibility map runs thousands of independent [`Scenario`]s (ring
//! sizes × placements × orientations × adversaries). A [`BatchRunner`] fans
//! such a battery across OS threads with [`std::thread::scope`] (no external
//! dependency) and merges the results **in input order**, so every consumer —
//! sweeps, tables, the `feasibility_map` example — produces output
//! bit-identical to the sequential path regardless of thread count or
//! scheduling.
//!
//! The default thread count comes from the `DYNRING_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`]; a runner
//! with one thread runs inline on the caller's thread (no spawn at all), which
//! is the reference path the equivalence tests compare against.

use crate::scenario::{Scenario, ScenarioRunner};
use dynring_engine::sim::RunReport;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fans independent work items across threads, merging results in input
/// order.
///
/// ```
/// use dynring_analysis::batch::BatchRunner;
///
/// let doubled = BatchRunner::new(4).run_map(&[1, 2, 3], |x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner {
    threads: usize,
}

impl BatchRunner {
    /// A runner using `threads` worker threads (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        BatchRunner { threads: threads.max(1) }
    }

    /// The inline sequential runner (the reference path: no thread is ever
    /// spawned).
    #[must_use]
    pub fn sequential() -> Self {
        BatchRunner::new(1)
    }

    /// The default runner: `DYNRING_THREADS` if set (a positive integer),
    /// otherwise the machine's available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var("DYNRING_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|t| *t > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        BatchRunner::new(threads)
    }

    /// Number of worker threads this runner uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `work` to every input and returns the results in input order.
    ///
    /// With more than one thread the items are handed out through a shared
    /// counter (work stealing — batteries mix cheap and expensive scenarios),
    /// and each result is reassembled into its input slot afterwards, so the
    /// output is deterministic whatever the interleaving. `work` must not
    /// panic; a panicking worker aborts the whole batch.
    pub fn run_map<I, T, F>(&self, inputs: &[I], work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run_map_with(inputs, || (), |(), input| work(input))
    }

    /// [`BatchRunner::run_map`] with **per-worker mutable state**: every
    /// worker thread calls `state` once and threads the result through its
    /// share of the inputs. This is what lets a battery hold one recycled
    /// [`ScenarioRunner`] (and therefore one reusable `Simulation`) per
    /// thread without any cross-thread sharing; results are still merged in
    /// input order, so the output is identical whatever the thread count.
    pub fn run_map_with<I, T, S, FS, F>(&self, inputs: &[I], state: FS, work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        FS: Fn() -> S + Sync,
        F: Fn(&mut S, &I) -> T + Sync,
    {
        let workers = self.threads.min(inputs.len());
        if workers <= 1 {
            let mut local = state();
            return inputs.iter().map(|input| work(&mut local, input)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(inputs.len());
        slots.resize_with(inputs.len(), || None);
        let chunks = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = state();
                        let mut produced: Vec<(usize, T)> = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            let Some(input) = inputs.get(index) else { break };
                            produced.push((index, work(&mut local, input)));
                        }
                        produced
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect::<Vec<_>>()
        });
        for (index, result) in chunks.into_iter().flatten() {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every input index was claimed exactly once"))
            .collect()
    }

    /// Runs every scenario and returns the reports in input order. Each
    /// worker thread drives its share of the battery through one recycled
    /// [`ScenarioRunner`], so consecutive cells reuse the simulation's
    /// buffers instead of rebuilding them per run.
    #[must_use]
    pub fn run_reports(&self, scenarios: &[Scenario]) -> Vec<RunReport> {
        self.run_map_with(scenarios, ScenarioRunner::new, |runner, scenario| {
            runner.run(scenario)
        })
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AdversaryKind;
    use dynring_core::Algorithm;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7] {
            let out = BatchRunner::new(threads).run_map(&inputs, |x| x * 3);
            assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn parallel_reports_match_the_sequential_reference() {
        let scenarios: Vec<Scenario> = (0..6)
            .map(|i| {
                Scenario::fsync(6 + i % 3, Algorithm::KnownBound { upper_bound: 6 + i % 3 })
                    .with_adversary(AdversaryKind::Sticky {
                        min_hold: 1,
                        max_hold: 6,
                        present: 0.25,
                        seed: i as u64,
                    })
            })
            .collect();
        let sequential = BatchRunner::sequential().run_reports(&scenarios);
        let parallel = BatchRunner::new(4).run_reports(&scenarios);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn thread_count_is_clamped_and_env_parse_is_safe() {
        assert_eq!(BatchRunner::new(0).threads(), 1);
        assert_eq!(BatchRunner::sequential().threads(), 1);
        assert!(BatchRunner::from_env().threads() >= 1);
    }

    #[test]
    fn empty_and_singleton_batches_run_inline() {
        let empty: Vec<usize> = Vec::new();
        assert!(BatchRunner::new(8).run_map(&empty, |x| *x).is_empty());
        assert_eq!(BatchRunner::new(8).run_map(&[41], |x| x + 1), vec![42]);
    }
}
