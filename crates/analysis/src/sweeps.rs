//! Parameter sweeps over the ring size, used to check the asymptotic claims.
//!
//! Each sweep runs an algorithm over a battery of start placements,
//! orientations and adversaries for every requested ring size and keeps the
//! *worst* observed exploration round, termination round and move count —
//! these are the quantities the paper's bounds (`3N − 6`, `O(n)`,
//! `O(n log n)`, `O(N²)`, `O(n²)`) speak about.

use crate::batch::{batch_lanes_from_env, group_ranges, BatchRunner};
use crate::report::SweepPoint;
use crate::scenario::{AdversaryKind, Scenario, ScenarioBatchRunner};
use dynring_core::fsync::LandmarkNoChirality;
use dynring_core::Algorithm;
use dynring_engine::sim::StopCondition;
use dynring_graph::Handedness;
use dynring_model::TerminationKind;

/// How many start placements a battery exercises per (size, seed, adversary)
/// cell.
///
/// [`PlacementDensity::Dense`] is the `--huge` battery regime of the
/// *Revisited* follow-up (arXiv:2001.04525): on top of the standard
/// adjacent/spread/co-located trio it rotates the adjacent and spread
/// placements around the ring, so asymmetric interactions with the landmark
/// and the blocked edges are exercised from several phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementDensity {
    /// The standard trio: adjacent, spread, co-located.
    #[default]
    Standard,
    /// The standard trio plus rotated variants (roughly 3× the placements).
    Dense,
}

/// The adversaries every possibility claim is exercised against.
#[must_use]
pub fn adversary_suite(ring_size: usize, seed: u64) -> Vec<AdversaryKind> {
    vec![
        AdversaryKind::Static,
        AdversaryKind::Random { p: 0.7, seed },
        AdversaryKind::Sticky {
            min_hold: 1,
            max_hold: (ring_size as u64).max(2),
            present: 0.25,
            seed: seed.wrapping_add(1),
        },
        AdversaryKind::BlockForever { edge: ring_size / 2 },
        AdversaryKind::PreventMeeting,
        AdversaryKind::Alternating { first: 0, second: ring_size / 2 },
    ]
}

/// The start placements exercised for a team of `agents` agents on a ring of
/// size `n`: adjacent, spread out, and co-located.
#[must_use]
pub fn start_placements(ring_size: usize, agents: usize) -> Vec<Vec<usize>> {
    let adjacent: Vec<usize> = (0..agents).map(|i| i % ring_size).collect();
    let spread: Vec<usize> = (0..agents).map(|i| (i * ring_size) / agents).collect();
    let colocated: Vec<usize> = vec![ring_size / 3; agents];
    vec![adjacent, spread, colocated]
}

/// [`start_placements`] at the requested density: `Dense` additionally
/// rotates the adjacent and spread placements by 1, ⌈n/4⌉ and ⌈n/2⌉ nodes
/// (duplicates dropped), producing the denser grid of the `--huge` battery.
#[must_use]
pub fn start_placements_with(
    ring_size: usize,
    agents: usize,
    density: PlacementDensity,
) -> Vec<Vec<usize>> {
    let mut placements = start_placements(ring_size, agents);
    if density == PlacementDensity::Dense {
        let rotate = |placement: &[usize], shift: usize| -> Vec<usize> {
            placement.iter().map(|s| (s + shift) % ring_size).collect()
        };
        let bases: Vec<Vec<usize>> = placements[..2].to_vec();
        for shift in [1, ring_size.div_ceil(4), ring_size.div_ceil(2)] {
            if shift == 0 || shift >= ring_size {
                continue;
            }
            for base in &bases {
                let rotated = rotate(base, shift);
                if !placements.contains(&rotated) {
                    placements.push(rotated);
                }
            }
        }
    }
    placements
}

/// Orientation assignments exercised for a team: all agree, and (when the
/// algorithm does not assume chirality) the first agent disagreeing.
#[must_use]
pub fn orientation_choices(algorithm: &Algorithm, agents: usize) -> Vec<Vec<Handedness>> {
    let mut choices = vec![vec![Handedness::LeftIsCcw; agents]];
    if !algorithm.needs_chirality() && agents > 1 {
        let mut mixed = vec![Handedness::LeftIsCcw; agents];
        mixed[0] = Handedness::LeftIsCw;
        choices.push(mixed);
    }
    choices
}

/// A round budget generous enough for the algorithm's own worst-case bound.
#[must_use]
pub fn round_budget(algorithm: &Algorithm, ring_size: usize) -> u64 {
    let n = ring_size as u64;
    match algorithm {
        Algorithm::LandmarkNoChirality | Algorithm::StartFromLandmarkNoChirality => {
            2 * LandmarkNoChirality::termination_bound(n) + 64 * n + 1024
        }
        Algorithm::PtBoundChirality { .. }
        | Algorithm::PtLandmarkChirality
        | Algorithm::PtBoundNoChirality { .. }
        | Algorithm::PtLandmarkNoChirality
        | Algorithm::EtBoundNoChirality { .. }
        | Algorithm::EtUnconscious => 400 * n * n + 4000,
        _ => 64 * n + 512,
    }
}

/// The round used as the "termination time" of a report, depending on the
/// termination discipline the algorithm promises.
fn termination_time(algorithm: &Algorithm, report: &dynring_engine::sim::RunReport) -> Option<u64> {
    match algorithm.termination_kind() {
        TerminationKind::Explicit => report.last_termination(),
        TerminationKind::Partial => report.first_termination(),
        TerminationKind::Unconscious => report.explored_at,
    }
}

/// Outcome of a sweep: per-size worst cases plus a flag telling whether every
/// single run explored the ring and satisfied its termination discipline.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One point per requested ring size.
    pub points: Vec<SweepPoint>,
    /// Whether every run explored the ring.
    pub all_explored: bool,
    /// Whether every run satisfied the algorithm's termination discipline.
    pub all_terminated_as_promised: bool,
}

/// Sweeps a fully-synchronous algorithm over the adversary battery, using
/// the environment-default [`BatchRunner`].
#[must_use]
pub fn sweep_fsync(
    make_algorithm: impl Fn(usize) -> Algorithm,
    sizes: &[usize],
    seeds: u64,
) -> SweepOutcome {
    sweep(&BatchRunner::from_env(), make_algorithm, sizes, seeds, false)
}

/// Sweeps a semi-synchronous algorithm (PT or ET) over SSYNC schedulers and
/// the adversary battery, using the environment-default [`BatchRunner`].
#[must_use]
pub fn sweep_ssync(
    make_algorithm: impl Fn(usize) -> Algorithm,
    sizes: &[usize],
    seeds: u64,
) -> SweepOutcome {
    sweep(&BatchRunner::from_env(), make_algorithm, sizes, seeds, true)
}

/// [`sweep_fsync`] on an explicit runner (used by the equivalence tests to
/// compare the parallel executor against the sequential reference).
#[must_use]
pub fn sweep_fsync_with(
    runner: &BatchRunner,
    make_algorithm: impl Fn(usize) -> Algorithm,
    sizes: &[usize],
    seeds: u64,
) -> SweepOutcome {
    sweep(runner, make_algorithm, sizes, seeds, false)
}

/// [`sweep_ssync`] on an explicit runner.
#[must_use]
pub fn sweep_ssync_with(
    runner: &BatchRunner,
    make_algorithm: impl Fn(usize) -> Algorithm,
    sizes: &[usize],
    seeds: u64,
) -> SweepOutcome {
    sweep(runner, make_algorithm, sizes, seeds, true)
}

/// [`sweep_fsync_with`] at an explicit [`PlacementDensity`] (the `--huge`
/// battery runs `Dense`).
#[must_use]
pub fn sweep_fsync_battery(
    runner: &BatchRunner,
    make_algorithm: impl Fn(usize) -> Algorithm,
    sizes: &[usize],
    seeds: u64,
    density: PlacementDensity,
) -> SweepOutcome {
    sweep_battery(runner, make_algorithm, sizes, seeds, false, density)
}

/// [`sweep_ssync_with`] at an explicit [`PlacementDensity`].
#[must_use]
pub fn sweep_ssync_battery(
    runner: &BatchRunner,
    make_algorithm: impl Fn(usize) -> Algorithm,
    sizes: &[usize],
    seeds: u64,
    density: PlacementDensity,
) -> SweepOutcome {
    sweep_battery(runner, make_algorithm, sizes, seeds, true, density)
}

/// Enumerates the whole battery up front (in the canonical deterministic
/// order: sizes → seeds → adversaries → placements → orientations), fans the
/// independent runs across the runner's threads, and folds the reports back
/// in enumeration order. Because the runner merges results in input order,
/// the outcome is bit-identical whatever the thread count.
fn sweep(
    runner: &BatchRunner,
    make_algorithm: impl Fn(usize) -> Algorithm,
    sizes: &[usize],
    seeds: u64,
    ssync: bool,
) -> SweepOutcome {
    sweep_battery(runner, make_algorithm, sizes, seeds, ssync, PlacementDensity::Standard)
}

fn sweep_battery(
    runner: &BatchRunner,
    make_algorithm: impl Fn(usize) -> Algorithm,
    sizes: &[usize],
    seeds: u64,
    ssync: bool,
    density: PlacementDensity,
) -> SweepOutcome {
    let mut meta: Vec<(usize, Algorithm)> = Vec::new();
    let mut scenarios: Vec<Scenario> = Vec::new();
    for (size_index, &n) in sizes.iter().enumerate() {
        let algorithm = make_algorithm(n);
        for seed in 0..seeds {
            for adversary in adversary_suite(n, seed * 97 + 13) {
                for starts in start_placements_with(n, algorithm.required_agents(), density) {
                    for orientations in orientation_choices(&algorithm, algorithm.required_agents())
                    {
                        let base = if ssync {
                            Scenario::ssync(n, algorithm, seed * 31 + 7)
                        } else {
                            Scenario::fsync(n, algorithm)
                        };
                        let stop = match algorithm.termination_kind() {
                            TerminationKind::Explicit => StopCondition::AllTerminated,
                            TerminationKind::Partial => {
                                StopCondition::ExploredAndPartialTermination
                            }
                            TerminationKind::Unconscious => StopCondition::Explored,
                        };
                        let scenario = base
                            .with_starts(starts.clone())
                            .with_orientations(orientations)
                            .with_adversary(adversary.clone())
                            .with_stop(stop)
                            .with_max_rounds(round_budget(&algorithm, n));
                        meta.push((size_index, algorithm));
                        scenarios.push(scenario);
                    }
                }
            }
        }
    }

    // Consecutive same-shape cells (the common case: a battery fixes size
    // and algorithm while rotating adversaries/placements/orientations) ride
    // the engine's batched lockstep path as one lane group per range; each
    // worker thread drives its share of the ranges through one recycled
    // `ScenarioBatchRunner`. Merging in input order keeps the outcome
    // bit-identical to the solo cell-by-cell path.
    let ranges = group_ranges(&scenarios, |scenario| scenario, batch_lanes_from_env());
    let reports: Vec<_> = runner
        .run_map_with(&ranges, ScenarioBatchRunner::new, |worker, range| {
            worker.run_group(&scenarios[range.clone()])
        })
        .into_iter()
        .flatten()
        .collect();

    let mut points: Vec<SweepPoint> = sizes
        .iter()
        .map(|&n| SweepPoint {
            ring_size: n,
            worst_rounds: 0,
            worst_termination: 0,
            worst_moves: 0,
            runs: 0,
        })
        .collect();
    let mut all_explored = true;
    let mut all_terminated = true;
    for ((size_index, algorithm), report) in meta.iter().zip(&reports) {
        let point = &mut points[*size_index];
        point.runs += 1;
        all_explored &= report.explored();
        let done = match algorithm.termination_kind() {
            TerminationKind::Explicit => report.all_terminated,
            TerminationKind::Partial => report.partially_terminated(),
            TerminationKind::Unconscious => report.explored(),
        };
        all_terminated &= done;
        point.worst_rounds = point.worst_rounds.max(report.explored_at.unwrap_or(u64::MAX));
        point.worst_termination = point
            .worst_termination
            .max(termination_time(algorithm, report).unwrap_or(u64::MAX));
        point.worst_moves = point.worst_moves.max(report.total_moves);
    }
    SweepOutcome { points, all_explored, all_terminated_as_promised: all_terminated }
}

/// Checks that the worst observed cost stays below `bound(n)` for every point.
#[must_use]
pub fn within_bound(points: &[SweepPoint], value: impl Fn(&SweepPoint) -> u64, bound: impl Fn(usize) -> u64) -> bool {
    points.iter().all(|p| value(p) <= bound(p.ring_size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_suite_is_diverse() {
        let suite = adversary_suite(10, 1);
        assert!(suite.len() >= 5);
        assert!(suite.contains(&AdversaryKind::Static));
        assert!(suite.contains(&AdversaryKind::PreventMeeting));
    }

    #[test]
    fn start_placements_are_within_range() {
        for placement in start_placements(7, 3) {
            assert_eq!(placement.len(), 3);
            assert!(placement.iter().all(|s| *s < 7));
        }
    }

    #[test]
    fn orientation_choices_respect_chirality() {
        let with_chirality = orientation_choices(&Algorithm::LandmarkChirality, 2);
        assert_eq!(with_chirality.len(), 1);
        let without = orientation_choices(&Algorithm::KnownBound { upper_bound: 5 }, 2);
        assert_eq!(without.len(), 2);
    }

    #[test]
    fn round_budget_scales_with_the_algorithm() {
        let small = round_budget(&Algorithm::KnownBound { upper_bound: 8 }, 8);
        let large = round_budget(&Algorithm::LandmarkNoChirality, 8);
        let quad = round_budget(&Algorithm::PtBoundChirality { upper_bound: 8 }, 8);
        assert!(small < large);
        assert!(small < quad);
    }

    #[test]
    fn known_bound_sweep_respects_the_3n_minus_6_bound() {
        let outcome =
            sweep_fsync(|n| Algorithm::KnownBound { upper_bound: n }, &[5, 7], 1);
        assert!(outcome.all_explored);
        assert!(outcome.all_terminated_as_promised);
        // Theorem 3: explicit termination within 3N-6 rounds (the terminating
        // decision happens in the following round).
        assert!(within_bound(&outcome.points, |p| p.worst_termination, |n| 3 * n as u64 - 6 + 1));
    }

    #[test]
    fn unconscious_sweep_explores_in_linear_time() {
        let outcome = sweep_fsync(|_| Algorithm::Unconscious, &[6], 1);
        assert!(outcome.all_explored);
        // Theorem 5: O(n); a factor of 16 is ample for n = 6.
        assert!(within_bound(&outcome.points, |p| p.worst_rounds, |n| 16 * n as u64));
    }
}
