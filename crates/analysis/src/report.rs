//! Structured experiment results and markdown rendering.

use serde::{Deserialize, Serialize};

/// The outcome of one row of a reproduced table (or of one figure).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowResult {
    /// Experiment identifier (e.g. `"T2-R1"`, `"F2"`).
    pub id: String,
    /// Which claim of the paper the row reproduces (e.g. `"Theorem 3"`).
    pub claim: String,
    /// The scenario assumptions, in the wording of the paper's tables.
    pub assumptions: String,
    /// What the paper states for this row.
    pub paper: String,
    /// What was measured.
    pub observed: String,
    /// Whether the measurement is consistent with the paper's claim.
    pub holds: bool,
    /// Number of individual runs aggregated into this row.
    pub runs: usize,
}

impl RowResult {
    /// Creates a row.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: impl Into<String>,
        claim: impl Into<String>,
        assumptions: impl Into<String>,
        paper: impl Into<String>,
        observed: impl Into<String>,
        holds: bool,
        runs: usize,
    ) -> Self {
        RowResult {
            id: id.into(),
            claim: claim.into(),
            assumptions: assumptions.into(),
            paper: paper.into(),
            observed: observed.into(),
            holds,
            runs,
        }
    }
}

/// Renders rows as a GitHub-flavoured markdown table mirroring the layout of
/// the paper's tables.
#[must_use]
pub fn markdown_table(title: &str, rows: &[RowResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str("| id | claim | assumptions | paper | measured | holds | runs |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            row.id,
            row.claim,
            row.assumptions,
            row.paper,
            row.observed,
            if row.holds { "yes" } else { "NO" },
            row.runs
        ));
    }
    out
}

/// A single point of a complexity sweep (cost as a function of the ring size).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Ring size `n`.
    pub ring_size: usize,
    /// Worst observed number of rounds until exploration.
    pub worst_rounds: u64,
    /// Worst observed number of rounds until the relevant termination.
    pub worst_termination: u64,
    /// Worst observed total number of edge traversals.
    pub worst_moves: u64,
    /// Number of runs behind this point.
    pub runs: usize,
}

/// Renders a sweep as a markdown table, together with the claimed bound
/// evaluated at each size so that "the shape holds" is visible at a glance.
#[must_use]
pub fn markdown_sweep(
    title: &str,
    points: &[SweepPoint],
    bound_name: &str,
    bound: impl Fn(usize) -> u64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str(&format!(
        "| n | worst rounds to explore | worst rounds to terminate | worst moves | {bound_name} |\n"
    ));
    out.push_str("|---|---|---|---|---|\n");
    for p in points {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            p.ring_size,
            p.worst_rounds,
            p.worst_termination,
            p.worst_moves,
            bound(p.ring_size)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_contains_all_rows_and_flags_violations() {
        let rows = vec![
            RowResult::new("T2-R1", "Theorem 3", "known N", "3N-6", "18 <= 18", true, 12),
            RowResult::new("T2-R2", "Theorem 6", "landmark", "O(n)", "violated", false, 3),
        ];
        let md = markdown_table("Table 2", &rows);
        assert!(md.contains("### Table 2"));
        assert!(md.contains("T2-R1"));
        assert!(md.contains("| yes |"));
        assert!(md.contains("| NO |"));
        assert_eq!(md.lines().count(), 2 + 2 + 2); // title + blank + header + sep + 2 rows
    }

    #[test]
    fn markdown_sweep_evaluates_the_bound() {
        let points = vec![
            SweepPoint { ring_size: 4, worst_rounds: 6, worst_termination: 7, worst_moves: 9, runs: 5 },
            SweepPoint { ring_size: 8, worst_rounds: 18, worst_termination: 19, worst_moves: 30, runs: 5 },
        ];
        let md = markdown_sweep("Theorem 3 sweep", &points, "3N-6", |n| 3 * n as u64 - 6);
        assert!(md.contains("| 4 | 6 | 7 | 9 | 6 |"));
        assert!(md.contains("| 8 | 18 | 19 | 30 | 18 |"));
    }
}
