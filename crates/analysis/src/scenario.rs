//! Declarative scenario descriptions and a one-call runner.
//!
//! A [`Scenario`] bundles everything needed to run one execution: the ring
//! (size and landmark), the algorithm and how many agents run it, their
//! starting nodes and orientations, the synchrony/transport model, the
//! activation scheduler and the edge adversary. The experiments in
//! [`crate::tables`], [`crate::figures`] and [`crate::sweeps`] are all thin
//! layers over this type.

use dynring_core::Algorithm;
use dynring_engine::adversary::{
    AlternatingBlock, BlockAgent, BlockEdgeForever, BlockFirstMover, ConfineWindow, EdgePolicy,
    FromSchedule, NoRemoval, PreventMeeting, RandomEdge, StickyRandomEdge,
};
use dynring_engine::scheduler::{
    ActivationPolicy, AlternateBlocked, EtFairness, FirstMoverOnly, FullActivation, RandomSubset,
    RoundRobinSingle,
};
use dynring_engine::sim::{AgentSpec, RunReport, RunSpec, Simulation, StopCondition};
use dynring_engine::sim_batch::{BatchLane, SimBatch};
use dynring_engine::trace::Trace;
use dynring_graph::{AgentId, EdgeId, EdgeSchedule, Handedness, NodeId, RingTopology};
use dynring_model::SynchronyModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The edge adversaries available to scenarios (a serialisable mirror of the
/// engine's [`EdgePolicy`] implementations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// No edge is ever removed.
    Static,
    /// One uniformly random edge is removed with probability `p` each round.
    Random {
        /// Removal probability per round.
        p: f64,
        /// RNG seed.
        seed: u64,
    },
    /// A random edge is removed and held for a random number of rounds.
    Sticky {
        /// Minimum hold duration.
        min_hold: u64,
        /// Maximum hold duration.
        max_hold: u64,
        /// Probability that an episode removes no edge at all.
        present: f64,
        /// RNG seed.
        seed: u64,
    },
    /// The same edge is removed in every round.
    BlockForever {
        /// The permanently missing edge.
        edge: usize,
    },
    /// Observation 1: the edge in front of the given agent is always removed.
    BlockAgent {
        /// The targeted agent index.
        agent: usize,
    },
    /// Observation 2: the agents are never allowed to meet.
    PreventMeeting,
    /// Theorem 9: the single activated would-be mover is always blocked.
    BlockFirstMover,
    /// The agents are confined to the CCW arc `[lo, hi]`.
    Confine {
        /// First node of the window.
        lo: usize,
        /// Last node of the window.
        hi: usize,
    },
    /// Two edges are removed in alternation.
    Alternating {
        /// Edge removed in odd rounds.
        first: usize,
        /// Edge removed in even rounds.
        second: usize,
    },
    /// A scripted schedule (e.g. the Figure 2 worst case), shared behind an
    /// [`Arc`] so huge batteries replaying one schedule across thousands of
    /// cells never deep-copy the removal list per build (construct via
    /// [`AdversaryKind::scripted`]).
    Scripted(Arc<EdgeSchedule>),
}

impl AdversaryKind {
    /// Wraps a scripted schedule (owned or already shared).
    #[must_use]
    pub fn scripted(schedule: impl Into<Arc<EdgeSchedule>>) -> Self {
        AdversaryKind::Scripted(schedule.into())
    }

    pub(crate) fn instantiate(&self) -> Box<dyn EdgePolicy> {
        match self {
            AdversaryKind::Static => Box::new(NoRemoval),
            AdversaryKind::Random { p, seed } => Box::new(RandomEdge::new(*p, *seed)),
            AdversaryKind::Sticky { min_hold, max_hold, present, seed } => {
                Box::new(StickyRandomEdge::new(*min_hold, *max_hold, *present, *seed))
            }
            AdversaryKind::BlockForever { edge } => {
                Box::new(BlockEdgeForever::new(EdgeId::new(*edge)))
            }
            AdversaryKind::BlockAgent { agent } => Box::new(BlockAgent::new(AgentId::new(*agent))),
            AdversaryKind::PreventMeeting => Box::new(PreventMeeting::new()),
            AdversaryKind::BlockFirstMover => Box::new(BlockFirstMover),
            AdversaryKind::Confine { lo, hi } => {
                Box::new(ConfineWindow::new(NodeId::new(*lo), NodeId::new(*hi)))
            }
            AdversaryKind::Alternating { first, second } => {
                Box::new(AlternatingBlock::new(EdgeId::new(*first), EdgeId::new(*second)))
            }
            AdversaryKind::Scripted(schedule) => {
                // A clone of the Arc, not of the schedule: the removal list
                // is shared by every cell of a battery.
                Box::new(FromSchedule::new(Arc::clone(schedule)))
            }
        }
    }

    /// A short label used in reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            AdversaryKind::Static => "static".into(),
            AdversaryKind::Random { p, .. } => format!("random(p={p})"),
            AdversaryKind::Sticky { min_hold, max_hold, .. } => {
                format!("sticky({min_hold}..{max_hold})")
            }
            AdversaryKind::BlockForever { edge } => format!("block-e{edge}-forever"),
            AdversaryKind::BlockAgent { agent } => format!("block-agent-{agent}"),
            AdversaryKind::PreventMeeting => "prevent-meeting".into(),
            AdversaryKind::BlockFirstMover => "block-first-mover".into(),
            AdversaryKind::Confine { lo, hi } => format!("confine[{lo}..{hi}]"),
            AdversaryKind::Alternating { first, second } => format!("alternate(e{first},e{second})"),
            AdversaryKind::Scripted(_) => "scripted".into(),
        }
    }
}

/// How a scenario's agents dispatch their Compute step.
///
/// The catalogue of the paper is closed, so the engine offers two observably
/// identical representations of every catalogue protocol (see
/// `docs/ARCHITECTURE.md`, "The dispatch story"): the statically dispatched
/// [`CatalogProtocol`](dynring_core::CatalogProtocol) enum and the classic
/// virtual `Box<dyn Protocol>`. Scenarios default to the enum fast path;
/// the `dyn` path is kept selectable so the equivalence tests
/// (`tests/dispatch_equivalence.rs`) and the `dispatch=enum|dyn` benchmark
/// rows can compare the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DispatchKind {
    /// Statically dispatched enum runtime (`Algorithm::instantiate_enum`).
    #[default]
    Enum,
    /// Virtually dispatched boxed runtime (`Algorithm::instantiate`).
    Dyn,
}

impl DispatchKind {
    /// The label used in benchmark case ids and report rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DispatchKind::Enum => "enum",
            DispatchKind::Dyn => "dyn",
        }
    }
}

/// The activation schedulers available to scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// FSYNC: every agent active in every round.
    Full,
    /// Exactly one agent per round, in rotation.
    RoundRobin,
    /// Each agent active independently with probability `p`.
    Random {
        /// Activation probability.
        p: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Agents waiting on a port are kept asleep for up to `hold` rounds.
    SleepBlocked {
        /// Maximum consecutive sleeping rounds on a port.
        hold: u64,
    },
    /// Theorem 9: only the longest-passive would-be mover (plus all
    /// non-movers) is activated.
    FirstMoverOnly,
    /// Round robin wrapped in the ET fairness guarantee.
    EtFairRoundRobin {
        /// Maximum rounds an agent may sleep on a port before being woken.
        max_lag: u64,
    },
}

impl SchedulerKind {
    pub(crate) fn instantiate(&self) -> Box<dyn ActivationPolicy> {
        match self {
            SchedulerKind::Full => Box::new(FullActivation),
            SchedulerKind::RoundRobin => Box::new(RoundRobinSingle::new()),
            SchedulerKind::Random { p, seed } => Box::new(RandomSubset::new(*p, *seed)),
            SchedulerKind::SleepBlocked { hold } => Box::new(AlternateBlocked::new(*hold)),
            SchedulerKind::FirstMoverOnly => Box::new(FirstMoverOnly),
            SchedulerKind::EtFairRoundRobin { max_lag } => {
                Box::new(EtFairness::new(Box::new(RoundRobinSingle::new()), *max_lag))
            }
        }
    }

    /// A short label used in reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Full => "fsync",
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::Random { .. } => "random-subset",
            SchedulerKind::SleepBlocked { .. } => "sleep-blocked",
            SchedulerKind::FirstMoverOnly => "first-mover-only",
            SchedulerKind::EtFairRoundRobin { .. } => "et-fair-round-robin",
        }
    }
}

/// A complete, runnable experiment description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Ring size `n`.
    pub ring_size: usize,
    /// Landmark node, if the ring has one.
    pub landmark: Option<usize>,
    /// The algorithm every agent runs.
    pub algorithm: Algorithm,
    /// Starting node of each agent.
    pub starts: Vec<usize>,
    /// Orientation of each agent (must have the same length as `starts`).
    pub orientations: Vec<Handedness>,
    /// Synchrony and transport model.
    pub synchrony: SynchronyModel,
    /// Activation scheduler.
    pub scheduler: SchedulerKind,
    /// Edge adversary.
    pub adversary: AdversaryKind,
    /// Round budget.
    pub max_rounds: u64,
    /// Stop condition.
    pub stop: StopCondition,
    /// Whether to record a full trace.
    pub record_trace: bool,
    /// How the agents dispatch Compute (enum fast path by default).
    pub dispatch: DispatchKind,
}

impl Scenario {
    /// A fully-synchronous scenario on a static anonymous ring with agents
    /// spread evenly, used as the base case that individual experiments then
    /// customise.
    #[must_use]
    pub fn fsync(ring_size: usize, algorithm: Algorithm) -> Self {
        let agents = algorithm.required_agents();
        let starts: Vec<usize> = (0..agents).map(|i| (i * ring_size) / agents).collect();
        let landmark = algorithm.needs_landmark().then_some(0);
        Scenario {
            ring_size,
            landmark,
            algorithm,
            starts,
            orientations: vec![Handedness::LeftIsCcw; agents],
            synchrony: SynchronyModel::Fsync,
            scheduler: SchedulerKind::Full,
            adversary: AdversaryKind::Static,
            max_rounds: 64 * ring_size as u64 + 512,
            stop: StopCondition::AllTerminated,
            record_trace: false,
            dispatch: DispatchKind::Enum,
        }
    }

    /// A semi-synchronous scenario using the algorithm's own transport model,
    /// an adversarial (but model-respecting) scheduler and sticky random
    /// dynamics. Under ET the scheduler must satisfy the eventual-transport
    /// fairness condition, so blocked agents are re-activated every round;
    /// under PT the passive-transport rule takes care of sleepers and the
    /// scheduler may keep them asleep.
    #[must_use]
    pub fn ssync(ring_size: usize, algorithm: Algorithm, seed: u64) -> Self {
        let mut scenario = Self::fsync(ring_size, algorithm);
        scenario.synchrony = algorithm.synchrony();
        scenario.scheduler = match algorithm.synchrony() {
            SynchronyModel::Ssync(dynring_model::TransportModel::EventualTransport) => {
                // max_lag = 0: every port holder is re-activated each round,
                // which satisfies the ET condition against any adversary.
                SchedulerKind::EtFairRoundRobin { max_lag: 0 }
            }
            _ => SchedulerKind::SleepBlocked { hold: 3 },
        };
        scenario.adversary = AdversaryKind::Sticky {
            min_hold: 1,
            max_hold: ring_size as u64,
            present: 0.3,
            seed,
        };
        scenario.max_rounds = 200 * (ring_size as u64) * (ring_size as u64) + 1000;
        scenario.stop = StopCondition::ExploredAndPartialTermination;
        scenario
    }

    /// Replaces the starting nodes.
    #[must_use]
    pub fn with_starts(mut self, starts: Vec<usize>) -> Self {
        self.starts = starts;
        self
    }

    /// Replaces the orientations.
    #[must_use]
    pub fn with_orientations(mut self, orientations: Vec<Handedness>) -> Self {
        self.orientations = orientations;
        self
    }

    /// Replaces the adversary.
    #[must_use]
    pub fn with_adversary(mut self, adversary: AdversaryKind) -> Self {
        self.adversary = adversary;
        self
    }

    /// Replaces the scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Replaces the stop condition.
    #[must_use]
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Replaces the round budget.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Replaces the dispatch representation (enum fast path by default).
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchKind) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The ring topology this scenario runs on (with its landmark, if any).
    #[must_use]
    pub fn ring(&self) -> RingTopology {
        match self.landmark {
            Some(l) => RingTopology::with_landmark(self.ring_size, NodeId::new(l))
                .expect("valid landmark ring"),
            None => RingTopology::new(self.ring_size).expect("valid ring"),
        }
    }

    /// Compiles this scenario into the engine's reusable [`RunSpec`] (ring,
    /// synchrony, agent templates, trace flag) — the description a
    /// [`ScenarioRunner`] recycles one `Simulation` through. The policies are
    /// not part of the spec; they are instantiated from
    /// [`Scenario::scheduler`] / [`Scenario::adversary`] when installed.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is malformed (e.g. a start node outside the
    /// ring), like [`Scenario::build`].
    #[must_use]
    pub fn compile(&self) -> RunSpec {
        let agents = self
            .starts
            .iter()
            .enumerate()
            .map(|(i, start)| {
                let handedness =
                    self.orientations.get(i).copied().unwrap_or(Handedness::LeftIsCcw);
                match self.dispatch {
                    DispatchKind::Enum => AgentSpec::new(
                        NodeId::new(*start),
                        handedness,
                        self.algorithm.instantiate_enum(),
                    ),
                    DispatchKind::Dyn => AgentSpec::new(
                        NodeId::new(*start),
                        handedness,
                        self.algorithm.instantiate(),
                    ),
                }
            })
            .collect();
        RunSpec::new(self.ring(), self.synchrony, agents, self.record_trace)
            .expect("scenario must describe a valid simulation")
    }

    /// Builds the simulation for this scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is malformed (e.g. a start node outside the
    /// ring); scenario construction is test/benchmark code where a loud
    /// failure is preferable to error plumbing.
    #[must_use]
    pub fn build(&self) -> Simulation {
        let ring = self.ring();
        let mut builder = Simulation::builder(ring)
            .synchrony(self.synchrony)
            .activation(self.scheduler.instantiate())
            .edges(self.adversary.instantiate())
            .record_trace(self.record_trace);
        for (i, start) in self.starts.iter().enumerate() {
            let handedness =
                self.orientations.get(i).copied().unwrap_or(Handedness::LeftIsCcw);
            builder = match self.dispatch {
                DispatchKind::Enum => builder.agent_program(
                    NodeId::new(*start),
                    handedness,
                    self.algorithm.instantiate_enum(),
                ),
                DispatchKind::Dyn => builder.agent(
                    NodeId::new(*start),
                    handedness,
                    self.algorithm.instantiate(),
                ),
            };
        }
        builder.build().expect("scenario must describe a valid simulation")
    }

    /// Builds and runs the scenario, returning the run report.
    #[must_use]
    pub fn run(&self) -> RunReport {
        self.build().run(self.max_rounds, self.stop)
    }

    /// A short description used in report rows.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{} n={} {} {}",
            self.algorithm,
            self.ring_size,
            self.scheduler.label(),
            self.adversary.label()
        )
    }

    /// Whether this scenario may ride the batched engine path at all.
    /// Always true since the columnar trace refactor: batched lanes record
    /// traces through the same flat-append fast path as solo runs, so trace
    /// cells batch like any other cell (read them back via
    /// [`ScenarioBatchRunner::trace`]).
    #[must_use]
    pub fn batchable(&self) -> bool {
        true
    }

    /// Whether this scenario's shape actually *profits* from lockstep
    /// batching.
    ///
    /// FSYNC cells do: every lane activates every agent every round, so the
    /// run-major SoA loop amortises its per-round dispatch across all lanes.
    /// SSYNC cells don't — scheduler-driven activation makes lanes diverge
    /// (different agents active, different rounds decided), and the measured
    /// batched throughput on the ssync-pt shape trails the recycled solo
    /// runner. [`ScenarioBatchRunner`] uses this to route non-lockstep
    /// groups through its solo recycled path; outputs are byte-identical
    /// either way, this is purely a throughput heuristic (override with
    /// `DYNRING_BATCH_LANES=solo` to force solo routing for every shape).
    #[must_use]
    pub fn prefers_lockstep(&self) -> bool {
        matches!(self.synchrony, SynchronyModel::Fsync)
    }

    /// Whether `self` and `other` can share one [`SimBatch`] lane group.
    ///
    /// The engine requires every lane of a batch to agree on ring size, team
    /// size and synchrony model, and one batch plays all its lanes under a
    /// single round budget and stop condition — so those must match too.
    /// Everything else — algorithm, landmark, placements, orientations,
    /// scheduler, adversary, dispatch, trace recording — is per-lane state
    /// and may differ freely within a group.
    #[must_use]
    pub fn same_batch_shape(&self, other: &Scenario) -> bool {
        self.ring_size == other.ring_size
            && self.starts.len() == other.starts.len()
            && self.synchrony == other.synchrony
            && self.max_rounds == other.max_rounds
            && self.stop == other.stop
    }
}

/// A stateful scenario executor that **recycles one [`Simulation`]** across
/// runs instead of rebuilding it per cell.
///
/// Every sweep cell used to pay a full `Scenario::run()` → `build()`:
/// a fresh ring, agent SoA, scratch, probe pool and boxed policies per run.
/// A `ScenarioRunner` holds one `Simulation` (plus the [`RunSpec`] and the
/// [`Scenario`] it was compiled from) and re-initialises it in place:
///
/// * **same scenario again** (the benchmark regime): pure
///   [`Simulation::recycle`] — zero steady-state allocations;
/// * **different scenario** (consecutive battery cells): the spec is
///   recompiled and fresh policies installed, but the simulation's buffers —
///   the big per-`n` and per-agent allocations — are all reused;
/// * **first scenario**: a fresh build, exactly like `Scenario::run()`.
///
/// The output is byte-identical to the fresh-build path for every scenario
/// (`tests/recycle_equivalence.rs`); [`BatchRunner`](crate::batch::BatchRunner)
/// gives each worker thread its own runner, so whole batteries ride this fast
/// path without sharing state across threads.
#[derive(Debug, Default)]
pub struct ScenarioRunner {
    sim: Option<Simulation>,
    spec: Option<RunSpec>,
    compiled_from: Option<Scenario>,
}

impl ScenarioRunner {
    /// An empty runner (the first run builds its simulation).
    #[must_use]
    pub fn new() -> Self {
        ScenarioRunner::default()
    }

    /// Runs the scenario on the recycled simulation, returning the report.
    #[must_use]
    pub fn run(&mut self, scenario: &Scenario) -> RunReport {
        let (max_rounds, stop) = (scenario.max_rounds, scenario.stop);
        self.prepare(scenario).run(max_rounds, stop)
    }

    /// [`ScenarioRunner::run`], but the summary is written into an existing
    /// report in place ([`Simulation::run_into`]) — the fully
    /// allocation-free rerun path used by the `sweep_throughput` benchmark.
    pub fn run_into(&mut self, scenario: &Scenario, report: &mut RunReport) {
        let (max_rounds, stop) = (scenario.max_rounds, scenario.stop);
        self.prepare(scenario).run_into(max_rounds, stop, report);
    }

    /// The trace of the last run, if the scenario recorded one.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.sim.as_ref().and_then(Simulation::trace)
    }

    /// Readies the held simulation for a run of `scenario` at round zero.
    fn prepare(&mut self, scenario: &Scenario) -> &mut Simulation {
        if self.compiled_from.as_ref() == Some(scenario) {
            // Identical cell: recycle through the cached spec; the installed
            // policies are restored by their reset hooks. No allocation.
            let sim = self.sim.as_mut().expect("compiled_from implies a live simulation");
            sim.recycle(self.spec.as_ref().expect("compiled_from implies a cached spec"));
            return sim;
        }
        let spec = scenario.compile();
        let activation = scenario.scheduler.instantiate();
        let edges = scenario.adversary.instantiate();
        match self.sim.as_mut() {
            Some(sim) => {
                sim.replace_policies(activation, edges);
                sim.recycle(&spec);
            }
            None => self.sim = Some(spec.instantiate(activation, edges)),
        }
        self.spec = Some(spec);
        self.compiled_from = Some(scenario.clone());
        self.sim.as_mut().expect("simulation was just installed")
    }
}

/// A stateful executor for **groups** of same-shape scenarios that rides the
/// engine's batched path ([`SimBatch`]): one group becomes one lane batch,
/// each lane carrying its own compiled spec and freshly instantiated
/// policies, and the reports come back in lane order — byte-identical to
/// running every cell solo (each lane's policies consume their RNG streams
/// exactly as a solo run would).
///
/// Like [`ScenarioRunner`] it caches its last group: re-running an identical
/// group (the benchmark regime) is a pure [`SimBatch::recycle`] — zero
/// steady-state heap allocations in the engine — while a different group
/// reloads fresh lanes into the same buffers. Singleton groups (nothing to
/// step in lockstep) fall back to an embedded solo [`ScenarioRunner`], so
/// callers can feed any [`group_ranges`](crate::batch::group_ranges)
/// partition without special cases; trace-recording cells batch like any
/// other cell since the columnar trace refactor, their traces readable per
/// cell via [`ScenarioBatchRunner::trace`].
#[derive(Debug, Default)]
pub struct ScenarioBatchRunner {
    batch: SimBatch,
    compiled_from: Vec<Scenario>,
    reports: Vec<RunReport>,
    solo: ScenarioRunner,
    /// Whether the last group ran through the solo fallback (singletons).
    last_solo: bool,
}

impl ScenarioBatchRunner {
    /// An empty runner (the first group loads the batch).
    #[must_use]
    pub fn new() -> Self {
        ScenarioBatchRunner::default()
    }

    /// Runs every scenario of the group and returns one report per cell, in
    /// input order.
    ///
    /// # Panics
    ///
    /// Panics when a multi-cell group is not actually same-shape — the
    /// contract of [`Scenario::same_batch_shape`]; partition arbitrary
    /// batteries with [`group_ranges`](crate::batch::group_ranges).
    #[must_use]
    pub fn run_group(&mut self, group: &[Scenario]) -> Vec<RunReport> {
        let mut out = Vec::with_capacity(group.len());
        self.run_group_into(group, &mut out);
        out
    }

    /// [`ScenarioBatchRunner::run_group`], appending the reports to `out`.
    pub fn run_group_into(&mut self, group: &[Scenario], out: &mut Vec<RunReport>) {
        let produced = self.run_group_reports(group).len();
        debug_assert_eq!(produced, group.len());
        // Split borrow dance: `run_group_reports` holds `&mut self`, so copy
        // out of the buffer afterwards.
        out.extend_from_slice(&self.reports[..produced]);
    }

    /// Runs the group and returns the harvested reports as a borrowed slice
    /// (one per cell, in input order; valid until the next call) — the
    /// allocation-free rerun path the `sweep_throughput` benchmark measures:
    /// re-running the identical group recycles the batch and rewrites the
    /// same report buffers in place, with zero steady-state heap
    /// allocations.
    ///
    /// # Panics
    ///
    /// Panics when a multi-cell group is not same-shape, like
    /// [`ScenarioBatchRunner::run_group`].
    pub fn run_group_reports(&mut self, group: &[Scenario]) -> &[RunReport] {
        let b = group.len();
        let Some(first) = group.first() else { return &[] };
        // Adaptive lifecycle heuristic: shapes that don't profit from
        // lockstep (SSYNC groups — see `Scenario::prefers_lockstep`) run on
        // the recycled solo runner instead of the batch. Trace-recording
        // groups stay batched so `ScenarioBatchRunner::trace` keeps every
        // lane's trace addressable. Reports are byte-identical either way.
        let route_solo = b == 1
            || (!group.iter().all(Scenario::prefers_lockstep)
                && group.iter().all(|s| !s.record_trace));
        if route_solo {
            self.last_solo = true;
            if self.reports.len() < b {
                self.reports.resize_with(b, RunReport::default);
            }
            for (lane, scenario) in group.iter().enumerate() {
                self.solo.run_into(scenario, &mut self.reports[lane]);
            }
            return &self.reports[..b];
        }
        self.last_solo = false;
        assert!(
            group.iter().all(|s| first.same_batch_shape(s)),
            "a batched group must be same-shape (see Scenario::same_batch_shape)"
        );
        if self.compiled_from.as_slice() == group {
            self.batch.recycle();
        } else {
            let lanes = group
                .iter()
                .map(|scenario| BatchLane {
                    spec: scenario.compile(),
                    activation: scenario.scheduler.instantiate(),
                    edges: scenario.adversary.instantiate(),
                })
                .collect();
            self.batch
                .load(lanes)
                .expect("a same-shape group satisfies the engine's batch constraints");
            self.compiled_from.clear();
            self.compiled_from.extend_from_slice(group);
        }
        self.batch.run_into(first.max_rounds, first.stop, &mut self.reports);
        &self.reports[..b]
    }

    /// The trace recorded by cell `index` of the last group, if that cell's
    /// scenario enabled trace recording — byte-identical to the trace a solo
    /// run of the same cell would record, whichever path executed it.
    #[must_use]
    pub fn trace(&self, index: usize) -> Option<&Trace> {
        if self.last_solo {
            if index == 0 {
                self.solo.trace()
            } else {
                None
            }
        } else {
            self.batch.trace(index)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssync_groups_route_through_the_solo_recycled_path() {
        let fsync = Scenario::fsync(6, Algorithm::KnownBound { upper_bound: 6 });
        assert!(fsync.prefers_lockstep(), "FSYNC shapes profit from lockstep");
        let group: Vec<Scenario> = (0..4)
            .map(|i| Scenario::ssync(6, Algorithm::PtBoundChirality { upper_bound: 6 }, i))
            .collect();
        assert!(group.iter().all(|s| !s.prefers_lockstep()), "SSYNC shapes do not");

        // The routed group must produce byte-identical reports to per-cell
        // solo runs, and actually take the solo path.
        let mut runner = ScenarioBatchRunner::new();
        let routed = runner.run_group(&group);
        assert!(runner.last_solo, "a non-lockstep group must route solo");
        let solo: Vec<RunReport> = group.iter().map(Scenario::run).collect();
        assert_eq!(routed, solo);

        // Lockstep groups still ride the batch.
        let lockstep: Vec<Scenario> = (0..4)
            .map(|_| Scenario::fsync(6, Algorithm::KnownBound { upper_bound: 6 }))
            .collect();
        let batched = runner.run_group(&lockstep);
        assert!(!runner.last_solo, "an FSYNC group must stay batched");
        assert_eq!(batched, lockstep.iter().map(Scenario::run).collect::<Vec<_>>());
    }

    #[test]
    fn fsync_scenario_defaults_are_consistent() {
        let s = Scenario::fsync(9, Algorithm::KnownBound { upper_bound: 9 });
        assert_eq!(s.starts.len(), 2);
        assert_eq!(s.orientations.len(), 2);
        assert_eq!(s.landmark, None);
        let s = Scenario::fsync(9, Algorithm::LandmarkChirality);
        assert_eq!(s.landmark, Some(0));
    }

    #[test]
    fn known_bound_scenario_runs_to_termination() {
        let report = Scenario::fsync(8, Algorithm::KnownBound { upper_bound: 8 }).run();
        assert!(report.explored());
        assert!(report.all_terminated);
    }

    #[test]
    fn ssync_scenario_runs_pt_algorithm() {
        let report = Scenario::ssync(6, Algorithm::PtBoundChirality { upper_bound: 6 }, 11).run();
        assert!(report.explored());
        assert!(report.partially_terminated());
    }

    #[test]
    fn builders_override_fields() {
        let s = Scenario::fsync(8, Algorithm::Unconscious)
            .with_starts(vec![1, 5])
            .with_orientations(vec![Handedness::LeftIsCcw, Handedness::LeftIsCw])
            .with_adversary(AdversaryKind::PreventMeeting)
            .with_scheduler(SchedulerKind::Full)
            .with_stop(StopCondition::Explored)
            .with_max_rounds(500)
            .with_trace();
        assert_eq!(s.starts, vec![1, 5]);
        assert_eq!(s.adversary, AdversaryKind::PreventMeeting);
        assert!(s.record_trace);
        let report = s.run();
        assert!(report.explored());
    }

    #[test]
    fn dispatch_defaults_to_enum_and_is_overridable() {
        let s = Scenario::fsync(8, Algorithm::KnownBound { upper_bound: 8 });
        assert_eq!(s.dispatch, DispatchKind::Enum);
        let enum_report = s.clone().run();
        let dyn_report = s.with_dispatch(DispatchKind::Dyn).run();
        assert_eq!(enum_report, dyn_report);
        assert_eq!(DispatchKind::Enum.label(), "enum");
        assert_eq!(DispatchKind::Dyn.label(), "dyn");
    }

    #[test]
    fn labels_mention_the_algorithm_and_adversary() {
        let s = Scenario::fsync(8, Algorithm::LandmarkChirality)
            .with_adversary(AdversaryKind::BlockForever { edge: 2 });
        let label = s.label();
        assert!(label.contains("LandmarkWithChirality"));
        assert!(label.contains("block-e2-forever"));
    }

    #[test]
    fn adversary_and_scheduler_labels_are_unique_enough() {
        let kinds = [
            AdversaryKind::Static,
            AdversaryKind::Random { p: 0.5, seed: 1 },
            AdversaryKind::Sticky { min_hold: 1, max_hold: 4, present: 0.2, seed: 1 },
            AdversaryKind::BlockForever { edge: 0 },
            AdversaryKind::BlockAgent { agent: 0 },
            AdversaryKind::PreventMeeting,
            AdversaryKind::BlockFirstMover,
            AdversaryKind::Confine { lo: 0, hi: 3 },
            AdversaryKind::Alternating { first: 0, second: 1 },
        ];
        let labels: std::collections::HashSet<String> =
            kinds.iter().map(AdversaryKind::label).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
