//! Exhaustive model checking of small scenario cells.
//!
//! The paper's impossibility rows (Tables 1 and 3) are proved by exhibiting an
//! adversary strategy; the sibling [`tables`](crate::tables) module *samples*
//! those strategies as hand-scripted schedules. This module closes the loop
//! for small rings: it explores **every** adversary edge-removal choice at
//! every round by breadth-first expansion over simulation states and returns
//!
//! * [`Verdict::Infeasible`] with a concrete witness [`EdgeSchedule`] that
//!   defeats the protocol (replayable through
//!   [`AdversaryKind::Scripted`](crate::scenario::AdversaryKind)), or
//! * [`Verdict::Feasible`] with the *worst* schedule the search could find —
//!   the discovered lower-bound schedule the `lower_bounds` rows consume.
//!
//! # Search structure
//!
//! One recycled [`Simulation`] serves the whole search: each expansion
//! restores a parent [`SimCheckpoint`], forces one of the `n + 1` admissible
//! edge choices (remove edge `e`, or remove nothing) with
//! [`Simulation::step_with_edge`] and classifies the successor. Successors are
//! deduplicated **per level** on the canonicalised configuration key of
//! [`SimCheckpoint::canonical_key`] (lexicographic minimum over the ring's
//! rotation/reflection automorphisms), which quotients away the agents'
//! anonymity. Keys are only compared within a level because the FSYNC round
//! hint makes configurations at different depths genuinely different states.
//!
//! Witness schedules are reconstructed from a parent-pointer arena: the
//! frontier holds heavy checkpoints, interior nodes only `(parent, choice)`
//! links.
//!
//! # Depth bounds
//!
//! The depth bound of each packaged cell is derived from the paper's round
//! bounds (e.g. the `3N − 6` termination bound of Theorem 3 for the deceived
//! `KnownBound` strategy of Theorems 1/2); for pure survival rows (Theorems 9,
//! 10, 11) the bound is a multiple of `n` matching the scripted rows of
//! [`tables::table3`](crate::tables::table3). A liveness objective that is
//! still undecided at the bound is reported `Infeasible` (the adversary
//! exhibited a play surviving the whole horizon); an undecided safety
//! objective is reported `Feasible` (no play violated it within the horizon).

use crate::batch::{parse_thread_count, BatchRunner};
use crate::figures;
use crate::report::RowResult;
use crate::scenario::{AdversaryKind, Scenario, SchedulerKind};
use dynring_core::Algorithm;
use dynring_engine::{KeyScratch, RunReport, SimCheckpoint, Simulation, StopCondition};
use dynring_graph::{EdgeId, EdgeSchedule, Handedness, RingTopology};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads of the exhaustive search, from `DYNRING_MC_THREADS`.
///
/// Unset means sequential (`1` — the reference path every equivalence test
/// pins). Set, the value must parse as a positive integer exactly like
/// `DYNRING_THREADS` (see [`parse_thread_count`]); anything else hard-fails
/// rather than silently running at an unintended width.
///
/// # Panics
///
/// Panics on a malformed or non-unicode value.
#[must_use]
pub fn mc_threads_from_env() -> usize {
    match std::env::var("DYNRING_MC_THREADS") {
        Ok(raw) => match parse_thread_count(&raw) {
            Ok(threads) => threads,
            Err(message) => panic!("invalid DYNRING_MC_THREADS: {message}"),
        },
        Err(std::env::VarError::NotPresent) => 1,
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("invalid DYNRING_MC_THREADS: value is not valid unicode")
        }
    }
}

/// Strict parser for `DYNRING_MC_MAX_N`: the largest ring size the full
/// `infeasibility_cells` matrix is exhaustively proven at in the test suite.
///
/// # Errors
///
/// Returns a human-readable message when `raw` is not a positive integer or
/// is below the smallest exhaustively checkable ring (`n = 4`).
pub fn parse_max_check_n(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(n) if n >= 4 => Ok(n),
        Ok(n) => Err(format!(
            "`{n}` is below the smallest exhaustively checkable ring (n = 4)"
        )),
        Err(_) => Err(format!(
            "`{trimmed}` is not a positive integer ring size (examples: 8, 10)"
        )),
    }
}

/// The largest ring size the exhaustive test matrix covers: the
/// `DYNRING_MC_MAX_N` override when set (strictly parsed via
/// [`parse_max_check_n`]), else `default`.
///
/// # Panics
///
/// Panics on a malformed or non-unicode value.
#[must_use]
pub fn max_check_n(default: usize) -> usize {
    match std::env::var("DYNRING_MC_MAX_N") {
        Ok(raw) => match parse_max_check_n(&raw) {
            Ok(n) => n,
            Err(message) => panic!("invalid DYNRING_MC_MAX_N: {message}"),
        },
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("invalid DYNRING_MC_MAX_N: value is not valid unicode")
        }
    }
}

/// 64-bit FNV-1a digest of a canonical key.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Per-level dedup set over canonical keys: an open-addressed table of
/// 64-bit FNV-1a digests, with the full keys retained in a side arena so
/// that digest matches fall back to exact byte comparison. Hash collisions
/// therefore cost one memcmp but can never merge distinct configurations —
/// the proofs stay proofs.
///
/// `clear` keeps every buffer's capacity, so a recycled table performs no
/// steady-state allocations once the hot level has been seen.
#[derive(Debug, Default)]
struct KeyTable {
    /// Open-addressed probe table storing `entry index + 1` (`0` = empty).
    /// Length is a power of two.
    slots: Vec<u32>,
    /// Digest of each inserted key, in insertion order.
    digests: Vec<u64>,
    /// End offset of each inserted key within `arena` (entry `i` spans
    /// `ends[i - 1]..ends[i]`).
    ends: Vec<u32>,
    /// Concatenated full keys, for the exact-comparison fallback.
    arena: Vec<u8>,
}

impl KeyTable {
    const INITIAL_SLOTS: usize = 1024;

    fn clear(&mut self) {
        self.slots.iter_mut().for_each(|slot| *slot = 0);
        self.digests.clear();
        self.ends.clear();
        self.arena.clear();
    }

    fn len(&self) -> usize {
        self.digests.len()
    }

    fn entry_key(&self, entry: usize) -> &[u8] {
        let start = if entry == 0 { 0 } else { self.ends[entry - 1] as usize };
        &self.arena[start..self.ends[entry] as usize]
    }

    /// Inserts `key`, returning whether it was new (`false` = already
    /// present, byte-compared exactly).
    fn insert(&mut self, key: &[u8]) -> bool {
        if self.slots.is_empty() {
            self.slots.resize(Self::INITIAL_SLOTS, 0);
        }
        // Grow at 7/8 load, before probing, so the probe below always finds
        // an empty slot.
        if (self.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let digest = fnv1a(key);
        let mask = self.slots.len() - 1;
        let mut pos = (digest as usize) & mask;
        loop {
            match self.slots[pos] {
                0 => {
                    let entry = self.len();
                    self.slots[pos] =
                        u32::try_from(entry + 1).expect("key table exceeds u32 entries");
                    self.digests.push(digest);
                    self.arena.extend_from_slice(key);
                    self.ends
                        .push(u32::try_from(self.arena.len()).expect("key arena exceeds u32"));
                    return true;
                }
                slot => {
                    let entry = slot as usize - 1;
                    if self.digests[entry] == digest && self.entry_key(entry) == key {
                        return false;
                    }
                    pos = (pos + 1) & mask;
                }
            }
        }
    }

    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(Self::INITIAL_SLOTS);
        self.slots.clear();
        self.slots.resize(new_len, 0);
        let mask = new_len - 1;
        for (entry, &digest) in self.digests.iter().enumerate() {
            let mut pos = (digest as usize) & mask;
            while self.slots[pos] != 0 {
                pos = (pos + 1) & mask;
            }
            self.slots[pos] = u32::try_from(entry + 1).expect("key table exceeds u32 entries");
        }
    }
}

/// Sentinel parent of the BFS root in the packed link arena.
const ROOT_LINK: u32 = u32::MAX;

/// One node of the parent-pointer witness arena: a `u32` parent index with
/// the forced-edge choice packed alongside (`choice == ring size` encodes
/// "remove nothing"). Eight bytes per expanded decision instead of the 24 of
/// the old `(usize, Option<EdgeId>)` pairs.
#[derive(Debug, Clone, Copy)]
struct Link {
    parent: u32,
    choice: u16,
}

/// Reusable buffers of one exhaustive search: the link arena, the hashed
/// dedup set, both frontiers, a checkpoint pool and the canonicalisation
/// scratch. Holding a `SearchContext` across [`ModelCheck::run_in`] calls
/// makes the sequential search allocation-free in the steady state (the
/// bench's counting allocator pins this).
#[derive(Debug)]
pub struct SearchContext {
    threads: usize,
    links: Vec<Link>,
    seen: KeyTable,
    frontier: Vec<(SimCheckpoint, u32)>,
    next: Vec<(SimCheckpoint, u32)>,
    key: Vec<u8>,
    key_scratch: KeyScratch,
    scratch: SimCheckpoint,
    pool: Vec<SimCheckpoint>,
}

impl SearchContext {
    /// A context whose searches expand levels on `threads` workers
    /// (`1` = the sequential reference path).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        SearchContext {
            threads: threads.max(1),
            links: Vec::new(),
            seen: KeyTable::default(),
            frontier: Vec::new(),
            next: Vec::new(),
            key: Vec::new(),
            key_scratch: KeyScratch::new(),
            scratch: SimCheckpoint::default(),
            pool: Vec::new(),
        }
    }

    /// A context at the `DYNRING_MC_THREADS` width (default sequential).
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(mc_threads_from_env())
    }

    /// The configured worker width.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns leftover checkpoints of a previous run to the pool.
    fn recycle(&mut self) {
        self.pool.extend(self.frontier.drain(..).map(|(cp, _)| cp));
        self.pool.extend(self.next.drain(..).map(|(cp, _)| cp));
        self.links.clear();
    }
}

/// What the protocol is trying to achieve (liveness) or preserve (safety).
///
/// The model checker plays the protocol against an omniscient adversary: the
/// protocol **wins** a play when the objective is achieved, the **adversary
/// wins** when it becomes unachievable (liveness) or is violated (safety).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Liveness: every node is eventually visited.
    Explore,
    /// Liveness: the ring is explored *and* at least one agent explicitly
    /// terminates.
    ExploreAndPartialTermination,
    /// Liveness: the ring is explored *and* every agent explicitly
    /// terminates.
    ExploreAndFullTermination,
    /// Liveness: some agent completes at least one traversal (Theorem 9's
    /// "no protocol ever moves" NS impossibility).
    AnyMove,
    /// Safety: no agent terminates before the ring is explored (violated by
    /// the deceived strategies of Theorems 1, 2 and 19).
    NoPrematureTermination,
    /// Safety: no agent ever terminates (the knowledge-free `Unconscious`
    /// strategy of Theorem 5 must not terminate).
    NoTermination,
}

/// How a single reached configuration scores against an [`Objective`].
enum Outcome {
    ProtocolWins,
    AdversaryWins,
    Undecided,
}

impl Objective {
    /// Whether an undecided play at the depth bound counts for the adversary
    /// (liveness) or the protocol (safety).
    #[must_use]
    pub fn is_safety(self) -> bool {
        matches!(self, Objective::NoPrematureTermination | Objective::NoTermination)
    }

    /// Short human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Objective::Explore => "explore",
            Objective::ExploreAndPartialTermination => "explore+partial-termination",
            Objective::ExploreAndFullTermination => "explore+full-termination",
            Objective::AnyMove => "any-move",
            Objective::NoPrematureTermination => "no-premature-termination",
            Objective::NoTermination => "no-termination",
        }
    }

    /// Scores a live configuration. `Undecided` implies at least one agent is
    /// still alive, so every undecided configuration can be expanded further.
    fn classify(self, sim: &Simulation) -> Outcome {
        let explored = sim.explored();
        let alive = sim.alive_count();
        let partial = alive < sim.agent_count();
        match self {
            Objective::Explore => {
                if explored {
                    Outcome::ProtocolWins
                } else if alive == 0 {
                    Outcome::AdversaryWins
                } else {
                    Outcome::Undecided
                }
            }
            Objective::ExploreAndPartialTermination => {
                if explored && partial {
                    Outcome::ProtocolWins
                } else if alive == 0 {
                    Outcome::AdversaryWins
                } else {
                    Outcome::Undecided
                }
            }
            Objective::ExploreAndFullTermination => {
                if alive > 0 {
                    Outcome::Undecided
                } else if explored {
                    Outcome::ProtocolWins
                } else {
                    Outcome::AdversaryWins
                }
            }
            Objective::AnyMove => {
                if sim.total_moves() > 0 {
                    Outcome::ProtocolWins
                } else if alive == 0 {
                    Outcome::AdversaryWins
                } else {
                    Outcome::Undecided
                }
            }
            Objective::NoPrematureTermination => {
                if partial && !explored {
                    Outcome::AdversaryWins
                } else if explored {
                    Outcome::ProtocolWins
                } else {
                    Outcome::Undecided
                }
            }
            Objective::NoTermination => {
                if partial {
                    Outcome::AdversaryWins
                } else {
                    Outcome::Undecided
                }
            }
        }
    }

    /// Whether a replayed [`RunReport`] exhibits the adversary's win — the
    /// predicate a discovered witness schedule must reproduce when replayed
    /// through [`AdversaryKind::Scripted`](crate::scenario::AdversaryKind).
    #[must_use]
    pub fn defeated_in(self, report: &RunReport) -> bool {
        let partial = report.termination_rounds.iter().flatten().count() > 0;
        match self {
            Objective::Explore => !report.explored(),
            Objective::ExploreAndPartialTermination => !(report.explored() && partial),
            Objective::ExploreAndFullTermination => {
                !(report.explored() && report.all_terminated)
            }
            Objective::AnyMove => report.total_moves == 0,
            Objective::NoPrematureTermination => partial && !report.explored(),
            Objective::NoTermination => partial,
        }
    }
}

/// Search statistics of one [`ModelCheck::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Successor configurations generated (restore + forced step).
    pub expanded: u64,
    /// Distinct (canonical) undecided configurations kept across all levels.
    pub visited: u64,
    /// Largest frontier encountered.
    pub peak_frontier: usize,
    /// Deepest level fully expanded.
    pub depth_reached: u64,
}

/// Proof object of a [`Verdict::Feasible`]: the objective was achieved on
/// **every** play within the depth bound (liveness), or never violated within
/// it (safety).
#[derive(Debug, Clone)]
pub struct FeasibleProof {
    /// The worst schedule the exhaustive search found: the play achieving the
    /// objective *latest* (liveness) or a deepest surviving play (safety).
    /// This is the discovered lower-bound schedule.
    pub worst_schedule: EdgeSchedule,
    /// Round in which the worst play was decided (or reached the bound).
    pub worst_round: u64,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Proof object of a [`Verdict::Infeasible`]: a concrete adversary win.
#[derive(Debug, Clone)]
pub struct InfeasibleProof {
    /// The witness schedule: replaying it through a scripted adversary
    /// reproduces the non-achievement outcome (see [`Objective::defeated_in`]).
    pub witness: EdgeSchedule,
    /// Round of the defeat: the earliest violation (safety / dead liveness
    /// play), or the depth bound a play survived without achieving a liveness
    /// objective.
    pub defeat_round: u64,
    /// The exhaustively explored depth.
    pub proof_depth: u64,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Result of an exhaustive search over all adversary plays of one cell.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The protocol meets the objective against **every** adversary play
    /// within the depth bound.
    Feasible(FeasibleProof),
    /// Some adversary play defeats the objective; the proof carries a
    /// replayable witness schedule.
    Infeasible(InfeasibleProof),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Feasible`].
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        matches!(self, Verdict::Feasible(_))
    }

    /// The feasible proof, if any.
    #[must_use]
    pub fn feasible(&self) -> Option<&FeasibleProof> {
        match self {
            Verdict::Feasible(p) => Some(p),
            Verdict::Infeasible(_) => None,
        }
    }

    /// The infeasible proof, if any.
    #[must_use]
    pub fn infeasible(&self) -> Option<&InfeasibleProof> {
        match self {
            Verdict::Infeasible(p) => Some(p),
            Verdict::Feasible(_) => None,
        }
    }

    /// The search statistics of either proof.
    #[must_use]
    pub fn stats(&self) -> &SearchStats {
        match self {
            Verdict::Feasible(p) => &p.stats,
            Verdict::Infeasible(p) => &p.stats,
        }
    }
}

/// An exhaustive bounded search over every adversary play of one scenario
/// cell.
///
/// The scenario's own `adversary` field is ignored (the search *is* the
/// adversary); its scheduler must be checkpointable (see
/// [`Simulation::supports_checkpoint`] — deterministic schedulers are, the
/// seeded `Random` scheduler is not).
#[derive(Debug, Clone)]
pub struct ModelCheck {
    /// The cell: ring, agents, knowledge, synchrony, scheduler.
    pub scenario: Scenario,
    /// What the protocol must achieve or preserve.
    pub objective: Objective,
    /// Depth bound (rounds) of the exhaustive expansion.
    pub depth: u64,
    /// Hard cap on distinct kept configurations; exceeding it panics rather
    /// than silently truncating the proof.
    pub max_states: u64,
    /// Dedup on the legacy `Debug`-string canonical key instead of the packed
    /// binary key. Both encodings induce exactly the same equivalence classes
    /// (the equivalence proptests pin this), so verdicts are identical; this
    /// switch exists so the `model_check_throughput` bench can measure the
    /// pre-packing baseline in-tree.
    pub use_debug_key: bool,
}

/// Frontier size below which a parallel context still expands sequentially —
/// thread fan-out costs more than it saves on tiny levels, and the sequential
/// path is the allocation-free one.
const PARALLEL_FRONTIER_MIN: usize = 32;

impl ModelCheck {
    /// Packages a cell for exhaustive checking.
    ///
    /// The default `max_states` runaway guard scales with the ring: 2 M
    /// distinct configurations for `n ≤ 9`, 10 M for larger rings (the
    /// widest packaged cell legitimately keeps ~2.6 M distinct states at
    /// `n = 10`, which would trip the small-ring guard).
    #[must_use]
    pub fn new(scenario: Scenario, objective: Objective, depth: u64) -> Self {
        let max_states = if scenario.ring_size >= 10 { 10_000_000 } else { 2_000_000 };
        ModelCheck { scenario, objective, depth, max_states, use_debug_key: false }
    }

    /// The branchable simulation the search recycles: the cell's compiled
    /// spec with its own (deterministic) scheduler, a benign edge policy (the
    /// search forces edges explicitly) and tracing off.
    ///
    /// Public so tests can drive forced executions of the same cell.
    #[must_use]
    pub fn branchable_simulation(&self) -> Simulation {
        let mut scenario = self.scenario.clone();
        scenario.record_trace = false;
        let spec = scenario.compile();
        spec.instantiate(scenario.scheduler.instantiate(), AdversaryKind::Static.instantiate())
    }

    /// Replays a discovered schedule through the ordinary scenario path with
    /// a scripted adversary, running exactly the schedule's horizon.
    #[must_use]
    pub fn replay(&self, schedule: &EdgeSchedule) -> RunReport {
        let mut scenario = self.scenario.clone();
        scenario.record_trace = false;
        scenario.adversary = AdversaryKind::scripted(schedule.clone());
        scenario.stop = StopCondition::RoundBudget;
        scenario.max_rounds = schedule.horizon().max(1);
        scenario.run()
    }

    /// Runs the exhaustive search at the `DYNRING_MC_THREADS` width with a
    /// fresh [`SearchContext`].
    ///
    /// # Panics
    ///
    /// Panics if the cell's scheduler is not checkpointable (seeded `Random`)
    /// or if the search exceeds [`ModelCheck::max_states`] distinct
    /// configurations.
    #[must_use]
    pub fn run(&self) -> Verdict {
        self.run_in(&mut SearchContext::from_env())
    }

    /// Runs the exhaustive search on exactly `threads` workers (see
    /// [`ModelCheck::run_in`]; `1` is the sequential reference path).
    ///
    /// # Panics
    ///
    /// As [`ModelCheck::run`].
    #[must_use]
    pub fn run_with_threads(&self, threads: usize) -> Verdict {
        self.run_in(&mut SearchContext::new(threads))
    }

    /// Runs the exhaustive search inside `ctx`, recycling its buffers.
    ///
    /// The parallel path (`ctx.threads() > 1`) shards each BFS level into
    /// contiguous chunks, expands them on a [`BatchRunner`] pool, and merges
    /// the per-chunk records back **in sequential order** — the returned
    /// verdict, its witness schedule and its [`SearchStats`] are byte-for-byte
    /// identical to the sequential search (the parallel-equivalence tests pin
    /// this over every packaged cell).
    ///
    /// # Panics
    ///
    /// As [`ModelCheck::run`].
    #[must_use]
    pub fn run_in(&self, ctx: &mut SearchContext) -> Verdict {
        let mut sim = self.branchable_simulation();
        assert!(
            sim.supports_checkpoint(),
            "scheduler {:?} is not checkpointable and cannot be model checked",
            self.scenario.scheduler
        );
        let ring = self.scenario.ring();
        let n = ring.size();
        assert!(n < usize::from(u16::MAX), "ring size exceeds the packed link arena's choice width");
        let mut stats = SearchStats::default();
        ctx.recycle();

        // Latest protocol win (round, link) — the worst feasible play.
        let mut best_win: Option<(u64, u32)> = None;

        if let Outcome::AdversaryWins | Outcome::ProtocolWins = self.objective.classify(&sim) {
            // Decided before the adversary ever moves (e.g. dense starts
            // covering the whole ring): the empty schedule is the proof.
            let empty = EdgeSchedule::always_present(&ring);
            return match self.objective.classify(&sim) {
                Outcome::ProtocolWins => Verdict::Feasible(FeasibleProof {
                    worst_schedule: empty,
                    worst_round: 0,
                    stats,
                }),
                _ => Verdict::Infeasible(InfeasibleProof {
                    witness: empty,
                    defeat_round: 0,
                    proof_depth: 0,
                    stats,
                }),
            };
        }

        let mut root = ctx.pool.pop().unwrap_or_default();
        sim.checkpoint_into(&mut root);
        ctx.frontier.push((root, ROOT_LINK));

        for _ in 0..self.depth {
            if ctx.frontier.is_empty() {
                break;
            }
            stats.peak_frontier = stats.peak_frontier.max(ctx.frontier.len());
            ctx.seen.clear();
            let parallel = ctx.threads > 1
                && ctx.frontier.len() >= (2 * ctx.threads).max(PARALLEL_FRONTIER_MIN);
            let verdict = if parallel {
                self.expand_level_parallel(ctx, &ring, n, &mut stats, &mut best_win)
            } else {
                self.expand_level_sequential(ctx, &mut sim, &ring, n, &mut stats, &mut best_win)
            };
            if let Some(verdict) = verdict {
                return verdict;
            }
            std::mem::swap(&mut ctx.frontier, &mut ctx.next);
            stats.depth_reached += 1;
        }

        if self.objective.is_safety() || ctx.frontier.is_empty() {
            // Safety: no play violated the objective within the bound.
            // Liveness with an empty frontier: every play achieved it.
            let (worst_round, link) = match (&*ctx.frontier, best_win) {
                // A surviving safety play is "worse" than any decided one.
                ([(cp, parent), ..], _) => (cp.round(), *parent),
                ([], Some((round, link))) => (round, link),
                ([], None) => {
                    // Decided-at-root cells returned above; a zero-depth
                    // search proves nothing but is vacuously feasible.
                    return Verdict::Feasible(FeasibleProof {
                        worst_schedule: EdgeSchedule::always_present(&ring),
                        worst_round: 0,
                        stats,
                    });
                }
            };
            let worst_schedule = schedule_from(&ctx.links, link, &ring);
            Verdict::Feasible(FeasibleProof { worst_schedule, worst_round, stats })
        } else {
            // Liveness undecided at the bound: the adversary exhibited a play
            // surviving the whole horizon without the objective.
            let (cp, parent) = &ctx.frontier[0];
            let witness = schedule_from(&ctx.links, *parent, &ring);
            Verdict::Infeasible(InfeasibleProof {
                witness,
                defeat_round: cp.round(),
                proof_depth: stats.depth_reached,
                stats,
            })
        }
    }

    /// Expands one BFS level in place on the caller's thread: the reference
    /// path, allocation-free in the steady state (every buffer it touches is
    /// recycled through `ctx`).
    fn expand_level_sequential(
        &self,
        ctx: &mut SearchContext,
        sim: &mut Simulation,
        ring: &RingTopology,
        n: usize,
        stats: &mut SearchStats,
        best_win: &mut Option<(u64, u32)>,
    ) -> Option<Verdict> {
        for (cp, parent) in ctx.frontier.drain(..) {
            // The n + 1 admissible adversary choices: remove edge e, or
            // remove nothing (encoded as choice index n).
            for choice_index in 0..=n {
                let choice = (choice_index < n).then(|| EdgeId::new(choice_index));
                sim.restore(&cp);
                sim.step_with_edge(choice);
                stats.expanded += 1;
                match self.objective.classify(sim) {
                    Outcome::AdversaryWins => {
                        let link = push_link(&mut ctx.links, parent, choice_index);
                        let witness = schedule_from(&ctx.links, link, ring);
                        stats.depth_reached = sim.round();
                        return Some(Verdict::Infeasible(InfeasibleProof {
                            witness,
                            defeat_round: sim.round(),
                            proof_depth: sim.round(),
                            stats: *stats,
                        }));
                    }
                    Outcome::ProtocolWins => {
                        let link = push_link(&mut ctx.links, parent, choice_index);
                        let round = sim.round();
                        if best_win.is_none_or(|(r, _)| round >= r) {
                            *best_win = Some((round, link));
                        }
                    }
                    Outcome::Undecided => {
                        sim.checkpoint_into(&mut ctx.scratch);
                        if self.use_debug_key {
                            ctx.scratch.canonical_key_debug(ring, &mut ctx.key);
                        } else {
                            ctx.scratch.canonical_key_into(
                                ring,
                                &mut ctx.key_scratch,
                                &mut ctx.key,
                            );
                        }
                        if ctx.seen.insert(&ctx.key) {
                            let link = push_link(&mut ctx.links, parent, choice_index);
                            stats.visited += 1;
                            assert!(
                                stats.visited <= self.max_states,
                                "model check exceeded {} states at depth {} (cell {})",
                                self.max_states,
                                sim.round(),
                                self.scenario.label()
                            );
                            let fresh = ctx.pool.pop().unwrap_or_default();
                            ctx.next.push((std::mem::replace(&mut ctx.scratch, fresh), link));
                        }
                    }
                }
            }
            ctx.pool.push(cp);
        }
        None
    }

    /// Expands one BFS level on the `BatchRunner` pool and merges the chunk
    /// records back in sequential order — see [`ModelCheck::run_in`].
    fn expand_level_parallel(
        &self,
        ctx: &mut SearchContext,
        ring: &RingTopology,
        n: usize,
        stats: &mut SearchStats,
        best_win: &mut Option<(u64, u32)>,
    ) -> Option<Verdict> {
        // Every successor of this level lands in the same round (BFS levels
        // are lockstep in depth), which the max-states panic message reports.
        let level_round = ctx.frontier[0].0.round() + 1;
        let chunk_len = ctx.frontier.len().div_ceil(ctx.threads);
        let chunks: Vec<(usize, &[(SimCheckpoint, u32)])> =
            ctx.frontier.chunks(chunk_len).enumerate().collect();
        // Lowest chunk index that hit an adversary win. The merge below never
        // reads records past that win, so chunks strictly after it may stop
        // expanding early; chunks before it must run to completion because
        // every one of their records is merged.
        let earliest_adv = AtomicUsize::new(usize::MAX);
        let use_debug_key = self.use_debug_key;
        let runner = BatchRunner::new(ctx.threads);
        let mut outs = runner.run_map_with(
            &chunks,
            || {
                (
                    self.branchable_simulation(),
                    SimCheckpoint::default(),
                    KeyScratch::new(),
                    KeyTable::default(),
                    Vec::new(),
                )
            },
            |state, &(chunk_index, items)| {
                let (sim, scratch, key_scratch, local_seen, key) = state;
                local_seen.clear();
                let mut out = ChunkOut::default();
                'items: for (cp, _parent) in items {
                    for choice_index in 0..=n {
                        if earliest_adv.load(Ordering::Relaxed) < chunk_index {
                            break 'items;
                        }
                        let choice = (choice_index < n).then(|| EdgeId::new(choice_index));
                        sim.restore(cp);
                        sim.step_with_edge(choice);
                        match self.objective.classify(sim) {
                            Outcome::AdversaryWins => {
                                out.recs.push(Rec::Adv { round: sim.round() });
                                earliest_adv.fetch_min(chunk_index, Ordering::Relaxed);
                                break 'items;
                            }
                            Outcome::ProtocolWins => {
                                out.recs.push(Rec::Proto { round: sim.round() });
                            }
                            Outcome::Undecided => {
                                sim.checkpoint_into(scratch);
                                if use_debug_key {
                                    scratch.canonical_key_debug(ring, key);
                                } else {
                                    scratch.canonical_key_into(ring, key_scratch, key);
                                }
                                if local_seen.insert(key) {
                                    // Chunk-locally new: ship key + checkpoint.
                                    // If the merge finds it globally old the
                                    // checkpoint is recycled, not kept.
                                    out.keys.extend_from_slice(key);
                                    out.key_ends.push(
                                        u32::try_from(out.keys.len())
                                            .expect("chunk key arena exceeds u32"),
                                    );
                                    out.cps.push(std::mem::take(scratch));
                                    out.recs.push(Rec::New);
                                } else {
                                    // A chunk-local duplicate is necessarily a
                                    // global duplicate: the earlier identical
                                    // key in this same chunk merges first.
                                    out.recs.push(Rec::Dup);
                                }
                            }
                        }
                    }
                }
                out
            },
        );

        // In-order merge: replay every chunk's records exactly as the
        // sequential loop would have visited them.
        let mut result = None;
        'merge: for (chunk_index, out) in outs.iter_mut().enumerate() {
            let chunk_start = chunk_index * chunk_len;
            let mut key_start = 0usize;
            let mut ordinal = 0usize;
            for (i, rec) in out.recs.iter().enumerate() {
                let item = chunk_start + i / (n + 1);
                let choice_index = i % (n + 1);
                let parent = ctx.frontier[item].1;
                stats.expanded += 1;
                match *rec {
                    Rec::Adv { round } => {
                        let link = push_link(&mut ctx.links, parent, choice_index);
                        let witness = schedule_from(&ctx.links, link, ring);
                        stats.depth_reached = round;
                        result = Some(Verdict::Infeasible(InfeasibleProof {
                            witness,
                            defeat_round: round,
                            proof_depth: round,
                            stats: *stats,
                        }));
                        break 'merge;
                    }
                    Rec::Proto { round } => {
                        let link = push_link(&mut ctx.links, parent, choice_index);
                        if best_win.is_none_or(|(r, _)| round >= r) {
                            *best_win = Some((round, link));
                        }
                    }
                    Rec::New => {
                        let end = out.key_ends[ordinal] as usize;
                        let key = &out.keys[key_start..end];
                        let cp = std::mem::take(&mut out.cps[ordinal]);
                        key_start = end;
                        ordinal += 1;
                        if ctx.seen.insert(key) {
                            let link = push_link(&mut ctx.links, parent, choice_index);
                            stats.visited += 1;
                            assert!(
                                stats.visited <= self.max_states,
                                "model check exceeded {} states at depth {} (cell {})",
                                self.max_states,
                                level_round,
                                self.scenario.label()
                            );
                            ctx.next.push((cp, link));
                        } else {
                            ctx.pool.push(cp);
                        }
                    }
                    Rec::Dup => {}
                }
            }
        }
        drop(outs);
        drop(chunks);
        if result.is_none() {
            ctx.pool.extend(ctx.frontier.drain(..).map(|(cp, _)| cp));
        }
        result
    }
}

/// Appends a packed link, returning its index.
fn push_link(links: &mut Vec<Link>, parent: u32, choice_index: usize) -> u32 {
    let id = u32::try_from(links.len()).expect("link arena exceeds u32 entries");
    links.push(Link {
        parent,
        choice: u16::try_from(choice_index).expect("choice exceeds packed width"),
    });
    id
}

/// One expansion outcome recorded by a parallel chunk worker, in the exact
/// (item, choice) order the sequential loop visits.
#[derive(Debug, Clone, Copy)]
enum Rec {
    /// Adversary win at `round`; the worker stops after recording it.
    Adv { round: u64 },
    /// Protocol win at `round`.
    Proto { round: u64 },
    /// Chunk-locally new undecided configuration; its canonical key and
    /// checkpoint ride in the chunk's side arrays.
    New,
    /// Chunk-local (hence global) duplicate; nothing attached.
    Dup,
}

/// Everything one parallel chunk ships back to the in-order merge.
#[derive(Debug, Default)]
struct ChunkOut {
    recs: Vec<Rec>,
    /// Concatenated canonical keys of the `Rec::New` records.
    keys: Vec<u8>,
    /// End offset of each `Rec::New` key within `keys`.
    key_ends: Vec<u32>,
    /// Checkpoints of the `Rec::New` records.
    cps: Vec<SimCheckpoint>,
}

/// Walks the parent-pointer arena back to the root and materialises the
/// per-round forced choices as a replayable schedule.
fn schedule_from(links: &[Link], mut link: u32, ring: &RingTopology) -> EdgeSchedule {
    let n = ring.size();
    let mut choices = Vec::new();
    while link != ROOT_LINK {
        let Link { parent, choice } = links[link as usize];
        let choice = usize::from(choice);
        choices.push((choice < n).then(|| EdgeId::new(choice)));
        link = parent;
    }
    choices.reverse();
    EdgeSchedule::from_missing(ring, choices).expect("forced choices are in range")
}

/// One packaged table cell: a check plus the verdict the paper predicts.
#[derive(Debug, Clone)]
pub struct TableCell {
    /// Row id, e.g. `MC-T1-R1`.
    pub id: String,
    /// The theorem backing the row.
    pub claim: &'static str,
    /// The packaged exhaustive check.
    pub check: ModelCheck,
    /// Whether the paper predicts `Infeasible` (impossibility rows) or
    /// `Feasible` (the no-termination safety row).
    pub expect_infeasible: bool,
}

impl TableCell {
    fn new(
        id: String,
        claim: &'static str,
        check: ModelCheck,
        expect_infeasible: bool,
    ) -> Self {
        TableCell { id, claim, check, expect_infeasible }
    }

    /// Runs the cell and scores it as a report row: `holds` requires the
    /// predicted verdict **and**, for impossibility rows, that the discovered
    /// witness replays through a scripted adversary to the same defeat.
    #[must_use]
    pub fn row(&self) -> RowResult {
        let verdict = self.check.run();
        let stats = *verdict.stats();
        let (holds, observed) = match (&verdict, self.expect_infeasible) {
            (Verdict::Infeasible(proof), true) => {
                let replay = self.check.replay(&proof.witness);
                let confirmed = self.check.objective.defeated_in(&replay);
                (
                    confirmed,
                    format!(
                        "infeasible: defeat at round {} (exhaustive to depth {}, {} states); scripted replay {}",
                        proof.defeat_round,
                        proof.proof_depth,
                        stats.visited,
                        if confirmed { "confirms" } else { "DIVERGES" },
                    ),
                )
            }
            (Verdict::Feasible(proof), false) => (
                true,
                format!(
                    "feasible: worst play decided at round {} (exhaustive to depth {}, {} states)",
                    proof.worst_round, stats.depth_reached, stats.visited
                ),
            ),
            (Verdict::Feasible(proof), true) => (
                false,
                format!(
                    "UNEXPECTEDLY feasible (worst round {}, {} states)",
                    proof.worst_round, stats.visited
                ),
            ),
            (Verdict::Infeasible(proof), false) => (
                false,
                format!(
                    "UNEXPECTEDLY infeasible (defeat at round {}, {} states)",
                    proof.defeat_round, stats.visited
                ),
            ),
        };
        RowResult::new(
            self.id.clone(),
            self.claim,
            self.check.scenario.label(),
            if self.expect_infeasible { "infeasible (exhaustive)" } else { "feasible (exhaustive)" },
            observed,
            holds,
            1,
        )
    }
}

/// The deceived horizon guess the Table 1 witnesses commit to.
const GUESSED_BOUND: usize = 3;

/// Exhaustively checkable Table 1 rows on a ring of `4 ≤ n ≤ 12`.
///
/// Mirrors the scenario parameters of [`tables::table1`](crate::tables::table1)
/// exactly, minus the hand-picked adversaries — the search plays every
/// adversary.
#[must_use]
pub fn table1_cells(n: usize) -> Vec<TableCell> {
    assert!((4..=12).contains(&n), "exhaustive Table 1 cells cover 4 <= n <= 12");
    // The deceived strategy terminates by round 3·GUESSED − 6 + 1 on its
    // guessed ring; the depth adds slack for adversary-delayed defeats.
    let t1_depth = 3 * GUESSED_BOUND as u64 + 4;
    vec![
        TableCell::new(
            format!("MC-T1-R1(n={n})"),
            "Theorem 1",
            ModelCheck::new(
                Scenario::fsync(n, Algorithm::KnownBound { upper_bound: GUESSED_BOUND })
                    .with_starts(vec![0, 1]),
                Objective::NoPrematureTermination,
                t1_depth,
            ),
            true,
        ),
        TableCell::new(
            format!("MC-T1-R2(n={n})"),
            "Theorem 2",
            ModelCheck::new(
                Scenario::fsync(n, Algorithm::KnownBound { upper_bound: GUESSED_BOUND })
                    .with_starts(vec![0, 1, 2])
                    .with_orientations(vec![Handedness::LeftIsCcw; 3]),
                Objective::NoPrematureTermination,
                t1_depth,
            ),
            true,
        ),
        TableCell::new(
            format!("MC-T1-R3(n={n})"),
            "Theorem 2 / Theorem 5 (no termination)",
            // The knowledge-free strategy must never terminate; the frontier
            // of this safety cell never closes, so the horizon is kept just
            // past the deceived strategies' termination rounds.
            ModelCheck::new(
                Scenario::fsync(n, Algorithm::Unconscious),
                Objective::NoTermination,
                n as u64 + 6,
            ),
            false,
        ),
    ]
}

/// Exhaustively checkable Table 3 rows on a ring of `4 ≤ n ≤ 12` (the
/// Theorem 19 row needs `n ≥ 5` and is omitted below that).
///
/// Mirrors the scenario parameters of [`tables::table3`](crate::tables::table3).
#[must_use]
pub fn table3_cells(n: usize) -> Vec<TableCell> {
    assert!((4..=12).contains(&n), "exhaustive Table 3 cells cover 4 <= n <= 12");
    let mut cells = Vec::new();

    // Theorem 9 (NS): under the first-mover scheduler no protocol ever moves;
    // the search proves no adversary-surviving play contains a single move.
    let ns_algorithms = [
        Algorithm::PtBoundChirality { upper_bound: n },
        Algorithm::EtUnconscious,
        Algorithm::PtBoundNoChirality { upper_bound: n },
    ];
    for (i, &algorithm) in ns_algorithms.iter().enumerate() {
        let mut scenario = Scenario::fsync(n, algorithm);
        scenario.synchrony =
            dynring_model::SynchronyModel::Ssync(dynring_model::TransportModel::NoSimultaneity);
        let scenario = scenario.with_scheduler(SchedulerKind::FirstMoverOnly);
        cells.push(TableCell::new(
            format!("MC-T3-R1{}(n={n})", char::from(b'a' + i as u8)),
            "Theorem 9",
            ModelCheck::new(scenario, Objective::AnyMove, 20 * n as u64),
            true,
        ));
    }

    // Theorem 10 (PT, no common chirality): both agents can be kept on the
    // two ports of one missing edge forever.
    let mut scenario = Scenario::ssync(n, Algorithm::PtBoundChirality { upper_bound: n }, 5);
    scenario.orientations = vec![Handedness::LeftIsCw, Handedness::LeftIsCcw];
    scenario.starts = vec![1, 0];
    let scenario = scenario.with_scheduler(SchedulerKind::RoundRobin);
    cells.push(TableCell::new(
        format!("MC-T3-R2(n={n})"),
        "Theorem 10",
        ModelCheck::new(scenario, Objective::Explore, 8 * n as u64),
        true,
    ));

    // Theorem 11 (PT): explicit termination of both agents is impossible.
    let scenario = Scenario::ssync(n, Algorithm::PtBoundChirality { upper_bound: n }, 7)
        .with_scheduler(SchedulerKind::SleepBlocked { hold: 2 });
    cells.push(TableCell::new(
        format!("MC-T3-R3(n={n})"),
        "Theorem 11",
        // Against a benign schedule this cell fully terminates by round ~n
        // (measured: round n at n = 5..8), so surviving n + 4 rounds without
        // full termination is already a genuine impossibility certificate;
        // deeper horizons explode the PT state space.
        ModelCheck::new(scenario, Objective::ExploreAndFullTermination, n as u64 + 4),
        true,
    ));

    // Theorem 19 (ET, only a bound known): acting on a guessed size < n
    // terminates without exploring. Needs guess = n − 2 ≥ 3.
    if n >= 5 {
        let wrong_guess = n - 2;
        let mut scenario =
            Scenario::ssync(n, Algorithm::EtBoundNoChirality { ring_size: wrong_guess }, 3);
        scenario.starts = vec![0, 0, 0];
        let scenario =
            scenario.with_scheduler(SchedulerKind::EtFairRoundRobin { max_lag: 1 });
        cells.push(TableCell::new(
            format!("MC-T3-R4(n={n})"),
            "Theorem 19",
            ModelCheck::new(scenario, Objective::NoPrematureTermination, 12 * n as u64),
            true,
        ));
    }
    cells
}

/// Every exhaustively checkable Table 1 + Table 3 cell for one ring size.
#[must_use]
pub fn infeasibility_cells(n: usize) -> Vec<TableCell> {
    let mut cells = table1_cells(n);
    cells.extend(table3_cells(n));
    cells
}

/// The Theorem 4 lower-bound cell: the correctly-parameterised `KnownBound`
/// strategy *is* feasible, and the search's worst discovered schedule is the
/// true worst case — `lower_bounds` consumes it, with Figure 2's hand script
/// as the regression pin.
#[must_use]
pub fn theorem4_cell(n: usize) -> ModelCheck {
    assert!(n >= 5, "the Theorem 4 cell needs n >= 5");
    let scenario = Scenario::fsync(n, Algorithm::KnownBound { upper_bound: n })
        .with_starts(vec![0, 1])
        .with_orientations(vec![Handedness::LeftIsCcw, Handedness::LeftIsCcw]);
    // Theorem 3 bounds exploration by 3n − 6; one extra round of slack keeps
    // the bound a strict over-approximation.
    ModelCheck::new(scenario, Objective::Explore, 3 * n as u64)
}

/// Runs every packaged cell for each ring size and returns the report rows
/// (the `model_check` example prints these).
#[must_use]
pub fn model_check_rows(sizes: &[usize]) -> Vec<RowResult> {
    let mut rows = Vec::new();
    for &n in sizes {
        for cell in infeasibility_cells(n) {
            rows.push(cell.row());
        }
    }
    rows
}

/// Cross-validation of the hand-scripted Figure 2 schedule against the
/// exhaustive search (satellite of the Theorem 4 rewiring): the discovered
/// worst schedule must be **at least as strong** as the hand script.
///
/// Returns `(discovered_worst_round, scripted_round)`.
///
/// # Panics
///
/// Panics (with a diff of the two schedules) if the hand script outlasts the
/// exhaustively discovered worst case — that would mean the script is not a
/// valid lower-bound pin.
#[must_use]
pub fn cross_validate_figure2(n: usize) -> (u64, u64) {
    let cell = theorem4_cell(n);
    let verdict = cell.run();
    let proof = verdict
        .feasible()
        .unwrap_or_else(|| panic!("Theorem 4 cell must be feasible at n={n}"));
    let scripted = figures::figure2(n);
    let scripted_round = scripted.explored_at.expect("Figure 2 explores");
    assert!(
        proof.worst_round >= scripted_round,
        "hand-scripted Figure 2 schedule is stronger than the exhaustive worst case at n={n}:\n  \
         scripted explores at round {scripted_round}, search worst round {}\n  \
         scripted schedule: {:?}\n  discovered schedule: {:?}",
        proof.worst_round,
        figures::figure2_schedule(&RingTopology::new(n).expect("valid ring")),
        proof.worst_schedule,
    );
    (proof.worst_round, scripted_round)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_check_n_parser_accepts_ring_sizes() {
        assert_eq!(parse_max_check_n("8"), Ok(8));
        assert_eq!(parse_max_check_n(" 10 "), Ok(10));
        assert_eq!(parse_max_check_n("4"), Ok(4));
    }

    #[test]
    fn max_check_n_parser_rejects_garbage() {
        for garbage in ["", "zero", "-3", "8.5", "0x10", "1e3"] {
            let err = parse_max_check_n(garbage).unwrap_err();
            assert!(
                err.contains("not a positive integer ring size"),
                "{garbage:?} should be rejected as non-integer, got: {err}"
            );
        }
        for too_small in ["0", "1", "3"] {
            let err = parse_max_check_n(too_small).unwrap_err();
            assert!(
                err.contains("smallest exhaustively checkable ring"),
                "{too_small:?} should be rejected as too small, got: {err}"
            );
        }
    }

    #[test]
    fn mc_threads_parser_rejects_garbage() {
        // `DYNRING_MC_THREADS` reuses the strict `DYNRING_THREADS` grammar.
        assert!(parse_thread_count("0").is_err());
        assert!(parse_thread_count("four").is_err());
        assert_eq!(parse_thread_count("4"), Ok(4));
    }

    #[test]
    fn key_table_dedups_and_survives_clear() {
        let mut table = KeyTable::default();
        assert!(table.insert(b"alpha"));
        assert!(table.insert(b"beta"));
        assert!(!table.insert(b"alpha"));
        assert_eq!(table.len(), 2);
        table.clear();
        assert_eq!(table.len(), 0);
        assert!(table.insert(b"alpha"), "cleared table must forget entries");
    }

    #[test]
    fn key_table_grows_without_losing_entries() {
        let mut table = KeyTable::default();
        // Insert enough distinct keys to force several grows past the 7/8
        // load factor, then verify every key is still found (byte-exactly).
        for i in 0u32..10_000 {
            assert!(table.insert(&i.to_le_bytes()), "key {i} should be new");
        }
        for i in 0u32..10_000 {
            assert!(!table.insert(&i.to_le_bytes()), "key {i} should be found");
        }
        assert_eq!(table.len(), 10_000);
    }

    #[test]
    fn key_table_distinguishes_equal_digest_prefixes() {
        // Keys sharing a long common prefix exercise the exact byte-compare
        // fallback path (and `entry_key`'s slicing of a shared arena).
        let mut table = KeyTable::default();
        assert!(table.insert(b"prefix-0"));
        assert!(table.insert(b"prefix-1"));
        assert!(table.insert(b"prefix"));
        assert!(!table.insert(b"prefix-0"));
        assert!(!table.insert(b"prefix"));
        assert_eq!(table.len(), 3);
    }
}
