//! Exhaustive model checking of small scenario cells.
//!
//! The paper's impossibility rows (Tables 1 and 3) are proved by exhibiting an
//! adversary strategy; the sibling [`tables`](crate::tables) module *samples*
//! those strategies as hand-scripted schedules. This module closes the loop
//! for small rings: it explores **every** adversary edge-removal choice at
//! every round by breadth-first expansion over simulation states and returns
//!
//! * [`Verdict::Infeasible`] with a concrete witness [`EdgeSchedule`] that
//!   defeats the protocol (replayable through
//!   [`AdversaryKind::Scripted`](crate::scenario::AdversaryKind)), or
//! * [`Verdict::Feasible`] with the *worst* schedule the search could find —
//!   the discovered lower-bound schedule the `lower_bounds` rows consume.
//!
//! # Search structure
//!
//! One recycled [`Simulation`] serves the whole search: each expansion
//! restores a parent [`SimCheckpoint`], forces one of the `n + 1` admissible
//! edge choices (remove edge `e`, or remove nothing) with
//! [`Simulation::step_with_edge`] and classifies the successor. Successors are
//! deduplicated **per level** on the canonicalised configuration key of
//! [`SimCheckpoint::canonical_key`] (lexicographic minimum over the ring's
//! rotation/reflection automorphisms), which quotients away the agents'
//! anonymity. Keys are only compared within a level because the FSYNC round
//! hint makes configurations at different depths genuinely different states.
//!
//! Witness schedules are reconstructed from a parent-pointer arena: the
//! frontier holds heavy checkpoints, interior nodes only `(parent, choice)`
//! links.
//!
//! # Depth bounds
//!
//! The depth bound of each packaged cell is derived from the paper's round
//! bounds (e.g. the `3N − 6` termination bound of Theorem 3 for the deceived
//! `KnownBound` strategy of Theorems 1/2); for pure survival rows (Theorems 9,
//! 10, 11) the bound is a multiple of `n` matching the scripted rows of
//! [`tables::table3`](crate::tables::table3). A liveness objective that is
//! still undecided at the bound is reported `Infeasible` (the adversary
//! exhibited a play surviving the whole horizon); an undecided safety
//! objective is reported `Feasible` (no play violated it within the horizon).

use crate::figures;
use crate::report::RowResult;
use crate::scenario::{AdversaryKind, Scenario, SchedulerKind};
use dynring_core::Algorithm;
use dynring_engine::{RunReport, SimCheckpoint, Simulation, StopCondition};
use dynring_graph::{EdgeId, EdgeSchedule, Handedness, RingTopology};
use std::collections::HashSet;

/// What the protocol is trying to achieve (liveness) or preserve (safety).
///
/// The model checker plays the protocol against an omniscient adversary: the
/// protocol **wins** a play when the objective is achieved, the **adversary
/// wins** when it becomes unachievable (liveness) or is violated (safety).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Liveness: every node is eventually visited.
    Explore,
    /// Liveness: the ring is explored *and* at least one agent explicitly
    /// terminates.
    ExploreAndPartialTermination,
    /// Liveness: the ring is explored *and* every agent explicitly
    /// terminates.
    ExploreAndFullTermination,
    /// Liveness: some agent completes at least one traversal (Theorem 9's
    /// "no protocol ever moves" NS impossibility).
    AnyMove,
    /// Safety: no agent terminates before the ring is explored (violated by
    /// the deceived strategies of Theorems 1, 2 and 19).
    NoPrematureTermination,
    /// Safety: no agent ever terminates (the knowledge-free `Unconscious`
    /// strategy of Theorem 5 must not terminate).
    NoTermination,
}

/// How a single reached configuration scores against an [`Objective`].
enum Outcome {
    ProtocolWins,
    AdversaryWins,
    Undecided,
}

impl Objective {
    /// Whether an undecided play at the depth bound counts for the adversary
    /// (liveness) or the protocol (safety).
    #[must_use]
    pub fn is_safety(self) -> bool {
        matches!(self, Objective::NoPrematureTermination | Objective::NoTermination)
    }

    /// Short human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Objective::Explore => "explore",
            Objective::ExploreAndPartialTermination => "explore+partial-termination",
            Objective::ExploreAndFullTermination => "explore+full-termination",
            Objective::AnyMove => "any-move",
            Objective::NoPrematureTermination => "no-premature-termination",
            Objective::NoTermination => "no-termination",
        }
    }

    /// Scores a live configuration. `Undecided` implies at least one agent is
    /// still alive, so every undecided configuration can be expanded further.
    fn classify(self, sim: &Simulation) -> Outcome {
        let explored = sim.explored();
        let alive = sim.alive_count();
        let partial = alive < sim.agent_count();
        match self {
            Objective::Explore => {
                if explored {
                    Outcome::ProtocolWins
                } else if alive == 0 {
                    Outcome::AdversaryWins
                } else {
                    Outcome::Undecided
                }
            }
            Objective::ExploreAndPartialTermination => {
                if explored && partial {
                    Outcome::ProtocolWins
                } else if alive == 0 {
                    Outcome::AdversaryWins
                } else {
                    Outcome::Undecided
                }
            }
            Objective::ExploreAndFullTermination => {
                if alive > 0 {
                    Outcome::Undecided
                } else if explored {
                    Outcome::ProtocolWins
                } else {
                    Outcome::AdversaryWins
                }
            }
            Objective::AnyMove => {
                if sim.total_moves() > 0 {
                    Outcome::ProtocolWins
                } else if alive == 0 {
                    Outcome::AdversaryWins
                } else {
                    Outcome::Undecided
                }
            }
            Objective::NoPrematureTermination => {
                if partial && !explored {
                    Outcome::AdversaryWins
                } else if explored {
                    Outcome::ProtocolWins
                } else {
                    Outcome::Undecided
                }
            }
            Objective::NoTermination => {
                if partial {
                    Outcome::AdversaryWins
                } else {
                    Outcome::Undecided
                }
            }
        }
    }

    /// Whether a replayed [`RunReport`] exhibits the adversary's win — the
    /// predicate a discovered witness schedule must reproduce when replayed
    /// through [`AdversaryKind::Scripted`](crate::scenario::AdversaryKind).
    #[must_use]
    pub fn defeated_in(self, report: &RunReport) -> bool {
        let partial = report.termination_rounds.iter().flatten().count() > 0;
        match self {
            Objective::Explore => !report.explored(),
            Objective::ExploreAndPartialTermination => !(report.explored() && partial),
            Objective::ExploreAndFullTermination => {
                !(report.explored() && report.all_terminated)
            }
            Objective::AnyMove => report.total_moves == 0,
            Objective::NoPrematureTermination => partial && !report.explored(),
            Objective::NoTermination => partial,
        }
    }
}

/// Search statistics of one [`ModelCheck::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Successor configurations generated (restore + forced step).
    pub expanded: u64,
    /// Distinct (canonical) undecided configurations kept across all levels.
    pub visited: u64,
    /// Largest frontier encountered.
    pub peak_frontier: usize,
    /// Deepest level fully expanded.
    pub depth_reached: u64,
}

/// Proof object of a [`Verdict::Feasible`]: the objective was achieved on
/// **every** play within the depth bound (liveness), or never violated within
/// it (safety).
#[derive(Debug, Clone)]
pub struct FeasibleProof {
    /// The worst schedule the exhaustive search found: the play achieving the
    /// objective *latest* (liveness) or a deepest surviving play (safety).
    /// This is the discovered lower-bound schedule.
    pub worst_schedule: EdgeSchedule,
    /// Round in which the worst play was decided (or reached the bound).
    pub worst_round: u64,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Proof object of a [`Verdict::Infeasible`]: a concrete adversary win.
#[derive(Debug, Clone)]
pub struct InfeasibleProof {
    /// The witness schedule: replaying it through a scripted adversary
    /// reproduces the non-achievement outcome (see [`Objective::defeated_in`]).
    pub witness: EdgeSchedule,
    /// Round of the defeat: the earliest violation (safety / dead liveness
    /// play), or the depth bound a play survived without achieving a liveness
    /// objective.
    pub defeat_round: u64,
    /// The exhaustively explored depth.
    pub proof_depth: u64,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Result of an exhaustive search over all adversary plays of one cell.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The protocol meets the objective against **every** adversary play
    /// within the depth bound.
    Feasible(FeasibleProof),
    /// Some adversary play defeats the objective; the proof carries a
    /// replayable witness schedule.
    Infeasible(InfeasibleProof),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Feasible`].
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        matches!(self, Verdict::Feasible(_))
    }

    /// The feasible proof, if any.
    #[must_use]
    pub fn feasible(&self) -> Option<&FeasibleProof> {
        match self {
            Verdict::Feasible(p) => Some(p),
            Verdict::Infeasible(_) => None,
        }
    }

    /// The infeasible proof, if any.
    #[must_use]
    pub fn infeasible(&self) -> Option<&InfeasibleProof> {
        match self {
            Verdict::Infeasible(p) => Some(p),
            Verdict::Feasible(_) => None,
        }
    }

    /// The search statistics of either proof.
    #[must_use]
    pub fn stats(&self) -> &SearchStats {
        match self {
            Verdict::Feasible(p) => &p.stats,
            Verdict::Infeasible(p) => &p.stats,
        }
    }
}

/// An exhaustive bounded search over every adversary play of one scenario
/// cell.
///
/// The scenario's own `adversary` field is ignored (the search *is* the
/// adversary); its scheduler must be checkpointable (see
/// [`Simulation::supports_checkpoint`] — deterministic schedulers are, the
/// seeded `Random` scheduler is not).
#[derive(Debug, Clone)]
pub struct ModelCheck {
    /// The cell: ring, agents, knowledge, synchrony, scheduler.
    pub scenario: Scenario,
    /// What the protocol must achieve or preserve.
    pub objective: Objective,
    /// Depth bound (rounds) of the exhaustive expansion.
    pub depth: u64,
    /// Hard cap on distinct kept configurations; exceeding it panics rather
    /// than silently truncating the proof.
    pub max_states: u64,
}

/// Sentinel parent index of the BFS root.
const ROOT: usize = usize::MAX;

impl ModelCheck {
    /// Packages a cell for exhaustive checking (default `max_states` 2 M).
    #[must_use]
    pub fn new(scenario: Scenario, objective: Objective, depth: u64) -> Self {
        ModelCheck { scenario, objective, depth, max_states: 2_000_000 }
    }

    /// The branchable simulation the search recycles: the cell's compiled
    /// spec with its own (deterministic) scheduler, a benign edge policy (the
    /// search forces edges explicitly) and tracing off.
    ///
    /// Public so tests can drive forced executions of the same cell.
    #[must_use]
    pub fn branchable_simulation(&self) -> Simulation {
        let mut scenario = self.scenario.clone();
        scenario.record_trace = false;
        let spec = scenario.compile();
        spec.instantiate(scenario.scheduler.instantiate(), AdversaryKind::Static.instantiate())
    }

    /// Replays a discovered schedule through the ordinary scenario path with
    /// a scripted adversary, running exactly the schedule's horizon.
    #[must_use]
    pub fn replay(&self, schedule: &EdgeSchedule) -> RunReport {
        let mut scenario = self.scenario.clone();
        scenario.record_trace = false;
        scenario.adversary = AdversaryKind::scripted(schedule.clone());
        scenario.stop = StopCondition::RoundBudget;
        scenario.max_rounds = schedule.horizon().max(1);
        scenario.run()
    }

    /// Runs the exhaustive search.
    ///
    /// # Panics
    ///
    /// Panics if the cell's scheduler is not checkpointable (seeded `Random`)
    /// or if the search exceeds [`ModelCheck::max_states`] distinct
    /// configurations.
    #[must_use]
    pub fn run(&self) -> Verdict {
        let mut sim = self.branchable_simulation();
        assert!(
            sim.supports_checkpoint(),
            "scheduler {:?} is not checkpointable and cannot be model checked",
            self.scenario.scheduler
        );
        let ring = self.scenario.ring();
        let n = ring.size();
        let mut stats = SearchStats::default();

        // Parent-pointer arena: one (parent, forced edge) link per kept or
        // decided configuration; witnesses are walked back through it.
        let mut links: Vec<(usize, Option<EdgeId>)> = Vec::new();
        // Latest protocol win (round, link) — the worst feasible play.
        let mut best_win: Option<(u64, usize)> = None;

        let root = sim.checkpoint();
        if let Outcome::AdversaryWins | Outcome::ProtocolWins = self.objective.classify(&sim) {
            // Decided before the adversary ever moves (e.g. dense starts
            // covering the whole ring): the empty schedule is the proof.
            let empty = EdgeSchedule::always_present(&ring);
            return match self.objective.classify(&sim) {
                Outcome::ProtocolWins => Verdict::Feasible(FeasibleProof {
                    worst_schedule: empty,
                    worst_round: 0,
                    stats,
                }),
                _ => Verdict::Infeasible(InfeasibleProof {
                    witness: empty,
                    defeat_round: 0,
                    proof_depth: 0,
                    stats,
                }),
            };
        }

        let mut frontier: Vec<(SimCheckpoint, usize)> = vec![(root, ROOT)];
        let mut next: Vec<(SimCheckpoint, usize)> = Vec::new();
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        let mut key = Vec::new();
        let mut scratch = SimCheckpoint::default();

        for _ in 0..self.depth {
            if frontier.is_empty() {
                break;
            }
            stats.peak_frontier = stats.peak_frontier.max(frontier.len());
            seen.clear();
            for (cp, parent) in frontier.drain(..) {
                // The n + 1 admissible adversary choices: remove edge e, or
                // remove nothing (encoded as choice index n).
                for choice_index in 0..=n {
                    let choice =
                        (choice_index < n).then(|| EdgeId::new(choice_index));
                    sim.restore(&cp);
                    sim.step_with_edge(choice);
                    stats.expanded += 1;
                    match self.objective.classify(&sim) {
                        Outcome::AdversaryWins => {
                            links.push((parent, choice));
                            let witness = schedule_from(&links, links.len() - 1, &ring);
                            stats.depth_reached = sim.round();
                            return Verdict::Infeasible(InfeasibleProof {
                                witness,
                                defeat_round: sim.round(),
                                proof_depth: sim.round(),
                                stats,
                            });
                        }
                        Outcome::ProtocolWins => {
                            links.push((parent, choice));
                            let round = sim.round();
                            if best_win.is_none_or(|(r, _)| round >= r) {
                                best_win = Some((round, links.len() - 1));
                            }
                        }
                        Outcome::Undecided => {
                            sim.checkpoint_into(&mut scratch);
                            scratch.canonical_key(&ring, &mut key);
                            if !seen.contains(&key) {
                                seen.insert(key.clone());
                                links.push((parent, choice));
                                stats.visited += 1;
                                assert!(
                                    stats.visited <= self.max_states,
                                    "model check exceeded {} states at depth {} (cell {})",
                                    self.max_states,
                                    sim.round(),
                                    self.scenario.label()
                                );
                                next.push((
                                    std::mem::take(&mut scratch),
                                    links.len() - 1,
                                ));
                            }
                        }
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            stats.depth_reached += 1;
        }

        if self.objective.is_safety() || frontier.is_empty() {
            // Safety: no play violated the objective within the bound.
            // Liveness with an empty frontier: every play achieved it.
            let (worst_round, link) = match (&*frontier, best_win) {
                // A surviving safety play is "worse" than any decided one.
                ([(cp, parent), ..], _) => (cp.round(), *parent),
                ([], Some((round, link))) => (round, link),
                ([], None) => {
                    // Decided-at-root cells returned above; a zero-depth
                    // search proves nothing but is vacuously feasible.
                    return Verdict::Feasible(FeasibleProof {
                        worst_schedule: EdgeSchedule::always_present(&ring),
                        worst_round: 0,
                        stats,
                    });
                }
            };
            let worst_schedule = schedule_from(&links, link, &ring);
            Verdict::Feasible(FeasibleProof { worst_schedule, worst_round, stats })
        } else {
            // Liveness undecided at the bound: the adversary exhibited a play
            // surviving the whole horizon without the objective.
            let (cp, parent) = &frontier[0];
            let witness = schedule_from(&links, *parent, &ring);
            Verdict::Infeasible(InfeasibleProof {
                witness,
                defeat_round: cp.round(),
                proof_depth: stats.depth_reached,
                stats,
            })
        }
    }
}

/// Walks the parent-pointer arena back to the root and materialises the
/// per-round forced choices as a replayable schedule.
fn schedule_from(
    links: &[(usize, Option<EdgeId>)],
    mut link: usize,
    ring: &RingTopology,
) -> EdgeSchedule {
    let mut choices = Vec::new();
    while link != ROOT {
        let (parent, choice) = links[link];
        choices.push(choice);
        link = parent;
    }
    choices.reverse();
    EdgeSchedule::from_missing(ring, choices).expect("forced choices are in range")
}

/// One packaged table cell: a check plus the verdict the paper predicts.
#[derive(Debug, Clone)]
pub struct TableCell {
    /// Row id, e.g. `MC-T1-R1`.
    pub id: String,
    /// The theorem backing the row.
    pub claim: &'static str,
    /// The packaged exhaustive check.
    pub check: ModelCheck,
    /// Whether the paper predicts `Infeasible` (impossibility rows) or
    /// `Feasible` (the no-termination safety row).
    pub expect_infeasible: bool,
}

impl TableCell {
    fn new(
        id: String,
        claim: &'static str,
        check: ModelCheck,
        expect_infeasible: bool,
    ) -> Self {
        TableCell { id, claim, check, expect_infeasible }
    }

    /// Runs the cell and scores it as a report row: `holds` requires the
    /// predicted verdict **and**, for impossibility rows, that the discovered
    /// witness replays through a scripted adversary to the same defeat.
    #[must_use]
    pub fn row(&self) -> RowResult {
        let verdict = self.check.run();
        let stats = *verdict.stats();
        let (holds, observed) = match (&verdict, self.expect_infeasible) {
            (Verdict::Infeasible(proof), true) => {
                let replay = self.check.replay(&proof.witness);
                let confirmed = self.check.objective.defeated_in(&replay);
                (
                    confirmed,
                    format!(
                        "infeasible: defeat at round {} (exhaustive to depth {}, {} states); scripted replay {}",
                        proof.defeat_round,
                        proof.proof_depth,
                        stats.visited,
                        if confirmed { "confirms" } else { "DIVERGES" },
                    ),
                )
            }
            (Verdict::Feasible(proof), false) => (
                true,
                format!(
                    "feasible: worst play decided at round {} (exhaustive to depth {}, {} states)",
                    proof.worst_round, stats.depth_reached, stats.visited
                ),
            ),
            (Verdict::Feasible(proof), true) => (
                false,
                format!(
                    "UNEXPECTEDLY feasible (worst round {}, {} states)",
                    proof.worst_round, stats.visited
                ),
            ),
            (Verdict::Infeasible(proof), false) => (
                false,
                format!(
                    "UNEXPECTEDLY infeasible (defeat at round {}, {} states)",
                    proof.defeat_round, stats.visited
                ),
            ),
        };
        RowResult::new(
            self.id.clone(),
            self.claim,
            self.check.scenario.label(),
            if self.expect_infeasible { "infeasible (exhaustive)" } else { "feasible (exhaustive)" },
            observed,
            holds,
            1,
        )
    }
}

/// The deceived horizon guess the Table 1 witnesses commit to.
const GUESSED_BOUND: usize = 3;

/// Exhaustively checkable Table 1 rows on a ring of `4 ≤ n ≤ 8`.
///
/// Mirrors the scenario parameters of [`tables::table1`](crate::tables::table1)
/// exactly, minus the hand-picked adversaries — the search plays every
/// adversary.
#[must_use]
pub fn table1_cells(n: usize) -> Vec<TableCell> {
    assert!((4..=8).contains(&n), "exhaustive Table 1 cells cover 4 <= n <= 8");
    // The deceived strategy terminates by round 3·GUESSED − 6 + 1 on its
    // guessed ring; the depth adds slack for adversary-delayed defeats.
    let t1_depth = 3 * GUESSED_BOUND as u64 + 4;
    vec![
        TableCell::new(
            format!("MC-T1-R1(n={n})"),
            "Theorem 1",
            ModelCheck::new(
                Scenario::fsync(n, Algorithm::KnownBound { upper_bound: GUESSED_BOUND })
                    .with_starts(vec![0, 1]),
                Objective::NoPrematureTermination,
                t1_depth,
            ),
            true,
        ),
        TableCell::new(
            format!("MC-T1-R2(n={n})"),
            "Theorem 2",
            ModelCheck::new(
                Scenario::fsync(n, Algorithm::KnownBound { upper_bound: GUESSED_BOUND })
                    .with_starts(vec![0, 1, 2])
                    .with_orientations(vec![Handedness::LeftIsCcw; 3]),
                Objective::NoPrematureTermination,
                t1_depth,
            ),
            true,
        ),
        TableCell::new(
            format!("MC-T1-R3(n={n})"),
            "Theorem 2 / Theorem 5 (no termination)",
            // The knowledge-free strategy must never terminate; the frontier
            // of this safety cell never closes, so the horizon is kept just
            // past the deceived strategies' termination rounds.
            ModelCheck::new(
                Scenario::fsync(n, Algorithm::Unconscious),
                Objective::NoTermination,
                n as u64 + 6,
            ),
            false,
        ),
    ]
}

/// Exhaustively checkable Table 3 rows on a ring of `4 ≤ n ≤ 8` (the
/// Theorem 19 row needs `n ≥ 5` and is omitted below that).
///
/// Mirrors the scenario parameters of [`tables::table3`](crate::tables::table3).
#[must_use]
pub fn table3_cells(n: usize) -> Vec<TableCell> {
    assert!((4..=8).contains(&n), "exhaustive Table 3 cells cover 4 <= n <= 8");
    let mut cells = Vec::new();

    // Theorem 9 (NS): under the first-mover scheduler no protocol ever moves;
    // the search proves no adversary-surviving play contains a single move.
    let ns_algorithms = [
        Algorithm::PtBoundChirality { upper_bound: n },
        Algorithm::EtUnconscious,
        Algorithm::PtBoundNoChirality { upper_bound: n },
    ];
    for (i, &algorithm) in ns_algorithms.iter().enumerate() {
        let mut scenario = Scenario::fsync(n, algorithm);
        scenario.synchrony =
            dynring_model::SynchronyModel::Ssync(dynring_model::TransportModel::NoSimultaneity);
        let scenario = scenario.with_scheduler(SchedulerKind::FirstMoverOnly);
        cells.push(TableCell::new(
            format!("MC-T3-R1{}(n={n})", char::from(b'a' + i as u8)),
            "Theorem 9",
            ModelCheck::new(scenario, Objective::AnyMove, 20 * n as u64),
            true,
        ));
    }

    // Theorem 10 (PT, no common chirality): both agents can be kept on the
    // two ports of one missing edge forever.
    let mut scenario = Scenario::ssync(n, Algorithm::PtBoundChirality { upper_bound: n }, 5);
    scenario.orientations = vec![Handedness::LeftIsCw, Handedness::LeftIsCcw];
    scenario.starts = vec![1, 0];
    let scenario = scenario.with_scheduler(SchedulerKind::RoundRobin);
    cells.push(TableCell::new(
        format!("MC-T3-R2(n={n})"),
        "Theorem 10",
        ModelCheck::new(scenario, Objective::Explore, 8 * n as u64),
        true,
    ));

    // Theorem 11 (PT): explicit termination of both agents is impossible.
    let scenario = Scenario::ssync(n, Algorithm::PtBoundChirality { upper_bound: n }, 7)
        .with_scheduler(SchedulerKind::SleepBlocked { hold: 2 });
    cells.push(TableCell::new(
        format!("MC-T3-R3(n={n})"),
        "Theorem 11",
        // Against a benign schedule this cell fully terminates by round ~n
        // (measured: round n at n = 5..8), so surviving n + 4 rounds without
        // full termination is already a genuine impossibility certificate;
        // deeper horizons explode the PT state space.
        ModelCheck::new(scenario, Objective::ExploreAndFullTermination, n as u64 + 4),
        true,
    ));

    // Theorem 19 (ET, only a bound known): acting on a guessed size < n
    // terminates without exploring. Needs guess = n − 2 ≥ 3.
    if n >= 5 {
        let wrong_guess = n - 2;
        let mut scenario =
            Scenario::ssync(n, Algorithm::EtBoundNoChirality { ring_size: wrong_guess }, 3);
        scenario.starts = vec![0, 0, 0];
        let scenario =
            scenario.with_scheduler(SchedulerKind::EtFairRoundRobin { max_lag: 1 });
        cells.push(TableCell::new(
            format!("MC-T3-R4(n={n})"),
            "Theorem 19",
            ModelCheck::new(scenario, Objective::NoPrematureTermination, 12 * n as u64),
            true,
        ));
    }
    cells
}

/// Every exhaustively checkable Table 1 + Table 3 cell for one ring size.
#[must_use]
pub fn infeasibility_cells(n: usize) -> Vec<TableCell> {
    let mut cells = table1_cells(n);
    cells.extend(table3_cells(n));
    cells
}

/// The Theorem 4 lower-bound cell: the correctly-parameterised `KnownBound`
/// strategy *is* feasible, and the search's worst discovered schedule is the
/// true worst case — `lower_bounds` consumes it, with Figure 2's hand script
/// as the regression pin.
#[must_use]
pub fn theorem4_cell(n: usize) -> ModelCheck {
    assert!(n >= 5, "the Theorem 4 cell needs n >= 5");
    let scenario = Scenario::fsync(n, Algorithm::KnownBound { upper_bound: n })
        .with_starts(vec![0, 1])
        .with_orientations(vec![Handedness::LeftIsCcw, Handedness::LeftIsCcw]);
    // Theorem 3 bounds exploration by 3n − 6; one extra round of slack keeps
    // the bound a strict over-approximation.
    ModelCheck::new(scenario, Objective::Explore, 3 * n as u64)
}

/// Runs every packaged cell for each ring size and returns the report rows
/// (the `model_check` example prints these).
#[must_use]
pub fn model_check_rows(sizes: &[usize]) -> Vec<RowResult> {
    let mut rows = Vec::new();
    for &n in sizes {
        for cell in infeasibility_cells(n) {
            rows.push(cell.row());
        }
    }
    rows
}

/// Cross-validation of the hand-scripted Figure 2 schedule against the
/// exhaustive search (satellite of the Theorem 4 rewiring): the discovered
/// worst schedule must be **at least as strong** as the hand script.
///
/// Returns `(discovered_worst_round, scripted_round)`.
///
/// # Panics
///
/// Panics (with a diff of the two schedules) if the hand script outlasts the
/// exhaustively discovered worst case — that would mean the script is not a
/// valid lower-bound pin.
#[must_use]
pub fn cross_validate_figure2(n: usize) -> (u64, u64) {
    let cell = theorem4_cell(n);
    let verdict = cell.run();
    let proof = verdict
        .feasible()
        .unwrap_or_else(|| panic!("Theorem 4 cell must be feasible at n={n}"));
    let scripted = figures::figure2(n);
    let scripted_round = scripted.explored_at.expect("Figure 2 explores");
    assert!(
        proof.worst_round >= scripted_round,
        "hand-scripted Figure 2 schedule is stronger than the exhaustive worst case at n={n}:\n  \
         scripted explores at round {scripted_round}, search worst round {}\n  \
         scripted schedule: {:?}\n  discovered schedule: {:?}",
        proof.worst_round,
        figures::figure2_schedule(&RingTopology::new(n).expect("valid ring")),
        proof.worst_schedule,
    );
    (proof.worst_round, scripted_round)
}
