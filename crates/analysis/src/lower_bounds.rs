//! Experiments accompanying the lower bounds (Theorems 4, 13 and 15).
//!
//! Lower bounds are statements about *every* algorithm against *some*
//! adversary, so the empirical counterpart is twofold:
//!
//! * run the paper's own optimal algorithms against the lower-bound
//!   adversary construction (or its executable core) and confirm that the
//!   forced cost indeed reaches the bound (Theorem 4: exhaustively
//!   *discovered* worst-case schedules on small rings via
//!   [`crate::model_check`], the Figure 2 schedule as the regression pin and
//!   the large-ring fallback);
//! * confirm the matching upper bounds across the adversary battery, so the
//!   claimed Θ-shape (linear time in FSYNC, quadratic moves in SSYNC/PT) is
//!   visible in the sweep tables (Theorems 13 and 15; the fully adaptive
//!   window-shifting adversary of the proofs is interactive and is
//!   represented here by its confinement core, [`crate::figures::figure16`]).

use crate::batch::BatchRunner;
use crate::figures::figure2;
use crate::model_check::{self, Verdict};
use crate::report::{RowResult, SweepPoint};
use crate::sweeps::{self, within_bound, PlacementDensity};
use dynring_core::Algorithm;

/// Largest ring the Theorem 4 row proves by exhaustive search; above it the
/// hand-scripted Figure 2 schedule (the regression pin) carries the row.
pub const MODEL_CHECK_EXACT_MAX: usize = 8;

/// Theorem 4: exploration with partial termination by two agents knowing an
/// upper bound `N` needs at least `N − 1` rounds in the worst case.
///
/// For `ring_size ≤` [`MODEL_CHECK_EXACT_MAX`] the worst-case schedule is
/// **discovered** by the exhaustive [`model_check`] search (every adversary
/// play explored), replayed through a scripted adversary, and checked to be
/// at least as strong as the hand-scripted Figure 2 schedule — the script is
/// a regression pin, not the source of truth. Larger rings fall back to the
/// Figure 2 script (which the search confirms is exactly the worst case,
/// `3n − 6`, on every exhaustively checkable size).
#[must_use]
pub fn theorem4(ring_size: usize) -> RowResult {
    let bound = ring_size as u64 - 1;
    if ring_size <= MODEL_CHECK_EXACT_MAX {
        let check = model_check::theorem4_cell(ring_size);
        let verdict = check.run();
        let Verdict::Feasible(proof) = verdict else {
            return RowResult::new(
                "LB-T4",
                "Theorem 4",
                format!("n = N = {ring_size}, chirality"),
                format!("at least N−1 = {bound} rounds are unavoidable"),
                "exhaustive search unexpectedly found the cell infeasible".to_string(),
                false,
                1,
            );
        };
        let replay = check.replay(&proof.worst_schedule);
        let pin = figure2(ring_size).explored_at.unwrap_or(0);
        let holds = proof.worst_round >= bound
            && replay.explored_at == Some(proof.worst_round)
            && proof.worst_round >= pin;
        return RowResult::new(
            "LB-T4",
            "Theorem 4",
            format!("n = N = {ring_size}, chirality, exhaustive adversary"),
            format!("at least N−1 = {bound} rounds are unavoidable"),
            format!(
                "the exhaustively discovered worst schedule forces {} rounds (Figure 2 pin: {pin}); scripted replay {}",
                proof.worst_round,
                if replay.explored_at == Some(proof.worst_round) { "confirms" } else { "DIVERGES" },
            ),
            holds,
            2,
        );
    }
    let outcome = figure2(ring_size);
    let observed = outcome.explored_at.unwrap_or(0);
    RowResult::new(
        "LB-T4",
        "Theorem 4",
        format!("n = N = {ring_size}, chirality"),
        format!("at least N−1 = {bound} rounds are unavoidable"),
        format!("the Figure 2 adversary forces {observed} rounds (= 3n−6)"),
        observed >= bound,
        1,
    )
}

/// Theorems 13 and 15: the move complexity of the PT algorithms is quadratic
/// in the worst case. The sweep verifies both sides of the shape:
/// the adversary battery forces strictly more than a single sweep of the ring
/// (super-linear pressure), while every run stays below the `O(N²)` / `O(n²)`
/// upper bound of Theorems 12 and 14.
#[must_use]
pub fn theorem13_15(sizes: &[usize], seeds: u64) -> Vec<RowResult> {
    theorem13_15_with(&BatchRunner::from_env(), sizes, seeds)
}

/// [`theorem13_15`] on an explicit [`BatchRunner`]: each sweep's battery is
/// fanned across the runner's threads (like the tables and sweeps), merging
/// per-run reports in enumeration order, so the rows are byte-identical to
/// the sequential path whatever the thread count.
#[must_use]
pub fn theorem13_15_with(runner: &BatchRunner, sizes: &[usize], seeds: u64) -> Vec<RowResult> {
    theorem13_15_battery(runner, sizes, seeds, PlacementDensity::Standard)
}

/// [`theorem13_15_with`] at an explicit [`PlacementDensity`] (the `--huge`
/// battery runs `Dense`).
#[must_use]
pub fn theorem13_15_battery(
    runner: &BatchRunner,
    sizes: &[usize],
    seeds: u64,
    density: PlacementDensity,
) -> Vec<RowResult> {
    let mut rows = Vec::new();
    type AlgorithmCtor = Box<dyn Fn(usize) -> Algorithm>;
    let configs: [(&str, &str, AlgorithmCtor); 2] = [
        (
            "LB-T13",
            "Theorem 13 (known bound)",
            Box::new(|n: usize| Algorithm::PtBoundChirality { upper_bound: n }),
        ),
        ("LB-T15", "Theorem 15 (landmark)", Box::new(|_| Algorithm::PtLandmarkChirality)),
    ];
    for (id, claim, make) in configs {
        let outcome = sweeps::sweep_ssync_battery(runner, &*make, sizes, seeds, density);
        let upper_ok =
            within_bound(&outcome.points, |p| p.worst_moves, |n| 12 * (n as u64) * (n as u64) + 8 * n as u64 + 64);
        let lower_pressure = outcome.points.iter().all(|p| p.worst_moves as usize >= p.ring_size - 1);
        rows.push(RowResult::new(
            id,
            claim,
            "PT, 2 agents, chirality",
            "worst-case moves grow quadratically (Ω(N·n) / Ω(n²)), upper bound O(N²) / O(n²)",
            format!(
                "worst moves per n {:?} (n² reference {:?})",
                outcome.points.iter().map(|p| p.worst_moves).collect::<Vec<_>>(),
                outcome.points.iter().map(|p| (p.ring_size * p.ring_size) as u64).collect::<Vec<_>>()
            ),
            outcome.all_explored && upper_ok && lower_pressure,
            outcome.points.iter().map(|p| p.runs).sum(),
        ));
    }
    rows
}

/// The per-size points behind [`theorem13_15`], exposed for the benchmark
/// harness that prints the quadratic-growth series.
#[must_use]
pub fn quadratic_series(sizes: &[usize], seeds: u64) -> Vec<SweepPoint> {
    sweeps::sweep_ssync(|n| Algorithm::PtBoundChirality { upper_bound: n }, sizes, seeds).points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem4_bound_is_reached() {
        let row = theorem4(9);
        assert!(row.holds, "{}", row.observed);
    }

    #[test]
    fn theorem4_exhaustive_path_discovers_the_figure2_worst_case() {
        let row = theorem4(6);
        assert!(row.holds, "{}", row.observed);
        assert!(row.observed.contains("forces 12 rounds"), "{}", row.observed);
    }

    #[test]
    fn quadratic_shape_holds_on_small_sizes() {
        for row in theorem13_15(&[6], 1) {
            assert!(row.holds, "{}: {}", row.id, row.observed);
        }
    }

    #[test]
    fn quadratic_series_is_nonempty() {
        let series = quadratic_series(&[5], 1);
        assert_eq!(series.len(), 1);
        assert!(series[0].worst_moves >= 4);
    }
}
