//! Reproduction of the figures of the paper.
//!
//! * **Figure 2** — the adversarial schedule under which
//!   `KnownNNoChirality` needs exactly `3n − 6` rounds;
//! * **Figures 5–7** — the termination cases of `LandmarkWithChirality`;
//! * **Figures 9–11** — the identifier construction and direction sequences
//!   (reproduced as unit tests in `dynring-core::fsync::{ident, dirseq}`);
//! * **Figure 12** — simultaneous termination at the landmark for
//!   `StartFromLandmarkNoChirality`;
//! * **Figure 15** — the bounce/reverse behaviour of the PT algorithms under
//!   a permanently missing edge;
//! * **Figure 16** — confinement of the agents to a window when the transport
//!   model gives the adversary full power (the NS-flavoured oscillation run).

use crate::batch::BatchRunner;
use crate::report::RowResult;
use crate::scenario::{AdversaryKind, Scenario, ScenarioRunner, SchedulerKind};
use dynring_core::Algorithm;
use dynring_engine::sim::{RunReport, StopCondition};
use dynring_graph::{EdgeId, Handedness, RingTopology, ScheduleBuilder};
use dynring_model::{SynchronyModel, TransportModel};

/// Outcome of the Figure 2 schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure2Outcome {
    /// Ring size.
    pub ring_size: usize,
    /// Round in which exploration completed.
    pub explored_at: Option<u64>,
    /// The paper's worst-case value `3n − 6`.
    pub expected: u64,
    /// The full run report.
    pub report: RunReport,
}

impl Figure2Outcome {
    /// Whether the schedule reproduced the worst case exactly.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.explored_at == Some(self.expected)
    }

    /// This outcome as a report row.
    #[must_use]
    pub fn row(&self) -> RowResult {
        RowResult::new(
            "F2",
            "Figure 2 / Theorem 3 tightness",
            format!("n = {}, agents on adjacent nodes, chirality", self.ring_size),
            format!("exploration takes exactly 3n−6 = {} rounds", self.expected),
            format!("explored at round {:?}", self.explored_at),
            self.matches(),
            1,
        )
    }
}

/// The exact schedule of Figure 2: agent `a` starts on `v_0`, agent `b` on
/// `v_1`, both with the same orientation; edge `e_0` is missing for the first
/// `n − 3` rounds and edge `e_{n-2}` from round `n − 2` to round `3n − 6`.
#[must_use]
pub fn figure2_schedule(ring: &RingTopology) -> dynring_graph::EdgeSchedule {
    let n = ring.size() as u64;
    ScheduleBuilder::new(ring)
        .remove_for(EdgeId::new(0), n - 3)
        .remove_for(EdgeId::new(ring.size() - 2), 2 * n - 3)
        .build()
}

/// Runs the Figure 2 worst case on a ring of the given size (`n ≥ 5`).
///
/// # Panics
///
/// Panics if `ring_size < 5` (the schedule needs the two blocking phases to be
/// non-trivial).
#[must_use]
pub fn figure2(ring_size: usize) -> Figure2Outcome {
    figure2_in(&mut ScenarioRunner::new(), ring_size)
}

/// [`figure2`] on an explicit recycled [`ScenarioRunner`] (how the batched
/// figure battery and the lower-bound rows run it).
#[must_use]
pub fn figure2_in(worker: &mut ScenarioRunner, ring_size: usize) -> Figure2Outcome {
    assert!(ring_size >= 5, "Figure 2 needs n ≥ 5");
    let ring = RingTopology::new(ring_size).expect("valid ring");
    let schedule = figure2_schedule(&ring);
    let expected = 3 * ring_size as u64 - 6;
    let scenario = Scenario::fsync(ring_size, Algorithm::KnownBound { upper_bound: ring_size })
        .with_starts(vec![0, 1])
        .with_orientations(vec![Handedness::LeftIsCcw, Handedness::LeftIsCcw])
        .with_adversary(AdversaryKind::scripted(schedule))
        .with_stop(StopCondition::AllTerminated)
        .with_max_rounds(6 * ring_size as u64);
    let report = worker.run(&scenario);
    Figure2Outcome { ring_size, explored_at: report.explored_at, expected, report }
}

/// The per-case descriptions of Figures 5–7 (id, description, adversary).
fn figures5_7_cases(ring_size: usize) -> [(&'static str, &'static str, AdversaryKind); 3] {
    [
        (
            "F5/F6",
            "catch around a permanently missing edge",
            AdversaryKind::BlockForever { edge: ring_size / 2 },
        ),
        ("F7a", "static ring: timeout after learning n", AdversaryKind::Static),
        ("F7b", "agents kept apart: timeout after learning n", AdversaryKind::PreventMeeting),
    ]
}

/// One case of Figures 5–7 (`which` ∈ 0..3), exposed so the batched
/// [`all_figures_with`] can fan the cases across threads.
#[must_use]
pub fn figure5_7_case(ring_size: usize, which: usize) -> RowResult {
    figure5_7_case_in(&mut ScenarioRunner::new(), ring_size, which)
}

fn figure5_7_case_in(worker: &mut ScenarioRunner, ring_size: usize, which: usize) -> RowResult {
    let (id, description, adversary) = figures5_7_cases(ring_size)[which].clone();
    let scenario = Scenario::fsync(ring_size, Algorithm::LandmarkChirality)
        .with_starts(vec![1, ring_size / 2 + 1])
        .with_adversary(adversary)
        .with_stop(StopCondition::AllTerminated)
        .with_max_rounds(40 * ring_size as u64);
    let report = worker.run(&scenario);
    RowResult::new(
        id,
        "Lemma 2 / Theorem 6",
        format!("n = {ring_size}, landmark, chirality, {description}"),
        "both agents terminate only after the ring is explored",
        format!(
            "explored at {:?}, terminations {:?}",
            report.explored_at, report.termination_rounds
        ),
        report.explored() && report.all_terminated,
        1,
    )
}

/// Figures 5–7: the three qualitative termination situations of
/// `LandmarkWithChirality` — the agents catching each other around a missing
/// edge, meeting head-on, and timing out after learning `n`.
#[must_use]
pub fn figures5_7(ring_size: usize) -> Vec<RowResult> {
    (0..3).map(|which| figure5_7_case(ring_size, which)).collect()
}

/// Figure 12: both agents start at the landmark without chirality, bounce off
/// the same missing edge and terminate together back at the landmark.
#[must_use]
pub fn figure12(ring_size: usize) -> RowResult {
    figure12_in(&mut ScenarioRunner::new(), ring_size)
}

fn figure12_in(worker: &mut ScenarioRunner, ring_size: usize) -> RowResult {
    assert!(ring_size >= 5 && ring_size % 2 == 1, "Figure 12 uses an odd ring size ≥ 5");
    let m = ring_size / 2;
    let ring = RingTopology::new(ring_size).expect("valid ring");
    // Both agents reach the two endpoints of edge e_m after m rounds; removing
    // it for the next two rounds makes them both bounce and walk back.
    let schedule = ScheduleBuilder::new(&ring)
        .all_present_for(m as u64)
        .remove_for(EdgeId::new(m), 2)
        .build();
    let scenario = Scenario::fsync(ring_size, Algorithm::StartFromLandmarkNoChirality)
        .with_starts(vec![0, 0])
        .with_orientations(vec![Handedness::LeftIsCcw, Handedness::LeftIsCw])
        .with_adversary(AdversaryKind::scripted(schedule))
        .with_stop(StopCondition::AllTerminated)
        .with_max_rounds(20 * ring_size as u64);
    let report = worker.run(&scenario);
    let simultaneous = matches!(
        report.termination_rounds.as_slice(),
        [Some(a), Some(b)] if a == b
    );
    RowResult::new(
        "F12",
        "Figure 12 / Theorem 7",
        format!("n = {ring_size}, no chirality, both agents start at the landmark"),
        "both agents bounce off the same edge and terminate together at the landmark",
        format!(
            "explored at {:?}, terminations {:?}",
            report.explored_at, report.termination_rounds
        ),
        report.explored() && report.all_terminated && simultaneous,
        1,
    )
}

/// Figure 15: in the PT model a permanently missing edge forces the
/// bounce/reverse pattern; the algorithm still explores and one agent
/// terminates, at the cost of extra traversals.
#[must_use]
pub fn figure15(ring_size: usize) -> RowResult {
    figure15_in(&mut ScenarioRunner::new(), ring_size)
}

fn figure15_in(worker: &mut ScenarioRunner, ring_size: usize) -> RowResult {
    let report = {
        let mut scenario =
            Scenario::ssync(ring_size, Algorithm::PtBoundChirality { upper_bound: ring_size }, 23);
        scenario.synchrony = SynchronyModel::Ssync(TransportModel::PassiveTransport);
        let scenario = scenario
            .with_adversary(AdversaryKind::BlockForever { edge: ring_size / 2 })
            .with_scheduler(SchedulerKind::SleepBlocked { hold: 2 })
            .with_stop(StopCondition::ExploredAndPartialTermination)
            .with_max_rounds(300 * (ring_size as u64) * (ring_size as u64));
        worker.run(&scenario)
    };
    RowResult::new(
        "F15",
        "Figure 15 / Theorem 12",
        format!("n = {ring_size}, PT, chirality, permanently missing edge"),
        "bounce/reverse exploration with extra traversals, partial termination",
        format!(
            "explored at {:?}, total moves {} (single sweep would need {})",
            report.explored_at,
            report.total_moves,
            ring_size - 1
        ),
        report.explored() && report.partially_terminated() && report.total_moves as usize >= ring_size,
        1,
    )
}

/// Figure 16: when sleeping agents are never helped (NS flavour) the
/// adversary confines the team to a window forever — the oscillation run of
/// the lower-bound constructions.
#[must_use]
pub fn figure16(ring_size: usize) -> RowResult {
    figure16_in(&mut ScenarioRunner::new(), ring_size)
}

fn figure16_in(worker: &mut ScenarioRunner, ring_size: usize) -> RowResult {
    let window_hi = ring_size / 2;
    let report = {
        let mut scenario =
            Scenario::ssync(ring_size, Algorithm::PtBoundChirality { upper_bound: ring_size }, 29);
        scenario.synchrony = SynchronyModel::Ssync(TransportModel::NoSimultaneity);
        let scenario = scenario
            .with_starts(vec![1, 2])
            .with_adversary(AdversaryKind::Confine { lo: 0, hi: window_hi })
            .with_scheduler(SchedulerKind::RoundRobin)
            .with_stop(StopCondition::RoundBudget)
            .with_max_rounds(60 * ring_size as u64);
        worker.run(&scenario)
    };
    RowResult::new(
        "F16",
        "Figure 16 / Theorems 9, 13, 15",
        format!("n = {ring_size}, NS flavour, confinement window of {} nodes", window_hi + 1),
        "the adversary keeps the agents inside the window indefinitely",
        format!("visited {}/{} nodes in {} rounds", report.visited_count, ring_size, report.rounds),
        !report.explored() && report.visited_count <= window_hi + 1,
        1,
    )
}

/// One independent figure experiment of [`all_figures`].
#[derive(Debug, Clone, Copy)]
enum FigureTask {
    /// Figure 2 worst case.
    Fig2(usize),
    /// One of the Figures 5–7 cases.
    Fig5To7(usize, usize),
    /// Figure 12 (odd ring size).
    Fig12(usize),
    /// Figure 15 (PT bounce/reverse).
    Fig15(usize),
    /// Figure 16 (NS confinement).
    Fig16(usize),
}

impl FigureTask {
    fn run(&self, worker: &mut ScenarioRunner) -> RowResult {
        match *self {
            FigureTask::Fig2(n) => figure2_in(worker, n).row(),
            FigureTask::Fig5To7(n, which) => figure5_7_case_in(worker, n, which),
            FigureTask::Fig12(n) => figure12_in(worker, n),
            FigureTask::Fig15(n) => figure15_in(worker, n),
            FigureTask::Fig16(n) => figure16_in(worker, n),
        }
    }
}

/// All figure experiments as report rows (Figure 2 and the qualitative
/// runs), using the environment-default [`BatchRunner`] (`DYNRING_THREADS`).
#[must_use]
pub fn all_figures(ring_size: usize) -> Vec<RowResult> {
    all_figures_with(&BatchRunner::from_env(), ring_size)
}

/// [`all_figures`] on an explicit runner: the seven independent experiments
/// are fanned across the runner's threads and merged in input order, so the
/// output is byte-identical to the sequential path whatever the thread
/// count.
#[must_use]
pub fn all_figures_with(runner: &BatchRunner, ring_size: usize) -> Vec<RowResult> {
    let odd = if ring_size % 2 == 1 { ring_size } else { ring_size + 1 };
    let tasks = [
        FigureTask::Fig2(ring_size),
        FigureTask::Fig5To7(ring_size, 0),
        FigureTask::Fig5To7(ring_size, 1),
        FigureTask::Fig5To7(ring_size, 2),
        FigureTask::Fig12(odd),
        FigureTask::Fig15(ring_size),
        FigureTask::Fig16(ring_size),
    ];
    runner.run_map_with(&tasks, ScenarioRunner::new, |worker, task| task.run(worker))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_reproduces_the_3n_minus_6_worst_case() {
        for n in [6, 9, 12] {
            let outcome = figure2(n);
            assert_eq!(
                outcome.explored_at,
                Some(3 * n as u64 - 6),
                "n = {n}: {:?}",
                outcome.report
            );
            assert!(outcome.matches());
            assert!(outcome.row().holds);
        }
    }

    #[test]
    fn figures5_7_terminate_correctly() {
        for row in figures5_7(8) {
            assert!(row.holds, "{}: {}", row.id, row.observed);
        }
    }

    #[test]
    fn figure12_simultaneous_termination() {
        let row = figure12(9);
        assert!(row.holds, "{}", row.observed);
    }

    #[test]
    fn figure15_and_16_capture_the_pt_and_ns_behaviours() {
        let f15 = figure15(8);
        assert!(f15.holds, "{}", f15.observed);
        let f16 = figure16(12);
        assert!(f16.holds, "{}", f16.observed);
    }
}
