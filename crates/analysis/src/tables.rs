//! Reproduction of Tables 1–4 of the paper.
//!
//! * Possibility rows run the corresponding constructive algorithm against
//!   the adversary battery and check exploration, the promised termination
//!   discipline and the claimed complexity bound.
//! * Impossibility rows run the witnessing adversary from the paper's proof
//!   against the protocols that solve the *stronger* setting and verify that
//!   the guarantee indeed breaks (bounded-horizon refutation; see DESIGN.md).

use crate::batch::BatchRunner;
use crate::report::RowResult;
use crate::scenario::{AdversaryKind, Scenario, SchedulerKind};
use crate::sweeps::{self, within_bound, PlacementDensity};
use dynring_core::fsync::LandmarkNoChirality;
use dynring_core::Algorithm;
use dynring_engine::sim::StopCondition;
use dynring_graph::Handedness;

/// Table 1 — impossibility results for FSYNC.
///
/// `ring_size` is the size of the ring on which the witnesses are run (the
/// deceiving algorithms are configured with a smaller guessed bound).
#[must_use]
pub fn table1(ring_size: usize) -> Vec<RowResult> {
    table1_with(&BatchRunner::from_env(), ring_size)
}

/// [`table1`] on an explicit [`BatchRunner`]: the witness executions are
/// independent, so they fan across the runner's threads (results are merged
/// in input order, so the rows are identical whatever the thread count).
#[must_use]
pub fn table1_with(runner: &BatchRunner, ring_size: usize) -> Vec<RowResult> {
    assert!(ring_size >= 12, "the Table 1 witnesses need a ring the deceived strategy cannot cover");
    let mut rows = Vec::new();
    // A strategy without knowledge of n has to commit to some horizon; the
    // witness uses the smallest admissible guess, which a larger ring defeats.
    let guessed = 3;

    let scenarios = vec![
        // Theorem 1: two agents, no knowledge of n, no landmark — any
        // strategy that commits to a termination horizon (here: the paper's
        // own Figure 1 algorithm run with a guessed bound N < n) terminates
        // without having explored once the adversary blocks one agent long
        // enough.
        Scenario::fsync(ring_size, Algorithm::KnownBound { upper_bound: guessed })
            .with_starts(vec![0, 1])
            .with_adversary(AdversaryKind::BlockAgent { agent: 0 })
            .with_stop(StopCondition::AllTerminated),
        // Theorem 2 witnesses (see below).
        Scenario::fsync(ring_size, Algorithm::KnownBound { upper_bound: guessed })
            .with_starts(vec![0, 1, 2])
            .with_orientations(vec![Handedness::LeftIsCcw; 3])
            .with_adversary(AdversaryKind::BlockAgent { agent: 0 })
            .with_stop(StopCondition::AllTerminated),
        Scenario::fsync(ring_size, Algorithm::Unconscious)
            .with_adversary(AdversaryKind::PreventMeeting)
            .with_stop(StopCondition::RoundBudget)
            .with_max_rounds(60 * ring_size as u64),
    ];
    let reports = runner.run_reports(&scenarios);
    let (report, report3, unconscious) = (&reports[0], &reports[1], &reports[2]);
    let broke = report.partially_terminated() && !report.explored();
    rows.push(RowResult::new(
        "T1-R1",
        "Theorem 1",
        "2 agents, IDs, chirality, no knowledge of n, no landmark",
        "partial termination impossible",
        format!(
            "guessed-bound strategy (N={guessed}) terminated at round {:?} having visited {}/{} nodes",
            report.first_termination(),
            report.visited_count,
            ring_size
        ),
        broke,
        1,
    ));

    // Theorem 2: anonymous agents, any number — same witness with three
    // agents; additionally the knowledge-free Unconscious algorithm never
    // terminates (it is not required to).
    let broke3 = report3.partially_terminated() && !report3.explored();
    rows.push(RowResult::new(
        "T1-R2",
        "Theorem 2",
        "any number of anonymous agents, chirality, no knowledge of n",
        "partial termination impossible",
        format!(
            "3-agent guessed-bound strategy explored {}/{} before terminating; knowledge-free Unconscious ran {} rounds without terminating (as it must)",
            report3.visited_count,
            ring_size,
            unconscious.rounds
        ),
        broke3 && !unconscious.partially_terminated(),
        2,
    ));
    rows
}

/// Table 2 — possibility results for FSYNC.
#[must_use]
pub fn table2(sizes: &[usize], seeds: u64) -> Vec<RowResult> {
    table2_battery(&BatchRunner::from_env(), sizes, seeds, PlacementDensity::Standard)
}

/// [`table2`] on an explicit runner at an explicit [`PlacementDensity`]
/// (the `--huge` battery runs `Dense`).
#[must_use]
pub fn table2_battery(
    runner: &BatchRunner,
    sizes: &[usize],
    seeds: u64,
    density: PlacementDensity,
) -> Vec<RowResult> {
    let sweep = |make: &dyn Fn(usize) -> Algorithm| {
        sweeps::sweep_fsync_battery(runner, make, sizes, seeds, density)
    };
    let mut rows = Vec::new();

    // Theorem 3: KnownNNoChirality terminates explicitly by round 3N − 6.
    let outcome = sweep(&|n| Algorithm::KnownBound { upper_bound: n });
    let holds = outcome.all_explored
        && outcome.all_terminated_as_promised
        && within_bound(&outcome.points, |p| p.worst_termination, |n| 3 * n as u64 - 6 + 1);
    let runs = outcome.points.iter().map(|p| p.runs).sum();
    rows.push(RowResult::new(
        "T2-R1",
        "Theorem 3",
        "2 agents, known bound N, no chirality",
        "explicit termination in time 3N−6",
        format!(
            "worst termination per n: {:?} (bound 3N−6: {:?})",
            outcome.points.iter().map(|p| p.worst_termination).collect::<Vec<_>>(),
            sizes.iter().map(|n| 3 * *n as u64 - 6).collect::<Vec<_>>()
        ),
        holds,
        runs,
    ));

    // Theorem 6: LandmarkWithChirality terminates in O(n).
    let outcome = sweep(&|_| Algorithm::LandmarkChirality);
    let holds = outcome.all_explored
        && outcome.all_terminated_as_promised
        && within_bound(&outcome.points, |p| p.worst_termination, |n| 30 * n as u64 + 30);
    let runs = outcome.points.iter().map(|p| p.runs).sum();
    rows.push(RowResult::new(
        "T2-R2",
        "Theorem 6",
        "2 agents, landmark, chirality",
        "explicit termination in O(n)",
        format!(
            "worst termination per n: {:?} (checked against 30n)",
            outcome.points.iter().map(|p| p.worst_termination).collect::<Vec<_>>()
        ),
        holds,
        runs,
    ));

    // Theorem 8: LandmarkNoChirality terminates in O(n log n).
    let outcome = sweep(&|_| Algorithm::LandmarkNoChirality);
    let bound = |n: usize| 2 * LandmarkNoChirality::termination_bound(n as u64) + 64 * n as u64;
    let holds = outcome.all_explored
        && outcome.all_terminated_as_promised
        && within_bound(&outcome.points, |p| p.worst_termination, bound);
    let runs = outcome.points.iter().map(|p| p.runs).sum();
    rows.push(RowResult::new(
        "T2-R3",
        "Theorem 8",
        "2 agents, landmark, no chirality",
        "explicit termination in O(n log n)",
        format!(
            "worst termination per n: {:?} (paper's explicit bound 32(3⌈log n⌉+3)·5n per n: {:?})",
            outcome.points.iter().map(|p| p.worst_termination).collect::<Vec<_>>(),
            sizes.iter().map(|n| LandmarkNoChirality::termination_bound(*n as u64)).collect::<Vec<_>>()
        ),
        holds,
        runs,
    ));
    rows
}

/// Table 3 — impossibility results for the SSYNC models.
#[must_use]
pub fn table3(ring_size: usize) -> Vec<RowResult> {
    table3_with(&BatchRunner::from_env(), ring_size)
}

/// [`table3`] on an explicit [`BatchRunner`] (all six witness executions are
/// independent and fan across the runner's threads).
#[must_use]
pub fn table3_with(runner: &BatchRunner, ring_size: usize) -> Vec<RowResult> {
    let n = ring_size;
    let mut rows = Vec::new();
    let horizon = 80 * n as u64;

    // Theorem 9 (NS): with the first-mover scheduler and the matching edge
    // adversary no protocol ever moves an agent.
    let ns_algorithms = [
        Algorithm::PtBoundChirality { upper_bound: n },
        Algorithm::EtUnconscious,
        Algorithm::PtBoundNoChirality { upper_bound: n },
    ];
    let mut scenarios: Vec<Scenario> = ns_algorithms
        .iter()
        .map(|&algorithm| {
            let mut scenario = Scenario::fsync(n, algorithm);
            scenario.synchrony = dynring_model::SynchronyModel::Ssync(
                dynring_model::TransportModel::NoSimultaneity,
            );
            scenario
                .with_scheduler(SchedulerKind::FirstMoverOnly)
                .with_adversary(AdversaryKind::BlockFirstMover)
                .with_stop(StopCondition::RoundBudget)
                .with_max_rounds(horizon)
        })
        .collect();
    scenarios.push({
        let mut scenario = Scenario::ssync(n, Algorithm::PtBoundChirality { upper_bound: n }, 5);
        scenario.orientations = vec![Handedness::LeftIsCw, Handedness::LeftIsCcw];
        scenario.starts = vec![1, 0];
        scenario
            .with_adversary(AdversaryKind::BlockForever { edge: 0 })
            .with_scheduler(SchedulerKind::RoundRobin)
            .with_stop(StopCondition::RoundBudget)
            .with_max_rounds(horizon)
    });
    scenarios.push(
        Scenario::ssync(n, Algorithm::PtBoundChirality { upper_bound: n }, 7)
            .with_adversary(AdversaryKind::BlockForever { edge: n / 2 })
            .with_scheduler(SchedulerKind::SleepBlocked { hold: 2 })
            .with_stop(StopCondition::RoundBudget)
            .with_max_rounds(horizon),
    );
    let wrong_guess = n - 2;
    scenarios.push({
        let mut scenario =
            Scenario::ssync(n, Algorithm::EtBoundNoChirality { ring_size: wrong_guess }, 3);
        scenario.starts = vec![0, 0, 0];
        scenario
            .with_scheduler(SchedulerKind::EtFairRoundRobin { max_lag: 1 })
            .with_adversary(AdversaryKind::Static)
            .with_stop(StopCondition::RoundBudget)
            .with_max_rounds(horizon)
    });

    let reports = runner.run_reports(&scenarios);

    let mut stuck = true;
    let mut probes = 0usize;
    for report in &reports[..ns_algorithms.len()] {
        stuck &= report.total_moves == 0 && !report.explored();
        probes += 1;
    }
    rows.push(RowResult::new(
        "T3-R1",
        "Theorem 9",
        "NS model, any agents, even with chirality / known n / landmark / IDs",
        "exploration impossible",
        format!("no protocol made a single move within {horizon} rounds under the first-mover adversary"),
        stuck,
        probes,
    ));

    // Theorem 10 (PT, no chirality, 2 agents): without a common orientation
    // the adversary exploits the symmetry of the anonymous agents — here both
    // agents face the same edge from its two endpoints and that edge is kept
    // missing forever, which is exactly the final configuration the Theorem 10
    // adversary steers any algorithm into.
    let report = &reports[3];
    rows.push(RowResult::new(
        "T3-R2",
        "Theorem 10",
        "PT, 2 anonymous agents, no chirality, even with known n and landmark",
        "exploration impossible",
        format!(
            "agents without a shared orientation explored only {}/{} nodes in {horizon} rounds (both wait on the two ports of the same missing edge)",
            report.visited_count, n
        ),
        !report.explored() && report.visited_count <= 2,
        1,
    ));

    // Theorem 11 (PT): explicit termination of both agents is impossible;
    // the paper's own algorithm achieves exactly one terminating agent when
    // an edge stays missing forever.
    let report = &reports[4];
    let only_partial = report.partially_terminated() && !report.all_terminated;
    rows.push(RowResult::new(
        "T3-R3",
        "Theorem 11",
        "PT, 2 agents, even with chirality, known n and landmark",
        "explicit termination of both agents impossible (partial only)",
        format!(
            "under a permanently missing edge exactly {} of 2 agents terminated; the other waits on the missing edge",
            report.termination_rounds.iter().flatten().count()
        ),
        only_partial,
        1,
    ));

    // Theorem 19 (ET, only an upper bound known): an agent that only knows a
    // bound has to act on a guess of the exact size; running the Theorem 20
    // protocol with a guessed size smaller than the real ring makes it
    // terminate without having explored — the indistinguishability at the
    // heart of the proof.
    let report = &reports[5];
    let failed = report.partially_terminated() && !report.explored();
    rows.push(RowResult::new(
        "T3-R4",
        "Theorem 19",
        "ET, any agents, only an upper bound N > n known, even with chirality/landmark/IDs",
        "partial termination impossible",
        format!(
            "acting on a guessed size of {wrong_guess} on a ring of {n}: terminated after visiting {}/{} nodes",
            report.visited_count, n
        ),
        failed,
        1,
    ));
    rows
}

/// Table 4 — possibility results for the SSYNC models.
#[must_use]
pub fn table4(sizes: &[usize], seeds: u64) -> Vec<RowResult> {
    table4_battery(&BatchRunner::from_env(), sizes, seeds, PlacementDensity::Standard)
}

/// [`table4`] on an explicit runner at an explicit [`PlacementDensity`]
/// (the `--huge` battery runs `Dense`).
#[must_use]
pub fn table4_battery(
    runner: &BatchRunner,
    sizes: &[usize],
    seeds: u64,
    density: PlacementDensity,
) -> Vec<RowResult> {
    let sweep = move |make: &dyn Fn(usize) -> Algorithm| {
        sweeps::sweep_ssync_battery(runner, make, sizes, seeds, density)
    };
    let mut rows = Vec::new();
    let quad = |c: u64| move |n: usize| c * (n as u64) * (n as u64) + 8 * n as u64 + 64;

    let mut possibility_row = |id: &str,
                               claim: &str,
                               assumptions: &str,
                               paper: &str,
                               make: &dyn Fn(usize) -> Algorithm,
                               bound: &dyn Fn(usize) -> u64| {
        let outcome = sweep(make);
        let holds = outcome.all_explored
            && outcome.all_terminated_as_promised
            && within_bound(&outcome.points, |p| p.worst_moves, bound);
        let runs = outcome.points.iter().map(|p| p.runs).sum();
        rows.push(RowResult::new(
            id,
            claim,
            assumptions,
            paper,
            format!(
                "worst moves per n: {:?}",
                outcome.points.iter().map(|p| p.worst_moves).collect::<Vec<_>>()
            ),
            holds,
            runs,
        ));
    };

    possibility_row(
        "T4-R1",
        "Theorem 12",
        "PT, 2 agents, chirality, known bound N",
        "partial termination in O(N²) moves",
        &|n| Algorithm::PtBoundChirality { upper_bound: n },
        &quad(12),
    );
    possibility_row(
        "T4-R2",
        "Theorem 14",
        "PT, 2 agents, chirality, landmark",
        "partial termination in O(n²) moves",
        &|_| Algorithm::PtLandmarkChirality,
        &quad(12),
    );
    possibility_row(
        "T4-R3",
        "Theorem 16",
        "PT, 3 agents, known bound N",
        "partial termination in O(N²) moves",
        &|n| Algorithm::PtBoundNoChirality { upper_bound: n },
        &quad(18),
    );
    possibility_row(
        "T4-R4",
        "Theorem 17",
        "PT, 3 agents, landmark",
        "partial termination in O(n²) moves",
        &|_| Algorithm::PtLandmarkNoChirality,
        &quad(18),
    );
    // Theorem 20: ET with exact knowledge of n — partial termination is
    // possible; the paper gives no move bound (the number of moves before
    // termination is "finite but possibly unbounded"), so only exploration
    // and partial termination are checked.
    {
        let outcome = sweep(&|n| Algorithm::EtBoundNoChirality { ring_size: n });
        let runs = outcome.points.iter().map(|p| p.runs).sum();
        rows.push(RowResult::new(
            "T4-R6",
            "Theorem 20",
            "ET, 3 agents, known n",
            "partial termination possible (no move bound claimed)",
            format!(
                "worst moves per n: {:?}",
                outcome.points.iter().map(|p| p.worst_moves).collect::<Vec<_>>()
            ),
            outcome.all_explored && outcome.all_terminated_as_promised,
            runs,
        ));
    }

    // Theorem 18: ET unconscious exploration — exploration only, no
    // termination required.
    let outcome = sweep(&|_| Algorithm::EtUnconscious);
    let runs = outcome.points.iter().map(|p| p.runs).sum();
    rows.push(RowResult::new(
        "T4-R5",
        "Theorem 18",
        "ET, 2 agents, chirality",
        "unconscious exploration possible",
        format!(
            "worst rounds to explore per n: {:?}",
            outcome.points.iter().map(|p| p.worst_rounds).collect::<Vec<_>>()
        ),
        outcome.all_explored,
        runs,
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_witness_the_impossibilities() {
        let rows = table1(12);
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row.holds, "{}: {}", row.id, row.observed);
        }
    }

    #[test]
    fn table2_rows_hold_on_small_sizes() {
        let rows = table2(&[5, 8], 1);
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert!(row.holds, "{}: {}", row.id, row.observed);
        }
    }

    #[test]
    fn table3_rows_witness_the_ssync_impossibilities() {
        let rows = table3(10);
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert!(row.holds, "{}: {}", row.id, row.observed);
        }
    }

    #[test]
    fn table4_rows_hold_on_a_small_size() {
        let rows = table4(&[6], 1);
        assert_eq!(rows.len(), 6);
        for row in rows {
            assert!(row.holds, "{}: {}", row.id, row.observed);
        }
    }
}
