//! Run-lifecycle throughput: **runs per second** in the short-run regime
//! (n = 64, round budget 4n), measured as fresh-build vs recycled vs
//! batched-lockstep triples.
//!
//! Where `engine_throughput` measures the round loop, this target measures
//! everything *around* it — `Scenario::run()`'s per-cell construction of the
//! ring, agent SoA, scratch, probe pool and boxed policies versus the
//! recycled lifecycle (`ScenarioRunner` + `Simulation::recycle`), which
//! re-initialises one simulation in place, and versus the batched lockstep
//! path (`ScenarioBatchRunner` + `SimBatch`), which steps a
//! `DYNRING_BATCH_LANES`-lane group per generation. It also **counts heap
//! allocations** through a wrapping global allocator and fails loudly if the
//! recycled or batched steady state allocates at all, so the zero-allocation
//! claim is machine-checked on every run, including the CI smoke.
//!
//! Results are appended to `BENCH_engine.json` (schema v3, `sweep_cases`
//! section); the `cases` and `model_check_cases` sections owned by
//! `engine_throughput` and `model_check_throughput` are preserved verbatim.
//!
//! ```bash
//! cargo bench --bench sweep_throughput            # full measurement
//! DYNRING_BENCH_FAST=1 cargo bench --bench sweep_throughput   # CI smoke
//! ```

use dynring_bench::throughput::{
    batch_comparisons, extract_section, fast_mode, filter_cases, hard_gate, measure_runs,
    measurement_budget, out_path, parse_baseline, recycle_comparisons, regressions,
    sweep_case_scenario, sweep_cases, sweep_json_line, sweep_rates, Lifecycle, SweepSample,
};
use dynring_analysis::batch::batch_lanes_from_env;
use dynring_analysis::scenario::{Scenario, ScenarioBatchRunner, ScenarioRunner};
use dynring_engine::sim::RunReport;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting every allocation (including
/// reallocations) so the recycled steady state can be asserted
/// allocation-free. Deallocations are not counted: freeing is fine, new
/// acquisition is what the recycle contract forbids.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Counts the heap allocations per run in the steady state (after two
/// warm-up iterations that size every buffer) for each recycled **and**
/// batched case of the grid. A batched generation replays the identical
/// `DYNRING_BATCH_LANES`-lane group, so its steady state must recycle the
/// whole batch in place — the per-run quotient divides by `lanes * RUNS`.
/// Returns `(case id, allocations per run)` pairs.
fn steady_state_allocations() -> Vec<(String, u64)> {
    const RUNS: u64 = 64;
    let lanes = batch_lanes_from_env();
    sweep_cases()
        .iter()
        .filter(|case| case.lifecycle != Lifecycle::Fresh)
        .map(|case| {
            let scenario = sweep_case_scenario(case);
            let per_run = match case.lifecycle {
                Lifecycle::Recycled => {
                    let mut runner = ScenarioRunner::new();
                    let mut report = RunReport::default();
                    runner.run_into(&scenario, &mut report);
                    runner.run_into(&scenario, &mut report);
                    let before = ALLOCATIONS.load(Ordering::Relaxed);
                    for _ in 0..RUNS {
                        runner.run_into(&scenario, &mut report);
                    }
                    (ALLOCATIONS.load(Ordering::Relaxed) - before) / RUNS
                }
                Lifecycle::Batched => {
                    let group: Vec<Scenario> = vec![scenario; lanes];
                    let mut runner = ScenarioBatchRunner::new();
                    let _ = runner.run_group_reports(&group);
                    let _ = runner.run_group_reports(&group);
                    let before = ALLOCATIONS.load(Ordering::Relaxed);
                    for _ in 0..RUNS {
                        let _ = runner.run_group_reports(&group);
                    }
                    (ALLOCATIONS.load(Ordering::Relaxed) - before) / (lanes as u64 * RUNS)
                }
                Lifecycle::Fresh => unreachable!("filtered out above"),
            };
            (case.id.clone(), per_run)
        })
        .collect()
}

fn main() {
    let fast = fast_mode();
    let budget = measurement_budget(fast);

    println!(
        "sweep throughput ({} mode, {}ms window per case)\n",
        if fast { "smoke" } else { "full" },
        budget.as_millis(),
    );
    println!("{:<52} {:>10} {:>14}", "case", "runs", "runs/sec");

    let mut samples: Vec<SweepSample> = Vec::new();
    for case in filter_cases(sweep_cases(), |case| case.id.as_str()) {
        let sample = measure_runs(&case, budget);
        println!("{:<52} {:>10} {:>14.0}", sample.case.id, sample.runs, sample.runs_per_sec);
        samples.push(sample);
    }

    let comparisons: Vec<String> = recycle_comparisons(&samples)
        .into_iter()
        .chain(batch_comparisons(&samples))
        .collect();
    if !comparisons.is_empty() {
        println!();
        for line in &comparisons {
            println!("{line}");
        }
    }

    // Machine-checked zero-allocation contract: a recycled run of a
    // shape-stable scenario must not touch the allocator at all, and neither
    // may a batched generation once its lane group is loaded.
    println!();
    let mut dirty = false;
    for (id, allocations_per_run) in steady_state_allocations() {
        println!("ALLOC {id}: {allocations_per_run} allocations/run (steady state)");
        dirty |= allocations_per_run != 0;
    }
    assert!(
        !dirty,
        "recycled/batched steady state allocated: the run-recycling contract is broken"
    );

    let path = out_path();
    // Refresh the runs/sec section; preserve the rounds/sec and states/sec
    // sections owned by `engine_throughput` and `model_check_throughput`
    // verbatim, and diff against the previous baseline.
    let previous_document = std::fs::read_to_string(&path).unwrap_or_default();
    let previous = parse_baseline(&previous_document);
    let case_lines = extract_section(&previous_document, "cases");
    let mc_lines = extract_section(&previous_document, "model_check_cases");
    let sweep_lines: Vec<String> = samples.iter().map(sweep_json_line).collect();
    dynring_bench::throughput::write_document(&path, &case_lines, &sweep_lines, &mc_lines)
        .expect("write BENCH_engine.json");
    println!("\nbaseline written to {}", path.display());

    if previous.is_empty() {
        println!("no previous baseline to diff against");
    } else {
        let drops = regressions(&sweep_rates(&samples), &previous, 0.10, "runs/sec");
        if drops.is_empty() {
            println!("no regressions >= 10% against the previous baseline");
        } else {
            for line in &drops {
                println!("{line}");
            }
            if hard_gate() {
                eprintln!(
                    "bench gate (hard by default; DYNRING_BENCH_GATE=soft to opt out): failing on {} regression(s) >= 10%",
                    drops.len()
                );
                std::process::exit(1);
            }
        }
    }
}
