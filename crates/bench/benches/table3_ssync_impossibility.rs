//! Table 3 (SSYNC impossibility results): Theorems 9, 10, 11 and 19.

use criterion::{criterion_group, criterion_main, Criterion};
use dynring_analysis::scenario::{AdversaryKind, Scenario, SchedulerKind};
use dynring_analysis::tables;
use dynring_bench::print_and_check;
use dynring_core::Algorithm;
use dynring_engine::sim::StopCondition;
use dynring_model::{SynchronyModel, TransportModel};
use std::time::Duration;

fn reproduce_table3(c: &mut Criterion) {
    print_and_check("Table 3 — SSYNC impossibility results", &tables::table3(12));

    let mut group = c.benchmark_group("table3");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("theorem9_ns_freeze_n12", |b| {
        b.iter(|| {
            let mut scenario =
                Scenario::fsync(12, Algorithm::PtBoundNoChirality { upper_bound: 12 });
            scenario.synchrony = SynchronyModel::Ssync(TransportModel::NoSimultaneity);
            scenario
                .with_scheduler(SchedulerKind::FirstMoverOnly)
                .with_adversary(AdversaryKind::BlockFirstMover)
                .with_stop(StopCondition::RoundBudget)
                .with_max_rounds(600)
                .run()
        });
    });
    group.bench_function("theorem11_partial_only_n12", |b| {
        b.iter(|| {
            Scenario::ssync(12, Algorithm::PtBoundChirality { upper_bound: 12 }, 7)
                .with_adversary(AdversaryKind::BlockForever { edge: 6 })
                .with_stop(StopCondition::RoundBudget)
                .with_max_rounds(1200)
                .run()
        });
    });
    group.finish();
}

criterion_group!(benches, reproduce_table3);
criterion_main!(benches);
