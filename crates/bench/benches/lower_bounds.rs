//! Lower bounds (Theorems 4, 13 and 15): the forced `N − 1` rounds and the
//! quadratic move-complexity series of the PT algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynring_analysis::{lower_bounds, report};
use dynring_bench::{print_and_check, SSYNC_SIZES};
use std::time::Duration;

fn reproduce_lower_bounds(c: &mut Criterion) {
    let mut rows = vec![lower_bounds::theorem4(16)];
    rows.extend(lower_bounds::theorem13_15(SSYNC_SIZES, 1));
    print_and_check("Lower bounds — Theorems 4, 13 and 15", &rows);

    let series = lower_bounds::quadratic_series(SSYNC_SIZES, 1);
    println!(
        "{}",
        report::markdown_sweep(
            "PTBoundWithChirality worst-case moves vs n²",
            &series,
            "n²",
            |n| (n * n) as u64
        )
    );

    let mut group = c.benchmark_group("lower_bounds");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for &n in SSYNC_SIZES {
        group.bench_with_input(BenchmarkId::new("theorem4_figure2", n), &n, |b, &n| {
            b.iter(|| lower_bounds::theorem4(n.max(6)));
        });
    }
    group.finish();
}

criterion_group!(benches, reproduce_lower_bounds);
criterion_main!(benches);
