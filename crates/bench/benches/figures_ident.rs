//! Figures 9–11: identifier construction and the ID-driven direction
//! sequences (including the Lemma 3 common-window property).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynring_core::fsync::{AgentIdentifier, DirectionSequence};
use std::time::Duration;

fn reproduce_ident_figures(c: &mut Criterion) {
    // The concrete vectors of Figures 9 and 10.
    println!("| figure | agent | (r1, r2, r3) | ID bits | ID value |");
    println!("|---|---|---|---|---|");
    for (figure, agent, r1, r2, r3) in [
        ("Fig. 9", "a", 2u64, 4u64, 0u64),
        ("Fig. 9", "b", 3, 7, 0),
        ("Fig. 10", "a", 2, 5, 4),
        ("Fig. 10", "b", 6, 8, 0),
    ] {
        let id = AgentIdentifier::from_rounds(r1, r2, r3);
        println!("| {figure} | {agent} | ({r1}, {r2}, {r3}) | {} | {} |", id.bits(), id.value());
    }
    assert_eq!(AgentIdentifier::from_rounds(2, 4, 0).value(), 48, "Figure 9, agent a");
    assert_eq!(AgentIdentifier::from_rounds(3, 7, 0).value(), 164, "Figure 9, agent b");
    assert_eq!(AgentIdentifier::from_rounds(2, 5, 4).value(), 42, "Figure 10, agent a");
    assert_eq!(AgentIdentifier::from_rounds(6, 8, 0).value(), 304, "Figure 10, agent b");

    // Lemma 3: common-direction windows for the Figure 9/10 identifier pairs.
    println!("\n| pair | horizon (Lemma 3, c·n = 64) | longest common run |");
    println!("|---|---|---|");
    for (a, b) in [(48u64, 164u64), (42, 304)] {
        let sa = DirectionSequence::new(a);
        let sb = DirectionSequence::new(b);
        let horizon = DirectionSequence::lemma3_horizon(a, b, 64);
        let run = sa.longest_common_run(&sb, horizon);
        assert!(run >= 64, "Lemma 3 window missing for ({a}, {b})");
        println!("| ({a}, {b}) | {horizon} | {run} |");
    }

    let mut group = c.benchmark_group("figures_ident");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("identifier_from_rounds", |b| {
        b.iter(|| AgentIdentifier::from_rounds(criterion::black_box(123), 456, 78));
    });
    for c_n in [64u64, 256] {
        group.bench_with_input(BenchmarkId::new("lemma3_common_run", c_n), &c_n, |b, &c_n| {
            let sa = DirectionSequence::new(48);
            let sb = DirectionSequence::new(164);
            let horizon = DirectionSequence::lemma3_horizon(48, 164, c_n);
            b.iter(|| sa.longest_common_run(&sb, horizon));
        });
    }
    group.finish();
}

criterion_group!(benches, reproduce_ident_figures);
criterion_main!(benches);
