//! Figure 2: the schedule forcing `KnownNNoChirality` to spend exactly
//! `3n − 6` rounds, across ring sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynring_analysis::figures;
use dynring_bench::print_and_check;
use std::time::Duration;

fn reproduce_figure2(c: &mut Criterion) {
    let sizes = [8usize, 16, 32, 64, 128];
    let rows: Vec<_> = sizes.iter().map(|&n| figures::figure2(n).row()).collect();
    print_and_check(
        "Figure 2 — worst-case schedule (exploration takes exactly 3n−6 rounds)",
        &rows,
    );
    println!("| n | explored at | 3n−6 |");
    println!("|---|---|---|");
    for &n in &sizes {
        let outcome = figures::figure2(n);
        println!("| {n} | {} | {} |", outcome.explored_at.unwrap_or(0), outcome.expected);
    }

    let mut group = c.benchmark_group("figure2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for &n in &sizes {
        group.bench_with_input(BenchmarkId::new("worst_case", n), &n, |b, &n| {
            b.iter(|| figures::figure2(n));
        });
    }
    group.finish();
}

criterion_group!(benches, reproduce_figure2);
criterion_main!(benches);
