//! Figures 5–7 and 12: the termination cases of the landmark algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynring_analysis::figures;
use dynring_bench::print_and_check;
use std::time::Duration;

fn reproduce_landmark_figures(c: &mut Criterion) {
    let mut rows = figures::figures5_7(16);
    rows.push(figures::figure12(17));
    print_and_check("Figures 5–7 and 12 — landmark termination cases", &rows);

    let mut group = c.benchmark_group("figures_landmark");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("figures5_7", n), &n, |b, &n| {
            b.iter(|| figures::figures5_7(n));
        });
        let odd = if n % 2 == 1 { n } else { n + 1 };
        group.bench_with_input(BenchmarkId::new("figure12", odd), &odd, |b, &odd| {
            b.iter(|| figures::figure12(odd));
        });
    }
    group.finish();
}

criterion_group!(benches, reproduce_landmark_figures);
criterion_main!(benches);
