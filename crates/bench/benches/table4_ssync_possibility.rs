//! Table 4 (SSYNC possibility results): Theorems 12, 14, 16, 17, 18 and 20.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynring_analysis::scenario::Scenario;
use dynring_analysis::tables;
use dynring_bench::{print_and_check, SSYNC_SIZES};
use dynring_core::Algorithm;
use std::time::Duration;

fn reproduce_table4(c: &mut Criterion) {
    print_and_check("Table 4 — SSYNC possibility results", &tables::table4(SSYNC_SIZES, 1));

    let mut group = c.benchmark_group("table4");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for &n in SSYNC_SIZES {
        for (label, algorithm) in [
            ("PTBoundWithChirality", Algorithm::PtBoundChirality { upper_bound: n }),
            ("PTLandmarkWithChirality", Algorithm::PtLandmarkChirality),
            ("PTBoundNoChirality", Algorithm::PtBoundNoChirality { upper_bound: n }),
            ("ETBoundNoChirality", Algorithm::EtBoundNoChirality { ring_size: n }),
            ("ETUnconscious", Algorithm::EtUnconscious),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| Scenario::ssync(n, algorithm, 17).run());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, reproduce_table4);
criterion_main!(benches);
