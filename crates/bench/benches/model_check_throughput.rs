//! Exhaustive model-checker throughput: expanded states per second over the
//! packaged impossibility cells — the flagship Theorem 10 cell (`MC-T3-R2`)
//! under legacy `Debug`-string keys vs packed binary keys, the widest cell
//! (`MC-T1-R3`, n = 9) sequentially vs under the parallel level-synchronous
//! search (multi-core machines only), plus wall-clock rows for every
//! infeasibility cell at the large ring sizes the packed-key search unlocked
//! (n = 9 and, in full mode, n = 10).
//!
//! The debug/packed pair keeps the pre-packing baseline measurable in-tree:
//! the printed `PACKED-KEY speedup` line is the canonical-key optimisation's
//! acceptance metric (≥ 3× sequential states/sec), and the `model_check_cases`
//! section written into `BENCH_engine.json` puts every row under the same
//! hard ≥10% regression gate as the engine and sweep rows.
//!
//! ```bash
//! cargo bench --bench model_check_throughput            # full measurement
//! DYNRING_BENCH_FAST=1 cargo bench --bench model_check_throughput   # CI smoke
//! ```

use dynring_analysis::model_check::{self, ModelCheck, SearchContext, SearchStats};
use dynring_bench::throughput::{
    extract_section, fast_mode, filter_cases, hard_gate, measurement_budget,
    model_check_json_line, model_check_rates, out_path, parse_baseline, regressions,
    write_document, ModelCheckSample,
};
use std::time::{Duration, Instant};

/// One bench row before measurement: a packaged cell plus how to run it.
struct McCase {
    id: String,
    ring_size: usize,
    key: &'static str,
    threads: usize,
    check: ModelCheck,
}

/// The flagship cell: Theorem 10 (`MC-T3-R2`) at ring size `n` — two agents
/// held on the ports of a missing edge, the deepest horizon and widest
/// frontier of the packaged impossibility cells.
fn flagship(n: usize) -> ModelCheck {
    model_check::table3_cells(n)
        .into_iter()
        .find(|cell| cell.id.starts_with("MC-T3-R2"))
        .expect("the Theorem 10 cell is packaged at every checkable n")
        .check
}

/// The widest packaged cell: Theorem 3 (`MC-T1-R3`) at ring size `n` — its
/// frontier reaches tens of thousands of configurations per level, which is
/// the regime the parallel level expansion is built for (the n = 7 flagship
/// peaks below the [`parallel dispatch threshold`](SearchContext), so the
/// thread comparison would only measure overhead there).
fn widest(n: usize) -> ModelCheck {
    model_check::table1_cells(n)
        .into_iter()
        .find(|cell| cell.id.starts_with("MC-T1-R3"))
        .expect("the Theorem 3 cell is packaged at every checkable n")
        .check
}

fn cases(fast: bool) -> Vec<McCase> {
    let mut out = Vec::new();
    // The packed-key acceptance pair on the flagship n = 7 cell: identical
    // search, only the canonical-key encoding differs.
    let n = 7;
    for key in ["debug", "packed"] {
        let mut check = flagship(n);
        check.use_debug_key = key == "debug";
        out.push(McCase {
            id: format!("mc/t3r2/n={n}/key={key}/threads=1"),
            ring_size: n,
            key,
            threads: 1,
            check,
        });
    }
    // The parallel pair on the widest cell, where level frontiers are large
    // enough to amortise the deterministic chunk merge. On a single-core
    // machine the multi-thread row is pure overhead (threads time-slice one
    // core), so it only runs where parallelism physically exists — the
    // byte-identity of the parallel search is pinned by the test suite
    // either way.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let widths: &[usize] = if cores > 1 { &[1, 4] } else { &[1] };
    for &threads in widths {
        out.push(McCase {
            id: format!("mc/t1r3/n=9/key=packed/threads={threads}"),
            ring_size: 9,
            key: "packed",
            threads,
            check: widest(9),
        });
    }
    // Wall-clock per remaining infeasibility cell at the sizes the packed
    // keys unlocked; smoke mode stops at n = 9, full mode proves n = 10.
    let sizes: &[usize] = if fast { &[9] } else { &[9, 10] };
    for &n in sizes {
        for cell in model_check::infeasibility_cells(n) {
            if n == 9 && cell.id.starts_with("MC-T1-R3") {
                continue; // measured above as the parallel pair
            }
            out.push(McCase {
                id: format!("mc/matrix/n={n}/{}", cell.id),
                ring_size: n,
                key: "packed",
                threads: 1,
                check: cell.check,
            });
        }
    }
    out
}

/// Runs the cell to completion repeatedly until `budget` elapses (at least
/// once) inside one recycled [`SearchContext`], so the steady-state
/// allocation-free path is what gets measured.
fn measure(case: &McCase, budget: Duration) -> ModelCheckSample {
    let mut ctx = SearchContext::new(case.threads);
    // Warm-up: size every context buffer outside the timed window.
    let _ = case.check.run_in(&mut ctx);
    let start = Instant::now();
    let mut runs = 0u64;
    let mut stats: SearchStats;
    loop {
        stats = *case.check.run_in(&mut ctx).stats();
        runs += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed_ns = start.elapsed().as_nanos();
    let states = stats.expanded;
    let total_states = states.saturating_mul(runs);
    let secs = elapsed_ns as f64 / 1e9;
    ModelCheckSample {
        id: case.id.clone(),
        ring_size: case.ring_size,
        key: case.key,
        threads: case.threads,
        runs,
        states,
        peak_frontier: stats.peak_frontier,
        dedup_ratio: if stats.visited == 0 {
            0.0
        } else {
            stats.expanded as f64 / stats.visited as f64
        },
        elapsed_ns,
        states_per_sec: if secs > 0.0 { total_states as f64 / secs } else { 0.0 },
    }
}

fn main() {
    let fast = fast_mode();
    // Model-check runs are whole searches, not chunked loops: give the full
    // mode a wider window than the engine rows so the big-matrix cells
    // complete at least once without dominating wall-clock.
    // `DYNRING_BENCH_BUDGET_MS` still overrides, through the shared strict
    // parser.
    let budget = if std::env::var_os("DYNRING_BENCH_BUDGET_MS").is_some() {
        measurement_budget(fast)
    } else if fast {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(1500)
    };

    println!(
        "model-check throughput ({} mode, {}ms window per case)\n",
        if fast { "smoke" } else { "full" },
        budget.as_millis(),
    );
    println!(
        "{:<36} {:>10} {:>12} {:>9} {:>7} {:>14}",
        "case", "states", "peak-front", "dedup", "runs", "states/sec"
    );

    let mut samples: Vec<ModelCheckSample> = Vec::new();
    for case in filter_cases(cases(fast), |case| case.id.as_str()) {
        let sample = measure(&case, budget);
        println!(
            "{:<36} {:>10} {:>12} {:>8.1}x {:>7} {:>14.0}",
            sample.id,
            sample.states,
            sample.peak_frontier,
            sample.dedup_ratio,
            sample.runs,
            sample.states_per_sec
        );
        samples.push(sample);
    }

    // The acceptance comparison: packed sequential vs the Debug-string
    // baseline on the flagship cell.
    let rate = |needle: &str| {
        samples
            .iter()
            .find(|s| s.id.contains(needle))
            .map(|s| s.states_per_sec)
            .filter(|&r| r > 0.0)
    };
    if let (Some(debug), Some(packed)) =
        (rate("t3r2/n=7/key=debug"), rate("t3r2/n=7/key=packed"))
    {
        println!("\nPACKED-KEY speedup (sequential, n=7 flagship): {:.2}x", packed / debug);
    }
    if let (Some(seq), Some(par)) =
        (rate("t1r3/n=9/key=packed/threads=1"), rate("t1r3/n=9/key=packed/threads=4"))
    {
        println!("PARALLEL speedup (4 threads vs sequential, n=9 widest cell): {:.2}x", par / seq);
    } else {
        println!("PARALLEL speedup: skipped (single-core machine; parallel search byte-identity is test-pinned)");
    }

    let path = out_path();
    // Refresh the states/sec section; preserve the rounds/sec and runs/sec
    // sections owned by `engine_throughput` and `sweep_throughput` verbatim,
    // and diff against the previous baseline.
    let previous_document = std::fs::read_to_string(&path).unwrap_or_default();
    let previous = parse_baseline(&previous_document);
    let case_lines = extract_section(&previous_document, "cases");
    let sweep_lines = extract_section(&previous_document, "sweep_cases");
    let mc_lines: Vec<String> = samples.iter().map(model_check_json_line).collect();
    write_document(&path, &case_lines, &sweep_lines, &mc_lines)
        .expect("write BENCH_engine.json");
    println!("\nbaseline written to {}", path.display());

    if previous.is_empty() {
        println!("no previous baseline to diff against");
    } else {
        let drops = regressions(&model_check_rates(&samples), &previous, 0.10, "states/sec");
        if drops.is_empty() {
            println!("no regressions >= 10% against the previous baseline");
        } else {
            for line in &drops {
                println!("{line}");
            }
            if hard_gate() {
                eprintln!(
                    "bench gate (hard by default; DYNRING_BENCH_GATE=soft to opt out): failing on {} regression(s) >= 10%",
                    drops.len()
                );
                std::process::exit(1);
            }
        }
    }
}
