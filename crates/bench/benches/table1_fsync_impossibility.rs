//! Table 1 (FSYNC impossibility results): Theorems 1 and 2, witnessed by the
//! adversaries of the corresponding proofs.

use criterion::{criterion_group, criterion_main, Criterion};
use dynring_analysis::scenario::{AdversaryKind, Scenario};
use dynring_analysis::tables;
use dynring_bench::print_and_check;
use dynring_core::Algorithm;
use dynring_engine::sim::StopCondition;
use std::time::Duration;

fn reproduce_table1(c: &mut Criterion) {
    print_and_check("Table 1 — FSYNC impossibility results", &tables::table1(16));

    let mut group = c.benchmark_group("table1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("theorem1_witness_n16", |b| {
        b.iter(|| {
            Scenario::fsync(16, Algorithm::KnownBound { upper_bound: 3 })
                .with_starts(vec![0, 1])
                .with_adversary(AdversaryKind::BlockAgent { agent: 0 })
                .with_stop(StopCondition::AllTerminated)
                .run()
        });
    });
    group.bench_function("theorem2_unconscious_never_terminates_n16", |b| {
        b.iter(|| {
            Scenario::fsync(16, Algorithm::Unconscious)
                .with_adversary(AdversaryKind::PreventMeeting)
                .with_stop(StopCondition::RoundBudget)
                .with_max_rounds(400)
                .run()
        });
    });
    group.finish();
}

criterion_group!(benches, reproduce_table1);
criterion_main!(benches);
