//! Table 2 (FSYNC possibility results): Theorems 3, 6 and 8.
//!
//! Prints the reproduced table and measures the runtime of one representative
//! adversarial run per algorithm and ring size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynring_analysis::scenario::{AdversaryKind, Scenario};
use dynring_analysis::tables;
use dynring_bench::{print_and_check, FSYNC_SIZES};
use dynring_core::Algorithm;
use std::time::Duration;

fn reproduce_table2(c: &mut Criterion) {
    print_and_check("Table 2 — FSYNC possibility results", &tables::table2(FSYNC_SIZES, 1));

    let mut group = c.benchmark_group("table2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for &n in FSYNC_SIZES {
        for (label, algorithm) in [
            ("KnownNNoChirality", Algorithm::KnownBound { upper_bound: n }),
            ("LandmarkWithChirality", Algorithm::LandmarkChirality),
            ("LandmarkNoChirality", Algorithm::LandmarkNoChirality),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    Scenario::fsync(n, algorithm)
                        .with_adversary(AdversaryKind::Sticky {
                            min_hold: 1,
                            max_hold: n as u64,
                            present: 0.25,
                            seed: 11,
                        })
                        .with_max_rounds(dynring_analysis::sweeps::round_budget(&algorithm, n))
                        .run()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, reproduce_table2);
criterion_main!(benches);
