//! Figures 15 and 16: the bounce/reverse behaviour of the PT algorithms and
//! the confinement run of the lower-bound constructions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynring_analysis::figures;
use dynring_bench::print_and_check;
use std::time::Duration;

fn reproduce_ssync_figures(c: &mut Criterion) {
    let rows = vec![figures::figure15(12), figures::figure16(16)];
    print_and_check("Figures 15 and 16 — PT bounce/reverse and NS confinement", &rows);

    let mut group = c.benchmark_group("figures_ssync");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::new("figure15", n), &n, |b, &n| {
            b.iter(|| figures::figure15(n));
        });
        group.bench_with_input(BenchmarkId::new("figure16", n), &n, |b, &n| {
            b.iter(|| figures::figure16(n));
        });
    }
    group.finish();
}

criterion_group!(benches, reproduce_ssync_figures);
criterion_main!(benches);
