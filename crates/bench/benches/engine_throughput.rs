//! Raw engine throughput: rounds per second over the standard grid
//! (FSYNC and SSYNC/PT, n ∈ {64, 256, 1024}, trace recording off/on).
//!
//! Unlike the table/figure benches, this target measures the simulator's
//! inner loop itself, not the experiments built on top of it, and it writes
//! the machine-readable baseline `BENCH_engine.json` so the engine's perf
//! trajectory is visible PR over PR.
//!
//! ```bash
//! cargo bench --bench engine_throughput            # full measurement
//! DYNRING_BENCH_FAST=1 cargo bench --bench engine_throughput   # CI smoke
//! ```

use dynring_bench::throughput::{
    case_json_line, case_rates, dispatch_comparisons, extract_section, fast_mode, filter_cases,
    hard_gate, measure, measurement_budget, out_path, parse_baseline, regressions, standard_cases,
    write_document, ThroughputSample,
};

fn main() {
    let fast = fast_mode();
    let budget = measurement_budget(fast);
    let chunk: u64 = if fast { 512 } else { 4096 };

    println!(
        "engine throughput ({} mode, {}ms window per case, {} rounds per chunk)\n",
        if fast { "smoke" } else { "full" },
        budget.as_millis(),
        chunk
    );
    println!("{:<28} {:>14} {:>14}", "case", "rounds", "rounds/sec");

    let mut samples: Vec<ThroughputSample> = Vec::new();
    for case in filter_cases(standard_cases(), |case| case.id.as_str()) {
        let sample = measure(&case, budget, chunk);
        println!(
            "{:<28} {:>14} {:>14.0}",
            sample.case.id, sample.rounds, sample.rounds_per_sec
        );
        samples.push(sample);
    }

    let comparisons = dispatch_comparisons(&samples);
    if !comparisons.is_empty() {
        println!();
        for line in &comparisons {
            println!("{line}");
        }
    }

    let path = out_path();
    // Diff against the previous committed baseline before overwriting it,
    // and carry its runs/sec and states/sec sections (owned by
    // `sweep_throughput` and `model_check_throughput`) over verbatim — each
    // bench target only refreshes its own rows.
    let previous_document = std::fs::read_to_string(&path).unwrap_or_default();
    let previous = parse_baseline(&previous_document);
    let sweep_lines = extract_section(&previous_document, "sweep_cases");
    let mc_lines = extract_section(&previous_document, "model_check_cases");
    let case_lines: Vec<String> = samples.iter().map(case_json_line).collect();
    write_document(&path, &case_lines, &sweep_lines, &mc_lines)
        .expect("write BENCH_engine.json");
    println!("\nbaseline written to {}", path.display());

    if previous.is_empty() {
        println!("no previous baseline to diff against");
    } else {
        let drops = regressions(&case_rates(&samples), &previous, 0.10, "rounds/sec");
        if drops.is_empty() {
            println!("no regressions >= 10% against the previous baseline");
        } else {
            for line in &drops {
                println!("{line}");
            }
            if hard_gate() {
                eprintln!(
                    "bench gate (hard by default; DYNRING_BENCH_GATE=soft to opt out): failing on {} regression(s) >= 10%",
                    drops.len()
                );
                std::process::exit(1);
            }
        }
    }
}
