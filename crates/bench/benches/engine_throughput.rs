//! Raw engine throughput: rounds per second over the standard grid
//! (FSYNC and SSYNC/PT, n ∈ {64, 256, 1024}, trace recording off/on).
//!
//! Unlike the table/figure benches, this target measures the simulator's
//! inner loop itself, not the experiments built on top of it, and it writes
//! the machine-readable baseline `BENCH_engine.json` so the engine's perf
//! trajectory is visible PR over PR.
//!
//! ```bash
//! cargo bench --bench engine_throughput            # full measurement
//! DYNRING_BENCH_FAST=1 cargo bench --bench engine_throughput   # CI smoke
//! ```

use dynring_bench::throughput::{
    fast_mode, measure, out_path, standard_cases, write_json, ThroughputSample,
};
use std::time::Duration;

fn main() {
    let fast = fast_mode();
    let budget = if fast { Duration::from_millis(40) } else { Duration::from_millis(800) };
    let chunk: u64 = if fast { 512 } else { 4096 };

    println!(
        "engine throughput ({} mode, {}ms window per case, {} rounds per chunk)\n",
        if fast { "smoke" } else { "full" },
        budget.as_millis(),
        chunk
    );
    println!("{:<28} {:>14} {:>14}", "case", "rounds", "rounds/sec");

    let mut samples: Vec<ThroughputSample> = Vec::new();
    for case in standard_cases() {
        let sample = measure(&case, budget, chunk);
        println!(
            "{:<28} {:>14} {:>14.0}",
            sample.case.id, sample.rounds, sample.rounds_per_sec
        );
        samples.push(sample);
    }

    let path = out_path();
    write_json(&path, &samples).expect("write BENCH_engine.json");
    println!("\nbaseline written to {}", path.display());
}
