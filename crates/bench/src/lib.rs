//! Shared helpers for the benchmark harness.
//!
//! Every benchmark target regenerates one table or figure of
//! *Live Exploration of Dynamic Rings* and prints it (so that `cargo bench`
//! output contains the same rows/series the paper reports) before measuring
//! the runtime of the underlying simulations with Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dynring_analysis::report::RowResult;

pub mod throughput;

/// Ring sizes used by the FSYNC benchmarks.
pub const FSYNC_SIZES: &[usize] = &[8, 16, 24];

/// Ring sizes used by the SSYNC benchmarks (quadratic algorithms, so smaller).
pub const SSYNC_SIZES: &[usize] = &[6, 9, 12];

/// Prints a reproduced table and asserts that every row is consistent with
/// the paper (a benchmark that silently reproduces the wrong numbers is
/// worse than one that fails loudly).
pub fn print_and_check(title: &str, rows: &[RowResult]) {
    println!("{}", dynring_analysis::markdown_table(title, rows));
    let violations: Vec<&RowResult> = rows.iter().filter(|r| !r.holds).collect();
    assert!(violations.is_empty(), "{title}: rows inconsistent with the paper: {violations:#?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_and_check_accepts_consistent_rows() {
        let rows = vec![RowResult::new("X", "claim", "assumptions", "paper", "measured", true, 1)];
        print_and_check("ok", &rows);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn print_and_check_rejects_violations() {
        let rows = vec![RowResult::new("X", "claim", "assumptions", "paper", "measured", false, 1)];
        print_and_check("bad", &rows);
    }
}
