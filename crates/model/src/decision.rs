//! The **Compute** operation's output.

use crate::snapshot::LocalDirection;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The decision an agent takes after **Look** and **Compute**.
///
/// The paper's `direction ∈ {left, right, nil}` is extended with the two
/// explicit node-level actions the pseudo-code of Figure 4 uses
/// ("Move from the port to the node", "Terminate"):
///
/// * [`Decision::Move`] — position on the port in the given local direction
///   (if not already there) and attempt to traverse;
/// * [`Decision::Stay`] — `nil`: do nothing this round; an agent already
///   waiting on a port keeps holding it;
/// * [`Decision::Retreat`] — step back from the held port into the node body
///   (a no-op for an agent already in the node);
/// * [`Decision::Terminate`] — enter the terminal state: the agent releases
///   any held port, stands in the node, and never moves again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Attempt to move in the given local direction.
    Move(LocalDirection),
    /// Do nothing (`nil`); keep holding a port if one is held.
    Stay,
    /// Step from the held port back into the node body.
    Retreat,
    /// Enter the terminal state and never move again.
    Terminate,
}

impl Decision {
    /// The direction of an attempted move, if this decision is a move.
    #[must_use]
    pub const fn move_direction(self) -> Option<LocalDirection> {
        match self {
            Decision::Move(d) => Some(d),
            _ => None,
        }
    }

    /// Whether this decision attempts an edge traversal.
    #[must_use]
    pub const fn is_move(self) -> bool {
        matches!(self, Decision::Move(_))
    }

    /// Whether this decision terminates the agent.
    #[must_use]
    pub const fn is_terminate(self) -> bool {
        matches!(self, Decision::Terminate)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Move(d) => write!(f, "move-{d}"),
            Decision::Stay => write!(f, "stay"),
            Decision::Retreat => write!(f, "retreat"),
            Decision::Terminate => write!(f, "terminate"),
        }
    }
}

impl From<LocalDirection> for Decision {
    fn from(dir: LocalDirection) -> Self {
        Decision::Move(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_direction_is_only_for_moves() {
        assert_eq!(Decision::Move(LocalDirection::Left).move_direction(), Some(LocalDirection::Left));
        assert_eq!(Decision::Stay.move_direction(), None);
        assert_eq!(Decision::Retreat.move_direction(), None);
        assert_eq!(Decision::Terminate.move_direction(), None);
    }

    #[test]
    fn classification_helpers() {
        assert!(Decision::Move(LocalDirection::Right).is_move());
        assert!(!Decision::Stay.is_move());
        assert!(Decision::Terminate.is_terminate());
        assert!(!Decision::Retreat.is_terminate());
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Decision::Move(LocalDirection::Left).to_string(), "move-left");
        assert_eq!(Decision::Stay.to_string(), "stay");
        assert_eq!(Decision::from(LocalDirection::Right), Decision::Move(LocalDirection::Right));
    }
}
