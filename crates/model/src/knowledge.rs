//! A-priori knowledge, synchrony levels and transport models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The transport models of the semi-synchronous setting (Section 2.1).
///
/// They differ in what may happen to an agent *sleeping on a port* (an agent
/// that gained access to a port, found the edge missing, and was not
/// activated in a later round).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportModel {
    /// **NS** — No Simultaneity: a sleeping agent never moves; there is no
    /// guarantee it is ever awake while its edge is present.
    NoSimultaneity,
    /// **PT** — Passive Transport: if the edge reappears while the agent is
    /// sleeping on the port, the agent is carried to the other endpoint.
    PassiveTransport,
    /// **ET** — Eventual Transport: a sleeping agent never moves passively,
    /// but if its edge is present infinitely often it is eventually activated
    /// in a round in which the edge is present.
    EventualTransport,
}

impl fmt::Display for TransportModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportModel::NoSimultaneity => write!(f, "NS"),
            TransportModel::PassiveTransport => write!(f, "PT"),
            TransportModel::EventualTransport => write!(f, "ET"),
        }
    }
}

/// The synchrony level of the activation schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SynchronyModel {
    /// Fully synchronous: every agent is active in every round.
    Fsync,
    /// Semi-synchronous: an adversary activates a non-empty subset of agents
    /// each round (every agent infinitely often), with the given behaviour
    /// for agents sleeping on ports.
    Ssync(TransportModel),
}

impl SynchronyModel {
    /// The transport model, if the system is semi-synchronous.
    #[must_use]
    pub const fn transport(self) -> Option<TransportModel> {
        match self {
            SynchronyModel::Fsync => None,
            SynchronyModel::Ssync(t) => Some(t),
        }
    }

    /// Whether the system is fully synchronous.
    #[must_use]
    pub const fn is_fsync(self) -> bool {
        matches!(self, SynchronyModel::Fsync)
    }
}

impl fmt::Display for SynchronyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynchronyModel::Fsync => write!(f, "FSYNC"),
            SynchronyModel::Ssync(t) => write!(f, "SSYNC/{t}"),
        }
    }
}

/// What an agent knows a priori about the ring and the team.
///
/// All fields default to "knows nothing": anonymous agent, no size
/// information, no chirality.
///
/// ```
/// use dynring_model::Knowledge;
/// let k = Knowledge::default().with_upper_bound(16).with_chirality();
/// assert_eq!(k.upper_bound, Some(16));
/// assert!(k.has_chirality);
/// assert_eq!(k.best_upper_bound(), Some(16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Knowledge {
    /// The exact ring size `n`, if known.
    pub exact_size: Option<usize>,
    /// An upper bound `N ≥ n` on the ring size, if known.
    pub upper_bound: Option<usize>,
    /// Whether all agents share (and know they share) the same orientation.
    pub has_chirality: bool,
    /// A distinct identifier, granted only in scenarios that show an
    /// impossibility holds *even with* distinct IDs. Constructive protocols
    /// in this crate never read it.
    pub distinct_id: Option<u64>,
    /// The number of agents operating in the ring, if known.
    pub agent_count: Option<usize>,
}

impl Knowledge {
    /// Knowledge of nothing at all (anonymous, no size info, no chirality).
    #[must_use]
    pub fn nothing() -> Self {
        Knowledge::default()
    }

    /// Adds knowledge of the exact ring size.
    #[must_use]
    pub fn with_exact_size(mut self, n: usize) -> Self {
        self.exact_size = Some(n);
        self
    }

    /// Adds knowledge of an upper bound on the ring size.
    #[must_use]
    pub fn with_upper_bound(mut self, bound: usize) -> Self {
        self.upper_bound = Some(bound);
        self
    }

    /// Declares that the agents share a common orientation and know it.
    #[must_use]
    pub fn with_chirality(mut self) -> Self {
        self.has_chirality = true;
        self
    }

    /// Grants a distinct identifier (impossibility scenarios only).
    #[must_use]
    pub fn with_distinct_id(mut self, id: u64) -> Self {
        self.distinct_id = Some(id);
        self
    }

    /// Adds knowledge of the number of agents.
    #[must_use]
    pub fn with_agent_count(mut self, count: usize) -> Self {
        self.agent_count = Some(count);
        self
    }

    /// The tightest upper bound derivable from this knowledge: the exact size
    /// if known, otherwise the upper bound, otherwise `None`.
    #[must_use]
    pub fn best_upper_bound(&self) -> Option<usize> {
        self.exact_size.or(self.upper_bound)
    }
}

/// A compact description of a scenario's assumptions, used by the analysis
/// crate to label the rows of the feasibility map (Tables 1–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScenarioAssumptions {
    /// Synchrony level and transport model.
    pub synchrony: SynchronyModel,
    /// Number of agents deployed.
    pub agents: usize,
    /// Whether the agents share chirality.
    pub chirality: bool,
    /// Whether the ring has a landmark node.
    pub landmark: bool,
    /// Whether the exact ring size is known.
    pub knows_exact_size: bool,
    /// Whether an upper bound on the ring size is known.
    pub knows_upper_bound: bool,
    /// Whether the agents are anonymous (no distinct IDs).
    pub anonymous_agents: bool,
}

impl fmt::Display for ScenarioAssumptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<&str> = Vec::new();
        if self.chirality {
            parts.push("chirality");
        }
        if self.landmark {
            parts.push("landmark");
        }
        if self.knows_exact_size {
            parts.push("known n");
        } else if self.knows_upper_bound {
            parts.push("known bound N");
        }
        if !self.anonymous_agents {
            parts.push("distinct IDs");
        }
        write!(f, "{} {} agents", self.synchrony, self.agents)?;
        if !parts.is_empty() {
            write!(f, " [{}]", parts.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_and_synchrony_display() {
        assert_eq!(TransportModel::NoSimultaneity.to_string(), "NS");
        assert_eq!(TransportModel::PassiveTransport.to_string(), "PT");
        assert_eq!(TransportModel::EventualTransport.to_string(), "ET");
        assert_eq!(SynchronyModel::Fsync.to_string(), "FSYNC");
        assert_eq!(
            SynchronyModel::Ssync(TransportModel::PassiveTransport).to_string(),
            "SSYNC/PT"
        );
    }

    #[test]
    fn synchrony_helpers() {
        assert!(SynchronyModel::Fsync.is_fsync());
        assert_eq!(SynchronyModel::Fsync.transport(), None);
        let s = SynchronyModel::Ssync(TransportModel::EventualTransport);
        assert!(!s.is_fsync());
        assert_eq!(s.transport(), Some(TransportModel::EventualTransport));
    }

    #[test]
    fn knowledge_builders_compose() {
        let k = Knowledge::nothing()
            .with_exact_size(10)
            .with_upper_bound(20)
            .with_chirality()
            .with_distinct_id(3)
            .with_agent_count(2);
        assert_eq!(k.exact_size, Some(10));
        assert_eq!(k.upper_bound, Some(20));
        assert!(k.has_chirality);
        assert_eq!(k.distinct_id, Some(3));
        assert_eq!(k.agent_count, Some(2));
        assert_eq!(k.best_upper_bound(), Some(10));
    }

    #[test]
    fn best_upper_bound_prefers_exact_size() {
        assert_eq!(Knowledge::nothing().best_upper_bound(), None);
        assert_eq!(Knowledge::nothing().with_upper_bound(7).best_upper_bound(), Some(7));
        assert_eq!(
            Knowledge::nothing().with_exact_size(5).with_upper_bound(7).best_upper_bound(),
            Some(5)
        );
    }

    #[test]
    fn assumptions_display_mentions_key_facts() {
        let a = ScenarioAssumptions {
            synchrony: SynchronyModel::Ssync(TransportModel::PassiveTransport),
            agents: 3,
            chirality: false,
            landmark: true,
            knows_exact_size: false,
            knows_upper_bound: true,
            anonymous_agents: true,
        };
        let s = a.to_string();
        assert!(s.contains("SSYNC/PT"));
        assert!(s.contains("3 agents"));
        assert!(s.contains("landmark"));
        assert!(s.contains("known bound N"));
        assert!(!s.contains("distinct IDs"));
    }
}
