//! Packed binary encodings of protocol state for canonical keys.
//!
//! The exhaustive model checker (in `dynring-analysis`) deduplicates search
//! states by a canonical byte key. Historically that key serialised every
//! agent's protocol state by `format!`-ing its `Debug` representation — a
//! per-state `String` allocation on the hottest path of the search. The
//! [`Protocol::write_state_key`](crate::Protocol::write_state_key) hook
//! replaces the string with a compact binary encoding built from the helpers
//! in this module.
//!
//! # Injectivity contract
//!
//! The only property the model checker needs is that the encoding is
//! **injective**: two protocol instances emit the same bytes *iff* their
//! observable state (everything that can influence any future decision) is
//! identical. Equality of canonical keys is then exactly equality of
//! configurations, so the exhaustive proofs stay proofs. The helpers keep
//! injectivity compositional:
//!
//! * all integers are fixed-width little-endian, so field boundaries never
//!   shift;
//! * optional fields carry an explicit presence tag byte;
//! * variable-length payloads are length-prefixed via [`push_bytes`].
//!
//! Implementors must emit **every** field that `Debug` would show (the
//! equivalence proptests in `tests/model_check.rs` compare the equivalence
//! classes induced by the two encodings).

/// Appends a `u64` as 8 little-endian bytes.
#[inline]
pub fn push_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u32` as 4 little-endian bytes.
#[inline]
pub fn push_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends an `i64` as 8 little-endian bytes (two's complement).
#[inline]
pub fn push_i64(out: &mut Vec<u8>, value: i64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends an `Option<u64>` as a presence tag byte followed by the value
/// (absent values emit tag `0` and no payload).
#[inline]
pub fn push_opt_u64(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(v) => {
            out.push(1);
            push_u64(out, v);
        }
        None => out.push(0),
    }
}

/// Appends an `Option<i64>` as a presence tag byte followed by the value.
#[inline]
pub fn push_opt_i64(out: &mut Vec<u8>, value: Option<i64>) {
    match value {
        Some(v) => {
            out.push(1);
            push_i64(out, v);
        }
        None => out.push(0),
    }
}

/// Appends a length-prefixed byte slice (`u32` little-endian length, then the
/// bytes). The prefix keeps concatenated encodings injective.
///
/// # Panics
///
/// Panics if `bytes` is longer than `u32::MAX` (no protocol state comes
/// within orders of magnitude of that).
#[inline]
pub fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    let len = u32::try_from(bytes.len()).expect("state-key payload exceeds u32 length");
    push_u32(out, len);
    out.extend_from_slice(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_fixed_width_little_endian() {
        let mut out = Vec::new();
        push_u64(&mut out, 0x0102_0304_0506_0708);
        push_u32(&mut out, 0xAABB_CCDD);
        push_i64(&mut out, -2);
        assert_eq!(out.len(), 8 + 4 + 8);
        assert_eq!(&out[..8], &[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(&out[8..12], &[0xDD, 0xCC, 0xBB, 0xAA]);
        assert_eq!(&out[12..], &(-2i64).to_le_bytes());
    }

    #[test]
    fn options_carry_presence_tags() {
        let mut some = Vec::new();
        push_opt_u64(&mut some, Some(7));
        let mut none = Vec::new();
        push_opt_u64(&mut none, None);
        assert_eq!(some[0], 1);
        assert_eq!(none, vec![0]);
        assert_ne!(some, none);

        let mut some_i = Vec::new();
        push_opt_i64(&mut some_i, Some(-7));
        assert_eq!(some_i.len(), 9);
    }

    #[test]
    fn byte_payloads_are_length_prefixed() {
        // Without the prefix "ab" + "c" and "a" + "bc" would collide.
        let mut left = Vec::new();
        push_bytes(&mut left, b"ab");
        push_bytes(&mut left, b"c");
        let mut right = Vec::new();
        push_bytes(&mut right, b"a");
        push_bytes(&mut right, b"bc");
        assert_ne!(left, right);
    }
}
