//! The **Look** operation: local directions, positions and snapshots.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Not;

/// A direction in the agent's own (private) frame.
///
/// The mapping of `Left`/`Right` onto the global clockwise/counter-clockwise
/// directions is the agent's handedness and is resolved by the engine; the
/// protocol never learns it (unless the scenario has chirality, in which case
/// all agents share the same mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalDirection {
    /// The agent's local `left`.
    Left,
    /// The agent's local `right`.
    Right,
}

impl LocalDirection {
    /// The opposite local direction.
    ///
    /// ```
    /// use dynring_model::LocalDirection;
    /// assert_eq!(LocalDirection::Left.opposite(), LocalDirection::Right);
    /// ```
    #[must_use]
    pub const fn opposite(self) -> Self {
        match self {
            LocalDirection::Left => LocalDirection::Right,
            LocalDirection::Right => LocalDirection::Left,
        }
    }

    /// Both local directions in a fixed order.
    #[must_use]
    pub const fn both() -> [LocalDirection; 2] {
        [LocalDirection::Left, LocalDirection::Right]
    }
}

impl Not for LocalDirection {
    type Output = LocalDirection;

    fn not(self) -> Self::Output {
        self.opposite()
    }
}

impl fmt::Display for LocalDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocalDirection::Left => write!(f, "left"),
            LocalDirection::Right => write!(f, "right"),
        }
    }
}

/// Where the agent currently stands *within* its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalPosition {
    /// In the body of the node (not holding any port).
    InNode,
    /// Positioned on (and holding) the port in the given local direction —
    /// typically because a previous traversal attempt found the edge missing.
    OnPort(LocalDirection),
}

impl LocalPosition {
    /// Whether the agent is in the node body.
    #[must_use]
    pub const fn is_in_node(self) -> bool {
        matches!(self, LocalPosition::InNode)
    }

    /// The port the agent holds, if any.
    #[must_use]
    pub const fn held_port(self) -> Option<LocalDirection> {
        match self {
            LocalPosition::InNode => None,
            LocalPosition::OnPort(d) => Some(d),
        }
    }
}

impl fmt::Display for LocalPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocalPosition::InNode => write!(f, "in-node"),
            LocalPosition::OnPort(d) => write!(f, "on-{d}-port"),
        }
    }
}

/// Outcome of the agent's previous activation, as visible to the agent itself
/// (its private `moved` flag and the port-access result).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PriorOutcome {
    /// First activation, or the previous decision did not attempt a move.
    #[default]
    Idle,
    /// The previous traversal attempt succeeded (`moved = true`).
    Moved,
    /// The agent positioned itself on the port but the edge was missing; it
    /// is still waiting on that port (`moved = false`).
    BlockedOnPort,
    /// The agent could not even acquire the port because another agent held
    /// it — the paper's `failed` predicate (`moved = false`).
    PortAcquisitionFailed,
    /// Passive Transport only: while the agent was asleep on a port the edge
    /// reappeared and the agent was carried to the other endpoint.
    Transported,
}

impl PriorOutcome {
    /// Whether the previous activation ended with a successful change of node
    /// (an active move or a passive transport).
    #[must_use]
    pub const fn changed_node(self) -> bool {
        matches!(self, PriorOutcome::Moved | PriorOutcome::Transported)
    }
}

/// The other agents the **Look** operation reveals at the agent's node.
///
/// Counts exclude the observing agent itself. `on_left_port` / `on_right_port`
/// are expressed in the *observing agent's* frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct NodeOccupancy {
    /// Other agents standing in the node body.
    pub in_node: usize,
    /// Other agents holding the port in the observer's `left` direction.
    pub on_left_port: usize,
    /// Other agents holding the port in the observer's `right` direction.
    pub on_right_port: usize,
}

impl NodeOccupancy {
    /// Total number of other agents visible at this node.
    #[must_use]
    pub const fn total(&self) -> usize {
        self.in_node + self.on_left_port + self.on_right_port
    }

    /// Number of other agents on the port in the given local direction.
    #[must_use]
    pub const fn on_port(&self, dir: LocalDirection) -> usize {
        match dir {
            LocalDirection::Left => self.on_left_port,
            LocalDirection::Right => self.on_right_port,
        }
    }
}

/// The full result of a **Look** operation.
///
/// This is all the information a protocol may use in its **Compute** step,
/// together with its own persistent memory.
///
/// ```
/// use dynring_model::{Snapshot, LocalPosition, LocalDirection, NodeOccupancy, PriorOutcome};
///
/// let snap = Snapshot {
///     position: LocalPosition::InNode,
///     is_landmark: false,
///     occupancy: NodeOccupancy { in_node: 0, on_left_port: 1, on_right_port: 0 },
///     prior: PriorOutcome::Moved,
///     round_hint: None,
/// };
/// // The paper's `catches` predicate: the observer is in the node and sees
/// // another agent on the port in its moving direction.
/// assert!(snap.catches(LocalDirection::Left));
/// assert!(!snap.catches(LocalDirection::Right));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Snapshot {
    /// The agent's own position within the node.
    pub position: LocalPosition,
    /// Whether this node is the landmark (always `false` on anonymous rings).
    pub is_landmark: bool,
    /// The other agents visible at this node.
    pub occupancy: NodeOccupancy,
    /// The outcome of the agent's previous activation.
    pub prior: PriorOutcome,
    /// Round number, provided **only** in fully synchronous scenarios where
    /// agents may count rounds implicitly (every agent is activated every
    /// round, so this carries no extra information); `None` under SSYNC.
    pub round_hint: Option<u64>,
}

impl Snapshot {
    /// The paper's `meeting` predicate: the observer stands in the node and at
    /// least one other agent stands in the node as well.
    #[must_use]
    pub fn meeting(&self) -> bool {
        self.position.is_in_node() && self.occupancy.in_node > 0
    }

    /// The paper's `catches` predicate: the observer is in the node and sees
    /// another agent on the port corresponding to `moving_direction`.
    #[must_use]
    pub fn catches(&self, moving_direction: LocalDirection) -> bool {
        self.position.is_in_node() && self.occupancy.on_port(moving_direction) > 0
    }

    /// The paper's `caught` predicate: the observer is on a port after a
    /// failed move (the edge was missing) and another agent is observed in
    /// the node.
    #[must_use]
    pub fn caught(&self) -> bool {
        matches!(self.position, LocalPosition::OnPort(_))
            && self.prior == PriorOutcome::BlockedOnPort
            && self.occupancy.in_node > 0
    }

    /// The paper's `failed` predicate: the previous attempt to enter a port
    /// was denied because the port was already occupied.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.prior == PriorOutcome::PortAcquisitionFailed
    }

    /// Whether any other agent is visible at this node (in the node body or
    /// on either port).
    #[must_use]
    pub fn sees_other_agent(&self) -> bool {
        self.occupancy.total() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior: PriorOutcome::Idle,
            round_hint: None,
        }
    }

    #[test]
    fn local_direction_opposite_is_involution() {
        for d in LocalDirection::both() {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(!(!d), d);
        }
        assert_eq!(LocalDirection::Left.to_string(), "left");
        assert_eq!(LocalDirection::Right.to_string(), "right");
    }

    #[test]
    fn local_position_helpers() {
        assert!(LocalPosition::InNode.is_in_node());
        assert_eq!(LocalPosition::InNode.held_port(), None);
        let p = LocalPosition::OnPort(LocalDirection::Right);
        assert!(!p.is_in_node());
        assert_eq!(p.held_port(), Some(LocalDirection::Right));
        assert_eq!(p.to_string(), "on-right-port");
    }

    #[test]
    fn prior_outcome_changed_node() {
        assert!(PriorOutcome::Moved.changed_node());
        assert!(PriorOutcome::Transported.changed_node());
        assert!(!PriorOutcome::BlockedOnPort.changed_node());
        assert!(!PriorOutcome::PortAcquisitionFailed.changed_node());
        assert!(!PriorOutcome::Idle.changed_node());
    }

    #[test]
    fn occupancy_counts() {
        let occ = NodeOccupancy { in_node: 2, on_left_port: 1, on_right_port: 0 };
        assert_eq!(occ.total(), 3);
        assert_eq!(occ.on_port(LocalDirection::Left), 1);
        assert_eq!(occ.on_port(LocalDirection::Right), 0);
    }

    #[test]
    fn meeting_requires_both_in_node() {
        let mut s = base();
        assert!(!s.meeting());
        s.occupancy.in_node = 1;
        assert!(s.meeting());
        s.position = LocalPosition::OnPort(LocalDirection::Left);
        assert!(!s.meeting());
    }

    #[test]
    fn catches_requires_observer_in_node_and_other_on_moving_port() {
        let mut s = base();
        s.occupancy.on_right_port = 1;
        assert!(s.catches(LocalDirection::Right));
        assert!(!s.catches(LocalDirection::Left));
        s.position = LocalPosition::OnPort(LocalDirection::Left);
        assert!(!s.catches(LocalDirection::Right));
    }

    #[test]
    fn caught_requires_blocked_on_port_and_other_in_node() {
        let mut s = base();
        s.position = LocalPosition::OnPort(LocalDirection::Left);
        s.prior = PriorOutcome::BlockedOnPort;
        assert!(!s.caught());
        s.occupancy.in_node = 1;
        assert!(s.caught());
        s.prior = PriorOutcome::Moved;
        assert!(!s.caught());
        s.prior = PriorOutcome::BlockedOnPort;
        s.position = LocalPosition::InNode;
        assert!(!s.caught());
    }

    #[test]
    fn failed_predicate_tracks_port_acquisition() {
        let mut s = base();
        assert!(!s.failed());
        s.prior = PriorOutcome::PortAcquisitionFailed;
        assert!(s.failed());
    }

    #[test]
    fn sees_other_agent() {
        let mut s = base();
        assert!(!s.sees_other_agent());
        s.occupancy.on_left_port = 1;
        assert!(s.sees_other_agent());
    }
}
