//! Agent-facing model types for live exploration of dynamic rings.
//!
//! This crate defines everything an exploration *protocol* is allowed to see
//! and produce, strictly following the model of Section 2 of
//! *Live Exploration of Dynamic Rings* (Di Luna, Dobrev, Flocchini, Santoro):
//!
//! * [`LocalDirection`] — `left` / `right` in the agent's private frame;
//! * [`Snapshot`] — the result of the **Look** operation: the agent's own
//!   position within the node (in the node or on one of the two ports), the
//!   positions of the other agents co-located at that node, the landmark
//!   flag, and the outcome of the agent's previous attempt (moved, blocked on
//!   a missing edge, failed to acquire the port, passively transported);
//! * [`Decision`] — the result of the **Compute** operation: a direction
//!   (`left`, `right`) or `nil`, possibly together with explicit termination;
//! * [`Knowledge`] — what the agent knows a priori (`n`, an upper bound `N`,
//!   chirality, landmark presence);
//! * [`Protocol`] — the trait every algorithm implements, together with the
//!   [`TerminationKind`] it promises (explicit / partial / unconscious).
//!
//! The crate deliberately contains no engine or algorithm logic, so that the
//! strict information barrier of the model ("agents see only their own node")
//! is enforced by the type system: a [`Protocol`] can only be written against
//! [`Snapshot`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decision;
pub mod knowledge;
pub mod protocol;
pub mod snapshot;
pub mod statekey;

pub use decision::Decision;
pub use knowledge::{Knowledge, ScenarioAssumptions, SynchronyModel, TransportModel};
pub use protocol::{clone_state_from, BoxedProtocol, Protocol, TerminationKind};
pub use snapshot::{LocalDirection, LocalPosition, NodeOccupancy, PriorOutcome, Snapshot};
