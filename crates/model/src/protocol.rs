//! The protocol trait implemented by every exploration algorithm.

use crate::decision::Decision;
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The termination discipline an algorithm promises (Section 1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminationKind {
    /// Every agent eventually enters a terminal state and stops moving.
    Explicit,
    /// At least one agent eventually enters a terminal state and stops
    /// moving (the others may keep moving or wait on a port forever).
    Partial,
    /// Agents are never required to stop (unconscious exploration).
    Unconscious,
}

impl fmt::Display for TerminationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationKind::Explicit => write!(f, "explicit termination"),
            TerminationKind::Partial => write!(f, "partial termination"),
            TerminationKind::Unconscious => write!(f, "unconscious exploration"),
        }
    }
}

/// A deterministic exploration protocol executed identically by every agent.
///
/// The engine drives a protocol through the Look–Compute–Move cycle: on every
/// activation it presents the [`Snapshot`] produced by **Look** and receives
/// the [`Decision`] produced by **Compute**. All persistent memory lives in
/// the implementing type.
///
/// Protocols must be deterministic (the paper's algorithms all are), which the
/// engine exploits in two ways:
///
/// * adversaries may *predict* an agent's decision by cloning the protocol
///   (via [`Protocol::clone_box`]) and dry-running it, exactly as the
///   omniscient adversaries in the impossibility proofs do;
/// * recorded executions can be replayed.
///
/// # Dispatch
///
/// `Box<dyn Protocol>` is the open extension point: any user-defined type
/// implementing this trait can join a simulation. A *closed* set of
/// protocols can additionally be wrapped in an enum that implements
/// `Protocol` by a static `match` over its variants, trading virtual calls
/// for inlinable direct dispatch — `dynring_core::CatalogProtocol` does
/// exactly this for the paper's nine-algorithm catalogue, and the engine
/// runs both representations side by side (see `docs/ARCHITECTURE.md`,
/// "The dispatch story"). Nothing in this trait is aware of the
/// distinction; enum wrappers simply forward every method.
///
/// # Implementing
///
/// ```
/// use dynring_model::{Decision, LocalDirection, Protocol, Snapshot, TerminationKind};
///
/// /// An agent that walks left forever (it cannot explore alone — Corollary 1).
/// #[derive(Debug, Clone, Default)]
/// struct LeftWalker;
///
/// impl Protocol for LeftWalker {
///     fn name(&self) -> &'static str { "left-walker" }
///     fn termination_kind(&self) -> TerminationKind { TerminationKind::Unconscious }
///     fn decide(&mut self, _snapshot: &Snapshot) -> Decision {
///         Decision::Move(LocalDirection::Left)
///     }
///     fn has_terminated(&self) -> bool { false }
///     fn clone_box(&self) -> Box<dyn Protocol> { Box::new(self.clone()) }
/// }
/// ```
///
/// # Thread safety
///
/// Protocols are `Send + Sync`: all mutation happens through `&mut self`
/// (the engine owns each agent's program exclusively), and the model
/// checker's parallel search shares frozen checkpoints — which embed program
/// state — across worker threads by reference. Protocols therefore cannot
/// use non-`Sync` interior mutability (`Cell`, `RefCell`, `Rc`); none needs
/// to, since `decide` takes `&mut self`.
pub trait Protocol: Send + Sync + fmt::Debug {
    /// A short, stable, human-readable name of the algorithm (used in traces,
    /// reports and benchmarks).
    fn name(&self) -> &'static str;

    /// The termination discipline this protocol is designed to achieve.
    fn termination_kind(&self) -> TerminationKind;

    /// One **Compute** step: given the snapshot of the current activation,
    /// return the decision for this round. Called only while the agent is
    /// active and not terminated.
    fn decide(&mut self, snapshot: &Snapshot) -> Decision;

    /// Whether the agent has entered its terminal state. Once `true`, the
    /// engine never activates the agent again and it never moves.
    ///
    /// Protocols whose [`Protocol::termination_kind`] is
    /// [`TerminationKind::Unconscious`] promise this is constantly `false`
    /// (unconscious exploration never stops); the engine relies on that and
    /// skips the per-round poll for them.
    fn has_terminated(&self) -> bool;

    /// Clones the protocol together with its full internal state.
    fn clone_box(&self) -> Box<dyn Protocol>;

    /// The protocol as a [`std::any::Any`] reference, enabling the in-place
    /// state copy of [`Protocol::clone_from_box`]. Protocols that opt into
    /// probe reuse return `Some(self)`; the default (`None`) makes every
    /// state copy fall back to a fresh [`Protocol::clone_box`].
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Copies `src`'s full internal state into `self` **in place**, returning
    /// whether the copy happened. A copy happens only when both protocols are
    /// the same concrete type (checked through [`Protocol::as_any`]); the
    /// default implementation refuses every copy, and callers then fall back
    /// to an owned [`Protocol::clone_box`].
    ///
    /// This is the allocation-free sibling of `clone_box`: the engine keeps a
    /// per-agent pool of *probe* instances and refreshes each probe from the
    /// live protocol every round instead of boxing a new clone, which is what
    /// makes omniscient-adversary predictions (the paper's impossibility
    /// constructions dry-run every agent every round) as cheap as the plain
    /// round loop. Implementors usually delegate to [`clone_state_from`]:
    ///
    /// ```
    /// use dynring_model::{
    ///     clone_state_from, Decision, LocalDirection, Protocol, Snapshot, TerminationKind,
    /// };
    ///
    /// #[derive(Debug, Clone, Default)]
    /// struct Pacer {
    ///     steps: u64,
    /// }
    ///
    /// impl Protocol for Pacer {
    ///     fn name(&self) -> &'static str { "pacer" }
    ///     fn termination_kind(&self) -> TerminationKind { TerminationKind::Unconscious }
    ///     fn decide(&mut self, _snapshot: &Snapshot) -> Decision {
    ///         self.steps += 1;
    ///         Decision::Move(LocalDirection::Left)
    ///     }
    ///     fn has_terminated(&self) -> bool { false }
    ///     fn clone_box(&self) -> Box<dyn Protocol> { Box::new(self.clone()) }
    ///     fn as_any(&self) -> Option<&dyn std::any::Any> { Some(self) }
    ///     fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
    ///         clone_state_from(self, src)
    ///     }
    /// }
    ///
    /// let live = Pacer { steps: 41 };
    /// let mut probe = Pacer { steps: 7 };
    /// assert!(probe.clone_from_box(&live));           // same type: copied in place
    /// assert_eq!(probe.steps, 41);
    ///
    /// #[derive(Debug, Clone, Default)]
    /// struct Other;
    /// # impl Protocol for Other {
    /// #     fn name(&self) -> &'static str { "other" }
    /// #     fn termination_kind(&self) -> TerminationKind { TerminationKind::Unconscious }
    /// #     fn decide(&mut self, _s: &Snapshot) -> Decision { Decision::Stay }
    /// #     fn has_terminated(&self) -> bool { false }
    /// #     fn clone_box(&self) -> Box<dyn Protocol> { Box::new(self.clone()) }
    /// #     fn as_any(&self) -> Option<&dyn std::any::Any> { Some(self) }
    /// # }
    /// assert!(!probe.clone_from_box(&Other));         // type mismatch: refused
    /// assert_eq!(probe.steps, 41);
    /// ```
    fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
        let _ = src;
        false
    }

    /// A free-form description of the internal state for traces and
    /// debugging; the default implementation uses the `Debug` representation.
    fn state_label(&self) -> String {
        format!("{self:?}")
    }

    /// Appends a compact, **injective** binary encoding of the protocol's
    /// full observable state to `out`, returning whether the protocol
    /// supports packed keys. The default refuses (`false`, nothing written);
    /// callers then fall back to the `Debug`-string encoding.
    ///
    /// Implementors must emit every field that can influence any future
    /// [`Protocol::decide`] or [`Protocol::has_terminated`] answer, using the
    /// fixed-width helpers in [`crate::statekey`] so that distinct states
    /// never serialise to the same bytes. The exhaustive model checker builds
    /// its canonical per-state dedup key from this encoding — a collision
    /// between distinct states would silently prune reachable configurations
    /// and void the impossibility proofs, which is why injectivity (not
    /// compactness) is the load-bearing requirement.
    fn write_state_key(&self, out: &mut Vec<u8>) -> bool {
        let _ = out;
        false
    }
}

/// Copies `src`'s state into `dst` when `src` is also a `T`, returning
/// whether the copy happened. The copy goes through [`Clone::clone_from`], so
/// types that override it (reusing existing heap capacity) stay
/// allocation-free in the steady state.
///
/// This is the standard body of a [`Protocol::clone_from_box`] implementation;
/// see the trait method for a full example.
pub fn clone_state_from<T: Protocol + Clone + 'static>(dst: &mut T, src: &dyn Protocol) -> bool {
    match src.as_any().and_then(|any| any.downcast_ref::<T>()) {
        Some(concrete) => {
            dst.clone_from(concrete);
            true
        }
        None => false,
    }
}

/// Owned, type-erased protocol instance.
pub type BoxedProtocol = Box<dyn Protocol>;

impl Clone for BoxedProtocol {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{LocalDirection, LocalPosition, NodeOccupancy, PriorOutcome};

    #[derive(Debug, Clone)]
    struct Alternator {
        next_left: bool,
        steps: u32,
    }

    impl Protocol for Alternator {
        fn name(&self) -> &'static str {
            "alternator"
        }

        fn termination_kind(&self) -> TerminationKind {
            TerminationKind::Explicit
        }

        fn decide(&mut self, _snapshot: &Snapshot) -> Decision {
            self.steps += 1;
            if self.steps > 3 {
                return Decision::Terminate;
            }
            let dir = if self.next_left { LocalDirection::Left } else { LocalDirection::Right };
            self.next_left = !self.next_left;
            Decision::Move(dir)
        }

        fn has_terminated(&self) -> bool {
            self.steps > 3
        }

        fn clone_box(&self) -> BoxedProtocol {
            Box::new(self.clone())
        }
    }

    fn snap() -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior: PriorOutcome::Idle,
            round_hint: Some(1),
        }
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let mut original: BoxedProtocol = Box::new(Alternator { next_left: true, steps: 0 });
        assert_eq!(original.decide(&snap()), Decision::Move(LocalDirection::Left));
        let mut copy = original.clone();
        // Both the copy and the original continue from the same state.
        assert_eq!(copy.decide(&snap()), Decision::Move(LocalDirection::Right));
        assert_eq!(original.decide(&snap()), Decision::Move(LocalDirection::Right));
    }

    #[test]
    fn termination_flag_follows_decisions() {
        let mut p = Alternator { next_left: true, steps: 0 };
        for _ in 0..3 {
            assert!(!p.has_terminated());
            let _ = p.decide(&snap());
        }
        assert_eq!(p.decide(&snap()), Decision::Terminate);
        assert!(p.has_terminated());
        assert_eq!(p.name(), "alternator");
        assert_eq!(p.termination_kind(), TerminationKind::Explicit);
        assert!(p.state_label().contains("Alternator"));
    }

    #[test]
    fn termination_kind_display() {
        assert_eq!(TerminationKind::Explicit.to_string(), "explicit termination");
        assert_eq!(TerminationKind::Partial.to_string(), "partial termination");
        assert_eq!(TerminationKind::Unconscious.to_string(), "unconscious exploration");
    }
}
