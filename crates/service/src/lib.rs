//! Crash-safe sweep service: journaled job execution with resume, panic
//! isolation, and a deterministic fault-injection harness.
//!
//! Every other consumer of the engine is a fire-and-forget batch CLI: one
//! panicking cell aborts the whole battery, and a killed `--huge` sweep
//! restarts from zero. This crate is the robustness substrate under the
//! ROADMAP's sweep-service daemon:
//!
//! * [`job`] — a [`Job`] wraps any battery (sweeps, tables,
//!   figures, `--huge`) as an ordered list of [`Scenario`] cells, keyed by
//!   index plus a deterministic digest of the cell description;
//! * [`journal`] — an **append-only JSONL event store**
//!   (`job_started` / `cell_completed` / `cell_failed` / `cell_quarantined`
//!   / `job_finished`, fsync'd in batches) plus its replay/validation half;
//! * [`supervisor`] — the [`Supervisor`]: a
//!   worker-pool runtime with per-cell panic isolation
//!   (`BatchRunner::run_map_catching`), bounded retry with deterministic
//!   backoff, a per-job failure budget that degrades to a partial result +
//!   failure report, and journal-driven **resume** — a crashed or killed
//!   sweep picks up at the last durable cell boundary instead of
//!   restarting;
//! * [`fault`] — a [`FaultPlan`]: seeded, deterministic
//!   injection of cell panics, journal I/O errors and worker kills, used by
//!   the proptests to assert that every interleaving either completes or
//!   resumes losslessly.
//!
//! Because every cell is deterministic (the engine's determinism pins),
//! a report replayed from the journal is byte-identical to a fresh run of
//! the same cell — which is what makes the kill-and-resume round-trip
//! checkable, and checked (`tests/fault_resume.rs`, plus the CI SIGKILL
//! smoke on `examples/sweep_service.rs`).
//!
//! ```
//! use dynring_analysis::Scenario;
//! use dynring_core::Algorithm;
//! use dynring_service::{Job, Supervisor};
//!
//! let cells: Vec<Scenario> = (0..4)
//!     .map(|i| Scenario::fsync(6 + i, Algorithm::KnownBound { upper_bound: 6 + i }))
//!     .collect();
//! let job = Job::new("doc-battery", cells);
//! let path = std::env::temp_dir().join(format!("dynring-doc-{}.jsonl", std::process::id()));
//! let _ = std::fs::remove_file(&path);
//! let outcome = Supervisor::new().run(&job, &path).unwrap();
//! assert_eq!(outcome.completed(), 4);
//! // A second run resumes from the journal: nothing is re-executed.
//! let resumed = Supervisor::new().run(&job, &path).unwrap();
//! assert_eq!(resumed.resumed, 4);
//! assert_eq!(resumed.render(&job), outcome.render(&job));
//! std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dynring_analysis::Scenario;
use std::fmt;

pub mod fault;
pub mod job;
pub mod journal;
pub mod supervisor;

pub use fault::FaultPlan;
pub use job::{CellFailure, Job, JobOutcome, JobStatus};
pub use journal::{Journal, JournalEvent, Replay};
pub use supervisor::{Backoff, Supervisor};

/// Errors raised by the service layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// A journal I/O operation failed (includes injected faults).
    Io {
        /// What the service was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A journal line (other than a trailing partial line, which is the
    /// expected signature of a crash mid-write and is dropped) could not be
    /// parsed or replayed.
    Corrupt {
        /// 1-based line number in the journal.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The journal on disk belongs to a different job (id or cell list
    /// changed), so resuming from it would silently mix batteries.
    WrongJob {
        /// Fingerprint of the job being run.
        expected: u64,
        /// Fingerprint recorded in the journal.
        found: u64,
    },
    /// The fault plan killed a worker before the named cell (the simulated
    /// SIGKILL). The journal holds every cell completed so far; re-running
    /// the same job against the same journal resumes from there.
    Killed {
        /// The cell the killed worker was about to run.
        cell: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io { context, source } => {
                write!(f, "journal I/O failed while {context}: {source}")
            }
            ServiceError::Corrupt { line, message } => {
                write!(f, "journal line {line} is corrupt: {message}")
            }
            ServiceError::WrongJob { expected, found } => write!(
                f,
                "journal belongs to a different job (fingerprint {found:#018x}, \
                 this job is {expected:#018x}); delete it or point the job elsewhere"
            ),
            ServiceError::Killed { cell } => {
                write!(f, "worker killed by the fault plan before cell {cell}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a 64-bit, the digest primitive behind every journal key (cell
/// digests, job fingerprints, report digests). Stable across processes and
/// platforms, which is what lets a resumed process validate a journal
/// written by a killed one.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The deterministic digest of one scenario cell: FNV-1a over the
/// scenario's canonical `Debug` rendering (which contains no addresses, so
/// it is identical across processes of the same build — the property the
/// resume contract relies on).
#[must_use]
pub fn scenario_digest(scenario: &Scenario) -> u64 {
    fnv1a(format!("{scenario:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_core::Algorithm;

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn scenario_digest_distinguishes_cells_and_is_repeatable() {
        let a = Scenario::fsync(8, Algorithm::KnownBound { upper_bound: 8 });
        let b = Scenario::fsync(9, Algorithm::KnownBound { upper_bound: 9 });
        assert_eq!(scenario_digest(&a), scenario_digest(&a.clone()));
        assert_ne!(scenario_digest(&a), scenario_digest(&b));
    }

    #[test]
    fn errors_display_their_context() {
        let e = ServiceError::Io {
            context: "appending cell_completed".into(),
            source: std::io::Error::other("disk on fire"),
        };
        assert!(e.to_string().contains("appending cell_completed"));
        assert!(e.to_string().contains("disk on fire"));
        assert!(ServiceError::Corrupt { line: 3, message: "x".into() }.to_string().contains("3"));
        assert!(ServiceError::Killed { cell: 7 }.to_string().contains("7"));
        let wrong = ServiceError::WrongJob { expected: 1, found: 2 };
        assert!(wrong.to_string().contains("different job"));
    }
}
