//! The supervised worker-pool runtime: runs a [`Job`] chunk by chunk on a
//! [`BatchRunner`] pool, journaling every cell transition so a crashed or
//! killed process resumes from the last durable cell boundary.
//!
//! The execution shape is a **wave loop**: take up to `chunk` pending
//! cells, run them with per-cell panic isolation
//! ([`BatchRunner::run_map_catching`]), journal each result, then
//! `commit()` (fsync) the wave. A SIGKILL therefore loses at most the
//! in-flight wave; everything journaled before it replays on resume.
//! Failed cells re-enter the queue with a bounded, deterministically
//! backed-off retry; cells that exhaust the retry budget are quarantined
//! (journaled, reported, and excluded — the sweep goes on). A per-job
//! failure budget degrades the whole job to a partial result once too many
//! cells quarantine, instead of grinding through a battery that is clearly
//! broken.

use crate::fault::FaultPlan;
use crate::job::{CellFailure, Job, JobOutcome, JobStatus};
use crate::journal::{self, FileSink, Journal, JournalEvent, Replay};
use crate::ServiceError;
use dynring_analysis::batch::{batch_lanes_from_env, BatchRunner, WorkerPanic};
use dynring_analysis::scenario::{Scenario, ScenarioBatchRunner, ScenarioRunner};
use dynring_engine::sim::RunReport;
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::time::Duration;

/// Deterministic exponential backoff between retry attempts of one cell:
/// `delay(attempt) = min(cap, base << (attempt - 1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the second attempt (the first retry).
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Backoff {
    /// No waiting at all — the default, and what tests use.
    #[must_use]
    pub fn none() -> Self {
        Backoff { base: Duration::ZERO, cap: Duration::ZERO }
    }

    /// The delay before retrying after `attempt` (1-based) failed.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        (self.base * factor).min(self.cap)
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::none()
    }
}

/// The job runtime. Construct with [`Supervisor::new`], tune with the
/// builder methods, execute with [`Supervisor::run`].
#[derive(Debug, Clone)]
pub struct Supervisor {
    threads: usize,
    chunk: usize,
    fsync_every: usize,
    max_attempts: u32,
    failure_budget: usize,
    backoff: Backoff,
    throttle: Duration,
    fault: FaultPlan,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            threads: BatchRunner::from_env().threads(),
            chunk: 16,
            fsync_every: 8,
            max_attempts: 3,
            failure_budget: usize::MAX,
            backoff: Backoff::none(),
            throttle: Duration::ZERO,
            fault: FaultPlan::none(),
        }
    }
}

impl Supervisor {
    /// A supervisor with default tuning: pool size from `DYNRING_THREADS`
    /// (or all cores), chunk 16, fsync every 8 events, 3 attempts per cell,
    /// unlimited failure budget, no backoff, no faults.
    #[must_use]
    pub fn new() -> Self {
        Supervisor::default()
    }

    /// Worker pool size (clamped to at least 1).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Cells per wave: the unit of journaling/fsync, and therefore the
    /// most work a kill can lose (clamped to at least 1).
    #[must_use]
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Fsync batch size inside a wave (clamped to at least 1; every wave
    /// ends with an unconditional fsync regardless).
    #[must_use]
    pub fn fsync_every(mut self, fsync_every: usize) -> Self {
        self.fsync_every = fsync_every.max(1);
        self
    }

    /// Attempts per cell before quarantine (clamped to at least 1).
    #[must_use]
    pub fn max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// How many quarantined cells the job tolerates before degrading to a
    /// partial result (remaining cells are skipped, not run).
    #[must_use]
    pub fn failure_budget(mut self, budget: usize) -> Self {
        self.failure_budget = budget;
        self
    }

    /// Retry backoff policy.
    #[must_use]
    pub fn backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sleeps this long inside every cell execution. Exists to widen the
    /// kill window for the CI crash-resume smoke; leave at zero otherwise.
    #[must_use]
    pub fn throttle(mut self, throttle: Duration) -> Self {
        self.throttle = throttle;
        self
    }

    /// Installs a fault plan (tests only; production runs keep
    /// [`FaultPlan::none`]).
    #[must_use]
    pub fn fault_plan(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Runs `job`, journaling to `journal_path`. If the journal already
    /// exists it is replayed first and only the cells it does not settle
    /// are executed; a journal closed by `job_finished` short-circuits to
    /// the recorded outcome without running anything.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] on journal I/O failure (real or injected),
    /// [`ServiceError::Corrupt`] / [`ServiceError::WrongJob`] if the
    /// existing journal does not validate against `job`, and
    /// [`ServiceError::Killed`] when the fault plan kills the worker pool
    /// (the journal retains everything committed before the kill).
    pub fn run(&self, job: &Job, journal_path: &Path) -> Result<JobOutcome, ServiceError> {
        let existing = std::fs::metadata(journal_path).map(|m| m.len() > 0).unwrap_or(false);
        let replayed = if existing {
            journal::replay(journal_path, job)?
        } else {
            Replay::default()
        };
        let resumed = replayed.completed.len();
        if replayed.finished {
            // Terminal journal: the outcome is fully recorded; nothing runs
            // and nothing is appended.
            return Ok(assemble(job, &replayed, collect_skipped(job, &replayed), resumed));
        }

        let sink = FileSink::open(journal_path).map_err(|source| ServiceError::Io {
            context: format!("opening journal {}", journal_path.display()),
            source,
        })?;
        let mut journal = Journal::new(self.fault.wrap_sink(Box::new(sink)), self.fsync_every);
        let io = |context: &str| {
            let context = context.to_owned();
            move |source: std::io::Error| ServiceError::Io { context, source }
        };

        // Queue of (cell, next attempt). Completed and quarantined cells
        // are terminal; failed-but-retryable cells resume at the attempt
        // after their last journaled failure.
        let mut pending: VecDeque<(usize, u32)> = (0..job.len())
            .filter(|i| {
                !replayed.completed.contains_key(i) && !replayed.quarantined.contains_key(i)
            })
            .map(|i| (i, replayed.attempts.get(&i).copied().unwrap_or(0) + 1))
            .collect();

        if existing {
            journal
                .append(&JournalEvent::JobResumed { pending: pending.len() })
                .map_err(io("appending job_resumed"))?;
        } else {
            journal
                .append(&JournalEvent::JobStarted {
                    job_id: job.id().to_owned(),
                    fingerprint: job.fingerprint(),
                    cells: job.len(),
                })
                .map_err(io("appending job_started"))?;
        }

        let mut completed: BTreeMap<usize, RunReport> =
            replayed.completed.iter().map(|(i, (_, r))| (*i, r.clone())).collect();
        let mut quarantined: BTreeMap<usize, CellFailure> = replayed.quarantined.clone();
        let runner = BatchRunner::new(self.threads);

        while let Some(wave) = self.next_wave(&mut pending, quarantined.len()) {
            let (items, kill_at) = wave;
            if items.is_empty() {
                // Kill planned at the very front of the wave: nothing runs.
                journal.commit().map_err(io("committing before kill"))?;
                return Err(ServiceError::Killed { cell: kill_at.expect("empty wave has a kill") });
            }

            // Consecutive first-attempt cells with the same batch shape ride
            // the engine's batched lockstep path as one lane group; retries
            // and shape changes run as singleton groups (which
            // `ScenarioBatchRunner` executes on its solo path).
            let groups = batch_waves(job, &items);
            let grouped = runner.run_map_catching(
                &groups,
                ScenarioBatchRunner::new,
                |local, range: &std::ops::Range<usize>| {
                    let members = &items[range.clone()];
                    for (index, attempt) in members {
                        self.fault.maybe_panic(*index, *attempt);
                        if !self.throttle.is_zero() {
                            std::thread::sleep(self.throttle);
                        }
                    }
                    let cells: Vec<Scenario> =
                        members.iter().map(|(index, _)| job.cells()[*index].clone()).collect();
                    local.run_group(&cells)
                },
            );

            // A panic poisons its whole lane group, but only the offending
            // cells deserve the failure: salvage a poisoned multi-cell group
            // by re-running its members solo with per-cell isolation (the
            // fault is a deterministic function of (cell, attempt), so the
            // culprits fail again and the innocents produce their reports —
            // byte-identical to the batched run, per the engine's
            // equivalence guarantee).
            let mut results: Vec<Result<RunReport, WorkerPanic>> =
                Vec::with_capacity(items.len());
            for (range, outcome) in groups.iter().zip(grouped) {
                match outcome {
                    Ok(reports) => results.extend(reports.into_iter().map(Ok)),
                    Err(panic) if range.len() == 1 => results.push(Err(panic)),
                    Err(_) => {
                        let members = &items[range.clone()];
                        results.extend(runner.run_map_catching(
                            members,
                            ScenarioRunner::new,
                            |local, (index, attempt): &(usize, u32)| {
                                self.fault.maybe_panic(*index, *attempt);
                                if !self.throttle.is_zero() {
                                    std::thread::sleep(self.throttle);
                                }
                                local.run(&job.cells()[*index])
                            },
                        ));
                    }
                }
            }

            for ((index, attempt), result) in items.iter().copied().zip(results) {
                match result {
                    Ok(report) => {
                        journal
                            .append(&JournalEvent::CellCompleted {
                                index,
                                attempt,
                                digest: journal::report_digest(&report),
                                report: report.clone(),
                            })
                            .map_err(io("appending cell_completed"))?;
                        completed.insert(index, report);
                    }
                    Err(panic) => {
                        journal
                            .append(&JournalEvent::CellFailed {
                                index,
                                attempt,
                                error: panic.message.clone(),
                            })
                            .map_err(io("appending cell_failed"))?;
                        if attempt >= self.max_attempts {
                            journal
                                .append(&JournalEvent::CellQuarantined {
                                    index,
                                    attempts: attempt,
                                    error: panic.message.clone(),
                                })
                                .map_err(io("appending cell_quarantined"))?;
                            quarantined.insert(
                                index,
                                CellFailure { index, attempts: attempt, error: panic.message },
                            );
                        } else {
                            let delay = self.backoff.delay(attempt);
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                            // Retry at the *front*: a cell is settled
                            // (completed or quarantined) before the queue
                            // moves on, so the failure budget can stop a
                            // clearly-broken battery before burning through
                            // its tail.
                            pending.push_front((index, attempt + 1));
                        }
                    }
                }
            }
            // The wave boundary: everything above is now on stable storage.
            journal.commit().map_err(io("committing wave"))?;
            if let Some(cell) = kill_at {
                return Err(ServiceError::Killed { cell });
            }
        }

        // Whatever is still pending was skipped by the failure budget.
        let skipped: Vec<usize> = {
            let mut cells: Vec<usize> = pending.iter().map(|(i, _)| *i).collect();
            cells.sort_unstable();
            cells.dedup();
            cells
        };
        let outcome = finish(job, completed, quarantined, skipped, resumed);
        journal
            .append(&JournalEvent::JobFinished {
                completed: outcome.completed(),
                quarantined: outcome.failures.len(),
                digest: outcome.digest(),
            })
            .map_err(io("appending job_finished"))?;
        journal.commit().map_err(io("committing job_finished"))?;
        Ok(outcome)
    }

    /// Takes the next wave off the queue: up to `chunk` items, truncated at
    /// the first cell the fault plan kills before (that cell and everything
    /// after it stay pending — mirroring a SIGKILL, which also leaves them
    /// unjournaled). Returns `None` when the queue is empty or the failure
    /// budget is exhausted (remaining cells stay in `pending` as skipped).
    #[allow(clippy::type_complexity)]
    fn next_wave(
        &self,
        pending: &mut VecDeque<(usize, u32)>,
        failures: usize,
    ) -> Option<(Vec<(usize, u32)>, Option<usize>)> {
        if pending.is_empty() || failures > self.failure_budget {
            return None;
        }
        let mut items = Vec::with_capacity(self.chunk.min(pending.len()));
        let mut kill_at = None;
        while items.len() < self.chunk {
            let Some(&(index, _)) = pending.front() else { break };
            if self.fault.kills_before(index) {
                kill_at = Some(index);
                break;
            }
            items.push(pending.pop_front().expect("front checked above"));
        }
        Some((items, kill_at))
    }
}

/// Partitions a wave's items into the lane groups the batched engine path
/// can take in one go: maximal runs of consecutive **first-attempt** cells
/// with the same batch shape, capped at the `DYNRING_BATCH_LANES` lane
/// count. Retries always run as singletons — a retried cell is under
/// suspicion, and keeping it out of a lane group keeps a repeat panic
/// scoped to itself from the start.
fn batch_waves(job: &Job, items: &[(usize, u32)]) -> Vec<std::ops::Range<usize>> {
    let max_lanes = batch_lanes_from_env();
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < items.len() {
        let (index, attempt) = items[start];
        let first = &job.cells()[index];
        let mut end = start + 1;
        while attempt == 1
            && end < items.len()
            && end - start < max_lanes
            && items[end].1 == 1
            && first.same_batch_shape(&job.cells()[items[end].0])
        {
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Collects the cells a replayed journal leaves unsettled (used when the
/// journal was already finished: those cells were recorded as skipped).
fn collect_skipped(job: &Job, replayed: &Replay) -> Vec<usize> {
    (0..job.len())
        .filter(|i| !replayed.completed.contains_key(i) && !replayed.quarantined.contains_key(i))
        .collect()
}

/// Builds the outcome for a journal that was already closed.
fn assemble(job: &Job, replayed: &Replay, skipped: Vec<usize>, resumed: usize) -> JobOutcome {
    finish(
        job,
        replayed.completed.iter().map(|(i, (_, r))| (*i, r.clone())).collect(),
        replayed.quarantined.clone(),
        skipped,
        resumed,
    )
}

fn finish(
    job: &Job,
    completed: BTreeMap<usize, RunReport>,
    quarantined: BTreeMap<usize, CellFailure>,
    skipped: Vec<usize>,
    resumed: usize,
) -> JobOutcome {
    let mut completed = completed;
    let reports: Vec<Option<RunReport>> =
        (0..job.len()).map(|i| completed.remove(&i)).collect();
    let failures: Vec<CellFailure> = quarantined.into_values().collect();
    let status = if !skipped.is_empty() {
        JobStatus::Partial
    } else if failures.is_empty() {
        JobStatus::Complete
    } else {
        JobStatus::CompleteWithFailures
    };
    JobOutcome { job_id: job.id().to_owned(), reports, failures, skipped, resumed, status }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::INJECTED_FAULT_MARKER;
    use dynring_analysis::Scenario;
    use dynring_core::Algorithm;

    fn battery(cells: usize) -> Job {
        let cells: Vec<Scenario> = (0..cells)
            .map(|i| Scenario::fsync(6 + i, Algorithm::KnownBound { upper_bound: 6 + i }))
            .collect();
        Job::new("test-battery", cells)
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir()
            .join(format!("dynring-supervisor-{tag}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn clean_run_completes_and_journal_short_circuits() {
        let job = battery(5);
        let path = temp_journal("clean");
        let sup = Supervisor::new().threads(2).chunk(2);
        let outcome = sup.run(&job, &path).unwrap();
        assert_eq!(outcome.status, JobStatus::Complete);
        assert_eq!(outcome.completed(), 5);
        assert_eq!(outcome.resumed, 0);
        // Re-running against the finished journal replays, never executes.
        let again = sup.run(&job, &path).unwrap();
        assert_eq!(again.resumed, 5);
        assert_eq!(again.render(&job), outcome.render(&job));
        assert_eq!(again.digest(), outcome.digest());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transient_panic_retries_and_completes() {
        let job = battery(4);
        let path = temp_journal("transient");
        let outcome = Supervisor::new()
            .threads(1)
            .fault_plan(FaultPlan::none().with_panic(2, 1))
            .run(&job, &path)
            .unwrap();
        assert_eq!(outcome.status, JobStatus::Complete);
        assert_eq!(outcome.completed(), 4);
        // The journal records the failed first attempt.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("cell_failed"), "{text}");
        assert!(text.contains(INJECTED_FAULT_MARKER));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persistent_panic_quarantines_without_aborting() {
        let job = battery(4);
        let path = temp_journal("quarantine");
        let outcome = Supervisor::new()
            .threads(2)
            .max_attempts(3)
            .fault_plan(FaultPlan::none().with_persistent_panic(1, 3))
            .run(&job, &path)
            .unwrap();
        assert_eq!(outcome.status, JobStatus::CompleteWithFailures);
        assert_eq!(outcome.completed(), 3);
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 1);
        assert_eq!(outcome.failures[0].attempts, 3);
        assert!(outcome.reports[1].is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failure_budget_degrades_to_partial() {
        let job = battery(6);
        let path = temp_journal("budget");
        let plan = FaultPlan::none()
            .with_persistent_panic(0, 2)
            .with_persistent_panic(1, 2);
        let outcome = Supervisor::new()
            .threads(1)
            .chunk(1)
            .max_attempts(2)
            .failure_budget(1)
            .fault_plan(plan)
            .run(&job, &path)
            .unwrap();
        assert_eq!(outcome.status, JobStatus::Partial);
        assert_eq!(outcome.failures.len(), 2);
        assert!(!outcome.skipped.is_empty(), "budget must skip the tail");
        let rendered = outcome.render(&job);
        assert!(rendered.contains("SKIPPED"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kill_and_resume_is_byte_identical_to_uninterrupted() {
        let job = battery(8);
        // Uninterrupted reference.
        let reference_path = temp_journal("kill-reference");
        let reference = Supervisor::new().threads(2).run(&job, &reference_path).unwrap();
        // Killed before cell 5, then resumed without the kill.
        let path = temp_journal("kill");
        let sup = Supervisor::new().threads(2).chunk(3);
        let killed = sup
            .clone()
            .fault_plan(FaultPlan::none().with_kill_before(5))
            .run(&job, &path)
            .unwrap_err();
        assert!(matches!(killed, ServiceError::Killed { cell: 5 }));
        let resumed = sup.run(&job, &path).unwrap();
        assert!(resumed.resumed > 0, "resume must reuse journaled cells");
        assert_eq!(resumed.render(&job), reference.render(&job));
        assert_eq!(resumed.digest(), reference.digest());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&reference_path).unwrap();
    }

    #[test]
    fn injected_journal_io_error_surfaces_and_resume_recovers() {
        let job = battery(4);
        let path = temp_journal("io");
        let sup = Supervisor::new().threads(1).chunk(1);
        let err = sup
            .clone()
            .fault_plan(FaultPlan::none().with_io_error(2))
            .run(&job, &path)
            .unwrap_err();
        assert!(matches!(err, ServiceError::Io { .. }), "{err}");
        assert!(err.to_string().contains(INJECTED_FAULT_MARKER));
        // Resume without the fault finishes the job.
        let reference_path = temp_journal("io-reference");
        let reference = sup.run(&job, &reference_path).unwrap();
        let resumed = sup.run(&job, &path).unwrap();
        assert_eq!(resumed.render(&job), reference.render(&job));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&reference_path).unwrap();
    }

    #[test]
    fn resuming_against_the_wrong_job_is_refused() {
        let job = battery(3);
        let path = temp_journal("wrong");
        Supervisor::new().run(&job, &path).unwrap();
        let other = Job::new("other-battery", job.cells().to_vec());
        let err = Supervisor::new().run(&other, &path).unwrap_err();
        assert!(matches!(err, ServiceError::WrongJob { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trailing_partial_line_is_dropped_on_resume() {
        let job = battery(4);
        let path = temp_journal("partial");
        let reference_path = temp_journal("partial-reference");
        let sup = Supervisor::new().threads(1).chunk(2);
        let reference = sup.run(&job, &reference_path).unwrap();
        // Kill mid-run, then simulate the crash-mid-write signature by
        // appending a truncated line.
        let err = sup
            .clone()
            .fault_plan(FaultPlan::none().with_kill_before(2))
            .run(&job, &path)
            .unwrap_err();
        assert!(matches!(err, ServiceError::Killed { .. }));
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "{{\"event\":\"cell_comp").unwrap();
        drop(file);
        let resumed = sup.run(&job, &path).unwrap();
        assert_eq!(resumed.render(&job), reference.render(&job));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&reference_path).unwrap();
    }

    /// A battery where every cell shares one batch shape (ring 8, two
    /// agents, same budget/stop) while placements and adversaries vary —
    /// so supervisor waves actually form multi-cell lane groups.
    fn same_shape_battery(cells: usize) -> Job {
        let cells: Vec<Scenario> = (0..cells)
            .map(|i| {
                Scenario::fsync(8, Algorithm::KnownBound { upper_bound: 8 })
                    .with_starts(vec![i % 8, (i + 3) % 8])
            })
            .collect();
        Job::new("same-shape-battery", cells)
    }

    #[test]
    fn panic_inside_a_lane_group_quarantines_only_the_offending_cell() {
        let job = same_shape_battery(6);
        let path = temp_journal("batched-quarantine");
        // All six cells fit one wave and one lane group; cell 3 panics on
        // every attempt. Only cell 3 may quarantine — its five lane-mates
        // must come back with reports identical to running them alone.
        let outcome = Supervisor::new()
            .threads(1)
            .max_attempts(2)
            .fault_plan(FaultPlan::none().with_persistent_panic(3, 2))
            .run(&job, &path)
            .unwrap();
        assert_eq!(outcome.status, JobStatus::CompleteWithFailures);
        assert_eq!(outcome.completed(), 5);
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 3);
        for (index, report) in outcome.reports.iter().enumerate() {
            if index == 3 {
                assert!(report.is_none());
            } else {
                assert_eq!(report.as_ref().unwrap(), &job.cells()[index].run(), "cell {index}");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batched_waves_resume_byte_identically_after_a_kill() {
        let job = same_shape_battery(9);
        let reference_path = temp_journal("batched-kill-reference");
        let reference = Supervisor::new().threads(2).run(&job, &reference_path).unwrap();
        let path = temp_journal("batched-kill");
        let sup = Supervisor::new().threads(2).chunk(4);
        let killed = sup
            .clone()
            .fault_plan(FaultPlan::none().with_kill_before(6))
            .run(&job, &path)
            .unwrap_err();
        assert!(matches!(killed, ServiceError::Killed { cell: 6 }));
        let resumed = sup.run(&job, &path).unwrap();
        assert!(resumed.resumed > 0, "resume must reuse journaled cells");
        assert_eq!(resumed.render(&job), reference.render(&job));
        assert_eq!(resumed.digest(), reference.digest());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&reference_path).unwrap();
    }

    #[test]
    fn batch_waves_group_first_attempts_and_isolate_retries() {
        let job = same_shape_battery(5);
        let grouped = batch_waves(&job, &[(0, 1), (1, 1), (2, 1), (3, 1), (4, 1)]);
        assert_eq!(grouped, vec![0..5]);
        // A retry at the front (the re-queue position) runs solo; the
        // first-attempt tail still groups.
        let mixed = batch_waves(&job, &[(2, 2), (0, 1), (1, 1), (3, 1)]);
        assert_eq!(mixed, vec![0..1, 1..4]);
        // Shape changes split groups.
        let other = battery(3);
        let split = batch_waves(&other, &[(0, 1), (1, 1), (2, 1)]);
        assert_eq!(split, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let backoff =
            Backoff { base: Duration::from_millis(2), cap: Duration::from_millis(10) };
        assert_eq!(backoff.delay(1), Duration::from_millis(2));
        assert_eq!(backoff.delay(2), Duration::from_millis(4));
        assert_eq!(backoff.delay(3), Duration::from_millis(8));
        assert_eq!(backoff.delay(4), Duration::from_millis(10));
        assert_eq!(backoff.delay(63), Duration::from_millis(10));
        assert_eq!(Backoff::none().delay(5), Duration::ZERO);
    }
}
