//! Deterministic fault injection: the harness the resume/retry machinery is
//! tested against.
//!
//! A [`FaultPlan`] is a *pure description* of which faults fire where —
//! "panic cell 3 on its first attempt", "kill the worker before cell 9",
//! "fail the 5th journal append" — with no hidden state, so the same plan
//! replays the same interleaving every time. Plans can be built explicitly
//! or derived from a seed ([`FaultPlan::seeded`]), which is what the
//! proptests use to walk the interleaving space: for every seed, the job
//! must either complete, or be resumable to the byte-identical outcome an
//! uninterrupted run produces.

use crate::journal::JournalSink;
use std::collections::BTreeSet;

/// The marker every injected panic message carries, so tests (and humans
/// reading a failure report) can tell injected faults from real bugs.
pub const INJECTED_FAULT_MARKER: &str = "injected fault";

/// A deterministic plan of faults to inject into a supervised run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(cell, attempt)` pairs whose execution panics.
    panics: BTreeSet<(usize, u32)>,
    /// Cells before which the worker pool is killed (simulated SIGKILL:
    /// the current chunk's journal entries are committed, then the run
    /// aborts with [`crate::ServiceError::Killed`]).
    kills: BTreeSet<usize>,
    /// Journal append ordinals (0-based, counted per run) that fail with an
    /// injected I/O error.
    io_errors: BTreeSet<u64>,
}

/// SplitMix64: the same tiny deterministic generator the engine's
/// adversaries use, reused here so a seed maps to one fault interleaving
/// forever.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: no faults. This is what production runs use.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty() && self.kills.is_empty() && self.io_errors.is_empty()
    }

    /// Adds a panic on one specific `(cell, attempt)` (attempts are
    /// 1-based): the cell fails once and succeeds on retry.
    #[must_use]
    pub fn with_panic(mut self, cell: usize, attempt: u32) -> Self {
        self.panics.insert((cell, attempt));
        self
    }

    /// Adds panics on every attempt `1..=max_attempts` of `cell`: the cell
    /// never succeeds and must end up quarantined.
    #[must_use]
    pub fn with_persistent_panic(mut self, cell: usize, max_attempts: u32) -> Self {
        for attempt in 1..=max_attempts {
            self.panics.insert((cell, attempt));
        }
        self
    }

    /// Kills the worker pool before `cell` runs (after the preceding chunk
    /// is journaled and committed), simulating a SIGKILL mid-sweep.
    #[must_use]
    pub fn with_kill_before(mut self, cell: usize) -> Self {
        self.kills.insert(cell);
        self
    }

    /// Fails the journal append with the given 0-based ordinal (counted
    /// from the start of the run) with an injected I/O error.
    #[must_use]
    pub fn with_io_error(mut self, append_ordinal: u64) -> Self {
        self.io_errors.insert(append_ordinal);
        self
    }

    /// Derives a plan from a seed: a handful of panics, at most one kill
    /// and at most one I/O error, all placed pseudo-randomly over a job of
    /// `cells` cells. The same `(seed, cells, max_attempts)` triple always
    /// yields the same plan.
    #[must_use]
    pub fn seeded(seed: u64, cells: usize, max_attempts: u32) -> Self {
        let mut plan = FaultPlan::none();
        if cells == 0 {
            return plan;
        }
        let mut state = seed ^ 0xd6e8_feb8_6659_fd93;
        let panic_count = (splitmix64(&mut state) % 4) as usize;
        for _ in 0..panic_count {
            let cell = (splitmix64(&mut state) as usize) % cells;
            let attempt = 1 + (splitmix64(&mut state) % u64::from(max_attempts.max(1))) as u32;
            // Every other seeded panic is persistent, exercising quarantine.
            if splitmix64(&mut state).is_multiple_of(2) {
                plan = plan.with_persistent_panic(cell, max_attempts);
            } else {
                plan = plan.with_panic(cell, attempt);
            }
        }
        if splitmix64(&mut state).is_multiple_of(3) {
            plan = plan.with_kill_before((splitmix64(&mut state) as usize) % cells);
        }
        if splitmix64(&mut state).is_multiple_of(4) {
            plan = plan.with_io_error(splitmix64(&mut state) % (2 * cells as u64 + 4));
        }
        plan
    }

    /// The same plan minus its kills — what a test passes when *resuming*
    /// after a kill, mirroring reality: a SIGKILL is external, and the
    /// resumed process is not re-killed at the same cell.
    #[must_use]
    pub fn without_kills(&self) -> Self {
        FaultPlan { kills: BTreeSet::new(), ..self.clone() }
    }

    /// The same plan minus its I/O errors (resume after an injected disk
    /// fault).
    #[must_use]
    pub fn without_io_errors(&self) -> Self {
        FaultPlan { io_errors: BTreeSet::new(), ..self.clone() }
    }

    /// Panics (with [`INJECTED_FAULT_MARKER`] in the message) iff the plan
    /// injects a panic at this `(cell, attempt)`. Called inside the
    /// supervised cell closure, so the panic is caught, journaled and
    /// retried exactly like a real cell bug.
    pub fn maybe_panic(&self, cell: usize, attempt: u32) {
        if self.panics.contains(&(cell, attempt)) {
            panic!("{INJECTED_FAULT_MARKER}: cell {cell} attempt {attempt}");
        }
    }

    /// Whether the plan kills the worker pool before this cell.
    #[must_use]
    pub fn kills_before(&self, cell: usize) -> bool {
        self.kills.contains(&cell)
    }

    /// Wraps a journal sink so that appends at the planned ordinals fail
    /// with an injected I/O error. Counts from zero at each call (i.e. per
    /// supervised run).
    #[must_use]
    pub fn wrap_sink(&self, inner: Box<dyn JournalSink>) -> Box<dyn JournalSink> {
        if self.io_errors.is_empty() {
            inner
        } else {
            Box::new(FaultySink { inner, fail_at: self.io_errors.clone(), ordinal: 0 })
        }
    }
}

/// A journal sink that fails chosen appends, for fault-injection tests.
struct FaultySink {
    inner: Box<dyn JournalSink>,
    fail_at: BTreeSet<u64>,
    ordinal: u64,
}

impl JournalSink for FaultySink {
    fn append(&mut self, line: &str) -> std::io::Result<()> {
        let ordinal = self.ordinal;
        self.ordinal += 1;
        if self.fail_at.contains(&ordinal) {
            return Err(std::io::Error::other(format!(
                "{INJECTED_FAULT_MARKER}: journal append {ordinal} failed"
            )));
        }
        self.inner.append(line)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::MemorySink;

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..64 {
            assert_eq!(FaultPlan::seeded(seed, 12, 3), FaultPlan::seeded(seed, 12, 3));
        }
        // Seeds must actually explore the space: some plan injects a panic,
        // some plan injects a kill, some plan is empty.
        let plans: Vec<FaultPlan> = (0..64).map(|s| FaultPlan::seeded(s, 12, 3)).collect();
        assert!(plans.iter().any(|p| !p.panics.is_empty()));
        assert!(plans.iter().any(|p| !p.kills.is_empty()));
        assert!(plans.iter().any(FaultPlan::is_empty));
    }

    #[test]
    fn stripping_kills_and_io_errors_preserves_panics() {
        let plan = FaultPlan::none()
            .with_panic(2, 1)
            .with_kill_before(5)
            .with_io_error(3);
        let resumable = plan.without_kills().without_io_errors();
        assert!(resumable.kills.is_empty());
        assert!(resumable.io_errors.is_empty());
        assert_eq!(resumable.panics, plan.panics);
        assert!(plan.kills_before(5));
        assert!(!resumable.kills_before(5));
    }

    #[test]
    fn maybe_panic_fires_only_on_planned_attempts() {
        let plan = FaultPlan::none().with_panic(3, 2);
        plan.maybe_panic(3, 1);
        plan.maybe_panic(2, 2);
        let caught = std::panic::catch_unwind(|| plan.maybe_panic(3, 2));
        let message = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains(INJECTED_FAULT_MARKER), "{message}");
    }

    #[test]
    fn faulty_sink_fails_exactly_the_planned_ordinals() {
        let plan = FaultPlan::none().with_io_error(1);
        let mut sink = plan.wrap_sink(Box::<MemorySink>::default());
        sink.append("a").unwrap();
        let err = sink.append("b").unwrap_err();
        assert!(err.to_string().contains(INJECTED_FAULT_MARKER));
        sink.append("c").unwrap();
    }

    #[test]
    fn empty_plan_passes_sinks_through() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let mut sink = plan.wrap_sink(Box::<MemorySink>::default());
        for i in 0..100 {
            sink.append(&format!("line {i}")).unwrap();
        }
    }
}
