//! Jobs: a battery wrapped as an ordered list of digest-keyed cells, plus
//! the outcome/reporting types the supervisor produces.

use crate::{fnv1a, scenario_digest};
use dynring_analysis::Scenario;
use dynring_engine::sim::RunReport;

/// A named battery of scenario cells, the unit of journaled execution.
///
/// Anything the analysis layer runs — sweeps, tables, figures, the `--huge`
/// grid — is a list of [`Scenario`]s, so wrapping the list (in input order)
/// is enough to make the battery journal-able: each cell is keyed by its
/// index plus [`scenario_digest`], and the whole job by a fingerprint over
/// the id and every cell digest. The fingerprint is what stops a journal
/// written for one battery from being resumed against another.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    id: String,
    cells: Vec<Scenario>,
}

impl Job {
    /// Wraps a battery. The cell order is the report order and must be
    /// deterministic (it is part of the fingerprint).
    #[must_use]
    pub fn new(id: impl Into<String>, cells: Vec<Scenario>) -> Self {
        Job { id: id.into(), cells }
    }

    /// The job id (used in the journal and the report header).
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The battery, in report order.
    #[must_use]
    pub fn cells(&self) -> &[Scenario] {
        &self.cells
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the battery is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The digest key of one cell.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn cell_digest(&self, index: usize) -> u64 {
        scenario_digest(&self.cells[index])
    }

    /// The job fingerprint: FNV-1a over the id and every cell digest, in
    /// order. Identical across processes of the same build, so a resumed
    /// process can verify the journal on disk describes *this* battery.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.id.len() + 8 * self.cells.len());
        bytes.extend_from_slice(self.id.as_bytes());
        for cell in &self.cells {
            bytes.extend_from_slice(&scenario_digest(cell).to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

/// A quarantined cell: it exhausted its retry budget and the batch went on
/// without it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The cell index.
    pub index: usize,
    /// How many attempts were made.
    pub attempts: u32,
    /// The last panic message.
    pub error: String,
}

/// How a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Every cell completed successfully.
    Complete,
    /// Every cell reached a terminal state, but some were quarantined
    /// (within the failure budget).
    CompleteWithFailures,
    /// The failure budget was exhausted; the remaining cells were skipped
    /// and the outcome is a partial result.
    Partial,
}

impl JobStatus {
    /// The label used in reports and the journal.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Complete => "complete",
            JobStatus::CompleteWithFailures => "complete-with-failures",
            JobStatus::Partial => "partial",
        }
    }
}

/// The result of a supervised job run (possibly assembled partly from the
/// journal on resume).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job id.
    pub job_id: String,
    /// Per-cell reports in cell order; `None` for quarantined or skipped
    /// cells.
    pub reports: Vec<Option<RunReport>>,
    /// The quarantined cells, in cell order.
    pub failures: Vec<CellFailure>,
    /// Cells never attempted because the failure budget ran out, in order.
    pub skipped: Vec<usize>,
    /// How many cells were loaded from the journal instead of executed.
    pub resumed: usize,
    /// How the job ended.
    pub status: JobStatus,
}

impl JobOutcome {
    /// Number of cells that completed successfully.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.reports.iter().filter(|r| r.is_some()).count()
    }

    /// A digest over every cell's terminal state (report digests for
    /// completed cells, markers for quarantined/skipped ones), in cell
    /// order. Two runs of the same job — interrupted or not — that reached
    /// the same terminal states have the same digest.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(9 * self.reports.len());
        for (index, report) in self.reports.iter().enumerate() {
            match report {
                Some(report) => {
                    bytes.push(b'c');
                    bytes.extend_from_slice(&crate::journal::report_digest(report).to_le_bytes());
                }
                None if self.skipped.contains(&index) => bytes.push(b's'),
                None => bytes.push(b'q'),
            }
        }
        fnv1a(&bytes)
    }

    /// Renders the deterministic final report: one row per cell plus a
    /// failure report. Everything in it is a pure function of the cells'
    /// terminal states — resume counts, timing and thread counts are
    /// deliberately excluded — so an interrupted-and-resumed run renders
    /// **byte-identically** to an uninterrupted one (the property the CI
    /// kill-and-resume smoke diffs for).
    #[must_use]
    pub fn render(&self, job: &Job) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# Job report: {}", self.job_id);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "status: {} — {} cells, {} completed, {} quarantined, {} skipped",
            self.status.label(),
            self.reports.len(),
            self.completed(),
            self.failures.len(),
            self.skipped.len(),
        );
        let _ = writeln!(out, "outcome digest: {:#018x}", self.digest());
        let _ = writeln!(out);
        let _ = writeln!(out, "| cell | scenario | rounds | explored_at | moves | digest |");
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for (index, report) in self.reports.iter().enumerate() {
            let label = job.cells().get(index).map_or_else(String::new, Scenario::label);
            match report {
                Some(report) => {
                    let explored = report
                        .explored_at
                        .map_or_else(|| "-".to_owned(), |r| r.to_string());
                    let _ = writeln!(
                        out,
                        "| {index} | {label} | {} | {explored} | {} | {:#018x} |",
                        report.rounds,
                        report.total_moves,
                        crate::journal::report_digest(report),
                    );
                }
                None if self.skipped.contains(&index) => {
                    let _ = writeln!(out, "| {index} | {label} | SKIPPED | - | - | - |");
                }
                None => {
                    let _ = writeln!(out, "| {index} | {label} | QUARANTINED | - | - | - |");
                }
            }
        }
        if !self.failures.is_empty() || !self.skipped.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "## Failure report");
            let _ = writeln!(out);
            for failure in &self.failures {
                let _ = writeln!(
                    out,
                    "- cell {} quarantined after {} attempt(s): {}",
                    failure.index, failure.attempts, failure.error
                );
            }
            for index in &self.skipped {
                let _ = writeln!(out, "- cell {index} skipped (failure budget exhausted)");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_core::Algorithm;

    fn tiny_job() -> Job {
        let cells: Vec<Scenario> = (0..3)
            .map(|i| Scenario::fsync(6 + i, Algorithm::KnownBound { upper_bound: 6 + i }))
            .collect();
        Job::new("tiny", cells)
    }

    #[test]
    fn fingerprint_tracks_id_and_cells() {
        let job = tiny_job();
        assert_eq!(job.fingerprint(), tiny_job().fingerprint());
        let renamed = Job::new("other", job.cells().to_vec());
        assert_ne!(job.fingerprint(), renamed.fingerprint());
        let mut fewer = job.cells().to_vec();
        fewer.pop();
        assert_ne!(job.fingerprint(), Job::new("tiny", fewer).fingerprint());
    }

    #[test]
    fn outcome_render_is_deterministic_and_marks_failures() {
        let job = tiny_job();
        let report = job.cells()[0].run();
        let outcome = JobOutcome {
            job_id: "tiny".into(),
            reports: vec![Some(report), None, None],
            failures: vec![CellFailure { index: 1, attempts: 3, error: "boom".into() }],
            skipped: vec![2],
            resumed: 0,
            status: JobStatus::Partial,
        };
        let rendered = outcome.render(&job);
        assert_eq!(rendered, outcome.render(&job));
        assert!(rendered.contains("QUARANTINED"));
        assert!(rendered.contains("SKIPPED"));
        assert!(rendered.contains("boom"));
        assert!(rendered.contains("status: partial"));
        // The resume count must not leak into the render (byte-identity
        // across interrupted and uninterrupted runs).
        let resumed = JobOutcome { resumed: 2, ..outcome.clone() };
        assert_eq!(rendered, resumed.render(&job));
    }

    #[test]
    fn outcome_digest_separates_terminal_states() {
        let job = tiny_job();
        let report = job.cells()[0].run();
        let complete = JobOutcome {
            job_id: "tiny".into(),
            reports: vec![Some(report.clone()), Some(report.clone()), Some(report.clone())],
            failures: vec![],
            skipped: vec![],
            resumed: 0,
            status: JobStatus::Complete,
        };
        let quarantined = JobOutcome {
            reports: vec![Some(report.clone()), None, Some(report.clone())],
            failures: vec![CellFailure { index: 1, attempts: 1, error: "x".into() }],
            status: JobStatus::CompleteWithFailures,
            ..complete.clone()
        };
        let skipped = JobOutcome {
            reports: vec![Some(report.clone()), None, Some(report)],
            failures: vec![],
            skipped: vec![1],
            status: JobStatus::Partial,
            ..complete.clone()
        };
        assert_ne!(complete.digest(), quarantined.digest());
        assert_ne!(quarantined.digest(), skipped.digest());
    }

    #[test]
    fn status_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> = [
            JobStatus::Complete,
            JobStatus::CompleteWithFailures,
            JobStatus::Partial,
        ]
        .into_iter()
        .map(JobStatus::label)
        .collect();
        assert_eq!(labels.len(), 3);
    }
}
