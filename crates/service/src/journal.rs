//! The append-only JSONL event store behind journaled job execution.
//!
//! One JSON object per line, in the order events happened:
//!
//! ```text
//! {"event":"job_started","job_id":"huge","fingerprint":…,"cells":432}
//! {"event":"cell_completed","index":0,"attempt":1,"digest":…,"report":{…}}
//! {"event":"cell_failed","index":3,"attempt":1,"error":"…"}
//! {"event":"cell_quarantined","index":3,"attempts":3,"error":"…"}
//! {"event":"job_resumed","pending":12}
//! {"event":"job_finished","completed":431,"quarantined":1,"digest":…}
//! ```
//!
//! Lines are flushed to the OS on every append and `fsync`'d in batches
//! (every `fsync_every` events and at every
//! [`Journal::commit`]), so a SIGKILL can lose at most the tail written
//! since the last sync — and a machine crash at most the tail since the
//! last fsync batch. A kill mid-write leaves a partial final line; replay
//! treats exactly that (an unparsable **last** line) as the expected crash
//! signature and drops it, while an unparsable line anywhere else is
//! reported as corruption.
//!
//! `cell_completed` carries the **full serialized `RunReport`**, not just a
//! digest: that is what lets resume assemble the final report without
//! re-running finished cells. The digest is still stored and re-checked on
//! replay, so a corrupted or hand-edited report body is caught before it is
//! trusted.

use crate::job::{CellFailure, Job};
use crate::{fnv1a, ServiceError};
use dynring_engine::sim::{RunReport, StopReason};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A job began executing against an empty journal.
    JobStarted {
        /// The job id.
        job_id: String,
        /// The job fingerprint (id + cell digests).
        fingerprint: u64,
        /// Number of cells in the battery.
        cells: usize,
    },
    /// A later process resumed the job from this journal.
    JobResumed {
        /// Cells still pending at resume time.
        pending: usize,
    },
    /// A cell ran to completion; `report` is its full serialized result.
    CellCompleted {
        /// The cell index.
        index: usize,
        /// Which attempt succeeded (1-based).
        attempt: u32,
        /// [`report_digest`] of `report`, re-checked on replay.
        digest: u64,
        /// The cell's result.
        report: RunReport,
    },
    /// An attempt at a cell panicked; it may be retried.
    CellFailed {
        /// The cell index.
        index: usize,
        /// Which attempt failed (1-based).
        attempt: u32,
        /// The panic message.
        error: String,
    },
    /// A cell exhausted its retry budget and was quarantined.
    CellQuarantined {
        /// The cell index.
        index: usize,
        /// Total attempts made.
        attempts: u32,
        /// The last panic message.
        error: String,
    },
    /// The job reached a terminal state; the journal is closed.
    JobFinished {
        /// Cells that completed successfully.
        completed: usize,
        /// Cells quarantined.
        quarantined: usize,
        /// The outcome digest ([`crate::JobOutcome::digest`]).
        digest: u64,
    },
}

/// Serializes a run report as a JSON object (field-for-field; integers stay
/// exact, so the round-trip is lossless).
#[must_use]
pub fn report_to_json(report: &RunReport) -> Value {
    let mut map = Map::new();
    map.insert("rounds".into(), Value::from(report.rounds));
    map.insert("ring_size".into(), Value::from(report.ring_size));
    map.insert("explored_at".into(), Value::from(report.explored_at));
    map.insert("visited_count".into(), Value::from(report.visited_count));
    map.insert(
        "termination_rounds".into(),
        Value::Array(report.termination_rounds.iter().map(|r| Value::from(*r)).collect()),
    );
    map.insert("all_terminated".into(), Value::from(report.all_terminated));
    map.insert(
        "moves_per_agent".into(),
        Value::Array(report.moves_per_agent.iter().map(|m| Value::from(*m)).collect()),
    );
    map.insert(
        "visited_per_agent".into(),
        Value::Array(report.visited_per_agent.iter().map(|v| Value::from(*v)).collect()),
    );
    map.insert("total_moves".into(), Value::from(report.total_moves));
    let stop = match report.stop_reason {
        StopReason::ConditionMet => "condition_met",
        StopReason::BudgetExhausted => "budget_exhausted",
        StopReason::Deadlocked => "deadlocked",
    };
    map.insert("stop_reason".into(), Value::from(stop));
    Value::Object(map)
}

fn field<'v>(value: &'v Value, key: &str) -> Result<&'v Value, String> {
    value.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn u64_field(value: &Value, key: &str) -> Result<u64, String> {
    field(value, key)?.as_u64().ok_or_else(|| format!("field {key:?} is not a u64"))
}

fn usize_field(value: &Value, key: &str) -> Result<usize, String> {
    usize::try_from(u64_field(value, key)?).map_err(|_| format!("field {key:?} overflows usize"))
}

fn bool_field(value: &Value, key: &str) -> Result<bool, String> {
    field(value, key)?.as_bool().ok_or_else(|| format!("field {key:?} is not a bool"))
}

fn str_field<'v>(value: &'v Value, key: &str) -> Result<&'v str, String> {
    field(value, key)?.as_str().ok_or_else(|| format!("field {key:?} is not a string"))
}

fn array_field<'v>(value: &'v Value, key: &str) -> Result<&'v Vec<Value>, String> {
    field(value, key)?.as_array().ok_or_else(|| format!("field {key:?} is not an array"))
}

/// Deserializes a run report written by [`report_to_json`].
///
/// # Errors
///
/// Returns a description of the first missing or mistyped field.
pub fn report_from_json(value: &Value) -> Result<RunReport, String> {
    let termination_rounds = array_field(value, "termination_rounds")?
        .iter()
        .map(|v| {
            if v.is_null() {
                Ok(None)
            } else {
                v.as_u64().map(Some).ok_or_else(|| "bad termination round".to_owned())
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let moves_per_agent = array_field(value, "moves_per_agent")?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| "bad move count".to_owned()))
        .collect::<Result<Vec<_>, _>>()?;
    let visited_per_agent = array_field(value, "visited_per_agent")?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| "bad visited count".to_owned())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let explored_at = match field(value, "explored_at")? {
        Value::Null => None,
        v => Some(v.as_u64().ok_or_else(|| "field \"explored_at\" is not a u64".to_owned())?),
    };
    let stop_reason = match str_field(value, "stop_reason")? {
        "condition_met" => StopReason::ConditionMet,
        "budget_exhausted" => StopReason::BudgetExhausted,
        "deadlocked" => StopReason::Deadlocked,
        other => return Err(format!("unknown stop_reason {other:?}")),
    };
    Ok(RunReport {
        rounds: u64_field(value, "rounds")?,
        ring_size: usize_field(value, "ring_size")?,
        explored_at,
        visited_count: usize_field(value, "visited_count")?,
        termination_rounds,
        all_terminated: bool_field(value, "all_terminated")?,
        moves_per_agent,
        visited_per_agent,
        total_moves: u64_field(value, "total_moves")?,
        stop_reason,
    })
}

/// The deterministic digest of a run report: FNV-1a over its canonical JSON
/// rendering. Byte-identical reports — and only those — share a digest, so
/// replayed journal entries can be checked against fresh runs.
#[must_use]
pub fn report_digest(report: &RunReport) -> u64 {
    fnv1a(report_to_json(report).to_string().as_bytes())
}

impl JournalEvent {
    /// The JSON object written to the journal (one line).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut map = Map::new();
        match self {
            JournalEvent::JobStarted { job_id, fingerprint, cells } => {
                map.insert("event".into(), Value::from("job_started"));
                map.insert("job_id".into(), Value::from(job_id.as_str()));
                map.insert("fingerprint".into(), Value::from(*fingerprint));
                map.insert("cells".into(), Value::from(*cells));
            }
            JournalEvent::JobResumed { pending } => {
                map.insert("event".into(), Value::from("job_resumed"));
                map.insert("pending".into(), Value::from(*pending));
            }
            JournalEvent::CellCompleted { index, attempt, digest, report } => {
                map.insert("event".into(), Value::from("cell_completed"));
                map.insert("index".into(), Value::from(*index));
                map.insert("attempt".into(), Value::from(*attempt));
                map.insert("digest".into(), Value::from(*digest));
                map.insert("report".into(), report_to_json(report));
            }
            JournalEvent::CellFailed { index, attempt, error } => {
                map.insert("event".into(), Value::from("cell_failed"));
                map.insert("index".into(), Value::from(*index));
                map.insert("attempt".into(), Value::from(*attempt));
                map.insert("error".into(), Value::from(error.as_str()));
            }
            JournalEvent::CellQuarantined { index, attempts, error } => {
                map.insert("event".into(), Value::from("cell_quarantined"));
                map.insert("index".into(), Value::from(*index));
                map.insert("attempts".into(), Value::from(*attempts));
                map.insert("error".into(), Value::from(error.as_str()));
            }
            JournalEvent::JobFinished { completed, quarantined, digest } => {
                map.insert("event".into(), Value::from("job_finished"));
                map.insert("completed".into(), Value::from(*completed));
                map.insert("quarantined".into(), Value::from(*quarantined));
                map.insert("digest".into(), Value::from(*digest));
            }
        }
        Value::Object(map)
    }

    /// Parses a journal line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let attempt_u32 = |value: &Value, key: &str| -> Result<u32, String> {
            u32::try_from(u64_field(value, key)?).map_err(|_| format!("field {key:?} overflows"))
        };
        match str_field(value, "event")? {
            "job_started" => Ok(JournalEvent::JobStarted {
                job_id: str_field(value, "job_id")?.to_owned(),
                fingerprint: u64_field(value, "fingerprint")?,
                cells: usize_field(value, "cells")?,
            }),
            "job_resumed" => {
                Ok(JournalEvent::JobResumed { pending: usize_field(value, "pending")? })
            }
            "cell_completed" => {
                let report = report_from_json(field(value, "report")?)?;
                let digest = u64_field(value, "digest")?;
                if report_digest(&report) != digest {
                    return Err(format!(
                        "cell {} report does not match its recorded digest",
                        usize_field(value, "index")?
                    ));
                }
                Ok(JournalEvent::CellCompleted {
                    index: usize_field(value, "index")?,
                    attempt: attempt_u32(value, "attempt")?,
                    digest,
                    report,
                })
            }
            "cell_failed" => Ok(JournalEvent::CellFailed {
                index: usize_field(value, "index")?,
                attempt: attempt_u32(value, "attempt")?,
                error: str_field(value, "error")?.to_owned(),
            }),
            "cell_quarantined" => Ok(JournalEvent::CellQuarantined {
                index: usize_field(value, "index")?,
                attempts: attempt_u32(value, "attempts")?,
                error: str_field(value, "error")?.to_owned(),
            }),
            "job_finished" => Ok(JournalEvent::JobFinished {
                completed: usize_field(value, "completed")?,
                quarantined: usize_field(value, "quarantined")?,
                digest: u64_field(value, "digest")?,
            }),
            other => Err(format!("unknown event {other:?}")),
        }
    }
}

/// Where journal lines go. The indirection exists so the fault-injection
/// harness can wrap the real file sink with one that fails on chosen
/// appends ([`crate::fault::FaultPlan::wrap_sink`]).
pub trait JournalSink: Send {
    /// Appends one line (without the trailing newline) durably enough to
    /// survive a process kill (i.e. hands it to the OS).
    ///
    /// # Errors
    ///
    /// Propagates I/O failure.
    fn append(&mut self, line: &str) -> std::io::Result<()>;

    /// Forces everything appended so far to stable storage (fsync).
    ///
    /// # Errors
    ///
    /// Propagates I/O failure.
    fn sync(&mut self) -> std::io::Result<()>;
}

/// The real sink: an append-mode file.
#[derive(Debug)]
pub struct FileSink {
    file: File,
}

impl FileSink {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileSink { file })
    }
}

impl JournalSink for FileSink {
    fn append(&mut self, line: &str) -> std::io::Result<()> {
        // One write_all per line: after this returns, the line is in the OS
        // page cache and survives a SIGKILL of this process (fsync batches
        // additionally protect against machine crashes).
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

/// An in-memory sink for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Everything appended so far (with newlines).
    pub contents: String,
    /// How many times `sync` was called.
    pub syncs: usize,
}

impl JournalSink for MemorySink {
    fn append(&mut self, line: &str) -> std::io::Result<()> {
        self.contents.push_str(line);
        self.contents.push('\n');
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.syncs += 1;
        Ok(())
    }
}

/// The append half of the store: writes events as JSONL, fsync'ing in
/// batches.
pub struct Journal {
    sink: Box<dyn JournalSink>,
    fsync_every: usize,
    appended_since_sync: usize,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("fsync_every", &self.fsync_every)
            .field("appended_since_sync", &self.appended_since_sync)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Wraps a sink; `fsync_every` is the fsync batch size (clamped to at
    /// least 1).
    #[must_use]
    pub fn new(sink: Box<dyn JournalSink>, fsync_every: usize) -> Self {
        Journal { sink, fsync_every: fsync_every.max(1), appended_since_sync: 0 }
    }

    /// Opens the journal file at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn open(path: &Path, fsync_every: usize) -> std::io::Result<Self> {
        Ok(Journal::new(Box::new(FileSink::open(path)?), fsync_every))
    }

    /// Appends one event; fsyncs when the batch is full.
    ///
    /// # Errors
    ///
    /// Propagates I/O failure (including injected faults). The journal's
    /// consistent prefix is untouched; the caller should abort the job and
    /// let a later resume re-run whatever was not journaled.
    pub fn append(&mut self, event: &JournalEvent) -> std::io::Result<()> {
        self.sink.append(&event.to_json().to_string())?;
        self.appended_since_sync += 1;
        if self.appended_since_sync >= self.fsync_every {
            self.commit()?;
        }
        Ok(())
    }

    /// Flushes the current batch to stable storage (fsync), regardless of
    /// batch fill.
    ///
    /// # Errors
    ///
    /// Propagates I/O failure.
    pub fn commit(&mut self) -> std::io::Result<()> {
        if self.appended_since_sync > 0 {
            self.sink.sync()?;
            self.appended_since_sync = 0;
        }
        Ok(())
    }
}

/// What a journal on disk says about a job: the validated, replayable
/// state a resumed process starts from.
#[derive(Debug, Default)]
pub struct Replay {
    /// Completed cells: index → (report digest, report).
    pub completed: BTreeMap<usize, (u64, RunReport)>,
    /// Failed (but not quarantined) attempt counts per cell.
    pub attempts: BTreeMap<usize, u32>,
    /// Quarantined cells.
    pub quarantined: BTreeMap<usize, CellFailure>,
    /// Whether a `job_finished` event closed the journal.
    pub finished: bool,
    /// Whether a trailing partial line (the crash signature) was dropped.
    pub dropped_partial_tail: bool,
    /// Total events replayed.
    pub events: usize,
}

/// Loads and validates the journal at `path` against `job`.
///
/// The journal must start with a `job_started` event whose fingerprint
/// matches the job (otherwise resuming would silently mix batteries —
/// [`ServiceError::WrongJob`]). An unparsable **final** line is tolerated
/// and reported via [`Replay::dropped_partial_tail`]: it is exactly what a
/// kill mid-write leaves behind. Anything unparsable before the final line
/// is [`ServiceError::Corrupt`].
///
/// # Errors
///
/// [`ServiceError::Io`] on read failure, [`ServiceError::Corrupt`] /
/// [`ServiceError::WrongJob`] as described.
pub fn replay(path: &Path, job: &Job) -> Result<Replay, ServiceError> {
    let file = File::open(path).map_err(|source| ServiceError::Io {
        context: format!("opening journal {} for replay", path.display()),
        source,
    })?;
    let reader = BufReader::new(file);
    let mut lines: Vec<String> = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|source| ServiceError::Io {
            context: format!("reading journal {}", path.display()),
            source,
        })?;
        if !line.trim().is_empty() {
            lines.push(line);
        }
    }
    let mut replay = Replay::default();
    let last = lines.len().saturating_sub(1);
    for (number, line) in lines.iter().enumerate() {
        let parsed: Result<JournalEvent, String> = line
            .parse::<Value>()
            .map_err(|e| e.to_string())
            .and_then(|value| JournalEvent::from_json(&value));
        let event = match parsed {
            Ok(event) => event,
            Err(message) if number == last => {
                // The expected signature of a crash mid-write: drop the
                // partial tail and resume from the consistent prefix.
                replay.dropped_partial_tail = true;
                let _ = message;
                break;
            }
            Err(message) => {
                return Err(ServiceError::Corrupt { line: number + 1, message });
            }
        };
        if number == 0 {
            match &event {
                JournalEvent::JobStarted { fingerprint, cells, .. } => {
                    if *fingerprint != job.fingerprint() {
                        return Err(ServiceError::WrongJob {
                            expected: job.fingerprint(),
                            found: *fingerprint,
                        });
                    }
                    if *cells != job.len() {
                        return Err(ServiceError::Corrupt {
                            line: 1,
                            message: format!(
                                "journal says {cells} cells, job has {}",
                                job.len()
                            ),
                        });
                    }
                }
                _ => {
                    return Err(ServiceError::Corrupt {
                        line: 1,
                        message: "journal does not begin with job_started".into(),
                    });
                }
            }
        }
        replay.events += 1;
        match event {
            JournalEvent::JobStarted { .. } | JournalEvent::JobResumed { .. } => {}
            JournalEvent::CellCompleted { index, digest, report, .. } => {
                if index >= job.len() {
                    return Err(ServiceError::Corrupt {
                        line: number + 1,
                        message: format!("cell index {index} out of range"),
                    });
                }
                if digest != crate::journal::report_digest(&report) {
                    return Err(ServiceError::Corrupt {
                        line: number + 1,
                        message: format!("cell {index} digest mismatch"),
                    });
                }
                replay.completed.insert(index, (digest, report));
            }
            JournalEvent::CellFailed { index, attempt, .. } => {
                let entry = replay.attempts.entry(index).or_insert(0);
                *entry = (*entry).max(attempt);
            }
            JournalEvent::CellQuarantined { index, attempts, error } => {
                replay.quarantined.insert(index, CellFailure { index, attempts, error });
            }
            JournalEvent::JobFinished { .. } => {
                replay.finished = true;
            }
        }
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_analysis::Scenario;
    use dynring_core::Algorithm;

    fn sample_report() -> RunReport {
        Scenario::fsync(8, Algorithm::KnownBound { upper_bound: 8 }).run()
    }

    fn sample_events() -> Vec<JournalEvent> {
        let report = sample_report();
        vec![
            JournalEvent::JobStarted { job_id: "j".into(), fingerprint: 7, cells: 2 },
            JournalEvent::JobResumed { pending: 1 },
            JournalEvent::CellCompleted {
                index: 0,
                attempt: 2,
                digest: report_digest(&report),
                report,
            },
            JournalEvent::CellFailed { index: 1, attempt: 1, error: "panic \"quoted\"".into() },
            JournalEvent::CellQuarantined { index: 1, attempts: 3, error: "panic\nlines".into() },
            JournalEvent::JobFinished { completed: 1, quarantined: 1, digest: 99 },
        ]
    }

    #[test]
    fn every_event_roundtrips_through_json() {
        for event in sample_events() {
            let line = event.to_json().to_string();
            assert!(!line.contains('\n'), "journal lines must be single-line: {line}");
            let value: Value = line.parse().expect("journal line parses");
            let back = JournalEvent::from_json(&value).expect("journal event decodes");
            assert_eq!(back, event);
        }
    }

    #[test]
    fn report_json_roundtrip_is_lossless() {
        let mut report = sample_report();
        report.termination_rounds.push(None);
        report.explored_at = None;
        let back = report_from_json(&report_to_json(&report)).unwrap();
        assert_eq!(back, report);
        assert_eq!(report_digest(&back), report_digest(&report));
    }

    #[test]
    fn report_digest_detects_tampering() {
        let report = sample_report();
        let mut tampered = report.clone();
        tampered.total_moves += 1;
        assert_ne!(report_digest(&report), report_digest(&tampered));
        // A completed event whose body was edited no longer decodes.
        let event = JournalEvent::CellCompleted {
            index: 0,
            attempt: 1,
            digest: report_digest(&report),
            report: tampered,
        };
        let err = JournalEvent::from_json(&event.to_json()).unwrap_err();
        assert!(err.contains("digest"), "{err}");
    }

    #[test]
    fn journal_batches_fsyncs() {
        let mut journal = Journal::new(Box::<MemorySink>::default(), 3);
        let events = sample_events();
        for event in &events[..5] {
            journal.append(event).unwrap();
        }
        journal.commit().unwrap();
        journal.commit().unwrap(); // idempotent on an empty batch
        // 5 appends with a batch of 3: one automatic sync + one commit.
        let debug = format!("{journal:?}");
        assert!(debug.contains("fsync_every: 3"), "{debug}");
    }

    #[test]
    fn malformed_events_are_rejected() {
        for bad in [
            "{\"event\":\"nope\"}",
            "{\"event\":\"cell_failed\",\"index\":0}",
            "{\"no_event\":1}",
            "{\"event\":\"cell_completed\",\"index\":0,\"attempt\":1,\"digest\":1,\"report\":{}}",
        ] {
            let value: Value = bad.parse().unwrap();
            assert!(JournalEvent::from_json(&value).is_err(), "{bad} must not decode");
        }
    }
}
