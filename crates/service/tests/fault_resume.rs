//! The kill-and-resume contract, driven through a deterministic
//! fault-injection harness.
//!
//! Every test follows one shape: run a battery under a [`FaultPlan`]
//! (injected cell panics, worker kills, journal I/O errors), resume after
//! each abort from the journal on disk, and assert the final rendered
//! report is **byte-identical** to an uninterrupted run with the same cell
//! faults. The seeded proptest sweeps that shape over many interleavings;
//! the exhaustive loops pin the two single-fault families (a kill before
//! every cell index, an I/O error at every journal append ordinal).

use dynring_analysis::Scenario;
use dynring_core::Algorithm;
use dynring_service::{FaultPlan, Job, JobStatus, ServiceError, Supervisor};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn battery(cells: usize) -> Job {
    let cells: Vec<Scenario> = (0..cells)
        .map(|i| Scenario::fsync(6 + i, Algorithm::KnownBound { upper_bound: 6 + i }))
        .collect();
    Job::new("fault-resume-battery", cells)
}

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir()
        .join(format!("dynring-fault-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Runs `job` under `plan`, resuming after every injected abort with the
/// corresponding fault family stripped (a SIGKILL or disk fault is external:
/// the resumed process does not replay it). Returns the rendered report and
/// the number of aborts survived.
fn run_to_completion(
    supervisor: &Supervisor,
    job: &Job,
    plan: &FaultPlan,
    path: &Path,
) -> (String, usize) {
    let mut plan = plan.clone();
    let mut aborts = 0;
    for _ in 0..32 {
        match supervisor.clone().fault_plan(plan.clone()).run(job, path) {
            Ok(outcome) => return (outcome.render(job), aborts),
            Err(ServiceError::Killed { .. }) => {
                aborts += 1;
                plan = plan.without_kills();
            }
            Err(ServiceError::Io { .. }) => {
                aborts += 1;
                plan = plan.without_io_errors();
            }
            Err(other) => panic!("unexpected service error: {other}"),
        }
    }
    panic!("job did not settle within 32 resume attempts");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every seeded fault interleaving (panics, at most one kill, at
    /// most one journal I/O error), the job either completes directly or
    /// resumes losslessly: the final report is byte-identical to an
    /// uninterrupted run with the same cell panics.
    #[test]
    fn every_seeded_interleaving_completes_or_resumes_losslessly(
        seed in 0u64..10_000,
        cells in 3usize..9,
        threads in 1usize..4,
        chunk in 1usize..5,
    ) {
        let job = battery(cells);
        let plan = FaultPlan::seeded(seed, cells, 3);
        let supervisor = Supervisor::new().threads(threads).chunk(chunk);

        // Uninterrupted reference: same cell panics, no kills, no disk
        // faults, fresh journal.
        let reference_path = temp_journal(&format!("ref-{seed}-{cells}"));
        let reference_plan = plan.without_kills().without_io_errors();
        let reference = supervisor
            .clone()
            .fault_plan(reference_plan)
            .run(&job, &reference_path)
            .expect("reference run has no aborting faults");
        let reference_render = reference.render(&job);

        let path = temp_journal(&format!("run-{seed}-{cells}"));
        let (render, _aborts) = run_to_completion(&supervisor, &job, &plan, &path);
        prop_assert_eq!(&render, &reference_render);

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&reference_path).ok();
    }
}

/// A kill before **every** cell index (and every chunk size around it)
/// resumes to the byte-identical uninterrupted report, and the resume
/// actually reuses journaled cells rather than re-running the battery.
#[test]
fn kill_before_every_cell_resumes_byte_identically() {
    const CELLS: usize = 7;
    let job = battery(CELLS);
    let reference_path = temp_journal("kill-sweep-ref");
    let supervisor = Supervisor::new().threads(2).chunk(3);
    let reference = supervisor.run(&job, &reference_path).unwrap();
    let reference_render = reference.render(&job);
    assert_eq!(reference.status, JobStatus::Complete);

    for kill_at in 0..CELLS {
        let path = temp_journal(&format!("kill-sweep-{kill_at}"));
        let err = supervisor
            .clone()
            .fault_plan(FaultPlan::none().with_kill_before(kill_at))
            .run(&job, &path)
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::Killed { cell } if cell == kill_at),
            "kill at {kill_at}: {err}"
        );
        let resumed = supervisor.run(&job, &path).unwrap();
        assert_eq!(resumed.render(&job), reference_render, "kill before cell {kill_at}");
        // Everything journaled before the kill must be reused, not re-run.
        assert_eq!(resumed.resumed, kill_at, "kill before cell {kill_at}");
        std::fs::remove_file(&path).unwrap();
    }
    std::fs::remove_file(&reference_path).unwrap();
}

/// An injected journal-append failure at **every** ordinal a clean run
/// produces surfaces as `ServiceError::Io`, never corrupts the journal's
/// consistent prefix, and resumes to the byte-identical report.
#[test]
fn io_error_at_every_append_ordinal_resumes_byte_identically() {
    const CELLS: usize = 5;
    let job = battery(CELLS);
    let supervisor = Supervisor::new().threads(1).chunk(2);
    let reference_path = temp_journal("io-sweep-ref");
    let reference = supervisor.run(&job, &reference_path).unwrap();
    let reference_render = reference.render(&job);

    // A clean run appends job_started + one cell_completed per cell +
    // job_finished.
    let total_appends = (CELLS + 2) as u64;
    for ordinal in 0..total_appends {
        let path = temp_journal(&format!("io-sweep-{ordinal}"));
        let plan = FaultPlan::none().with_io_error(ordinal);
        let (render, aborts) = run_to_completion(&supervisor, &job, &plan, &path);
        assert_eq!(aborts, 1, "ordinal {ordinal} must abort exactly once");
        assert_eq!(render, reference_render, "I/O fault at append {ordinal}");
        std::fs::remove_file(&path).unwrap();
    }
    std::fs::remove_file(&reference_path).unwrap();
}

/// Panic quarantine composes with kills: a battery with a persistently
/// panicking cell, killed mid-run, resumes to the same
/// complete-with-failures report an uninterrupted faulty run produces.
#[test]
fn quarantine_survives_a_kill_and_resume() {
    const CELLS: usize = 6;
    let job = battery(CELLS);
    let supervisor = Supervisor::new().threads(2).chunk(2).max_attempts(2);
    let panics = FaultPlan::none().with_persistent_panic(1, 2);

    let reference_path = temp_journal("quarantine-kill-ref");
    let reference = supervisor
        .clone()
        .fault_plan(panics.clone())
        .run(&job, &reference_path)
        .unwrap();
    assert_eq!(reference.status, JobStatus::CompleteWithFailures);

    let path = temp_journal("quarantine-kill");
    let plan = panics.with_kill_before(4);
    let (render, aborts) = run_to_completion(&supervisor, &job, &plan, &path);
    assert_eq!(aborts, 1);
    assert_eq!(render, reference.render(&job));
    assert!(render.contains("QUARANTINED"));

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&reference_path).unwrap();
}
