//! Edge-removal policies: which edge (if any) is missing in each round.
//!
//! The 1-interval-connectivity assumption allows the adversary to remove at
//! most one edge per round. Besides benign and random dynamics, this module
//! implements the adversaries used in the paper's proofs:
//!
//! | Policy | Paper | Purpose |
//! |---|---|---|
//! | [`NoRemoval`] | — | static ring (baseline) |
//! | [`FromSchedule`] | Fig. 2 etc. | replay a scripted schedule |
//! | [`BlockEdgeForever`] | — | a permanently missing edge |
//! | [`RandomEdge`] / [`StickyRandomEdge`] | — | randomised dynamics for sweeps |
//! | [`BlockAgent`] | Observation 1 | a single agent can never leave its node |
//! | [`PreventMeeting`] | Observation 2 | two agents never meet |
//! | [`BlockFirstMover`] | Theorem 9 | NS impossibility (with [`FirstMoverOnly`](crate::scheduler::FirstMoverOnly)) |
//! | [`ConfineWindow`] | Theorems 13 / 15 | confine the agents to a window, forcing `Ω(N·n)` traversals |
//! | [`AlternatingBlock`] | Theorem 19 | make two rings indistinguishable in ET |

use crate::world::{PredictedAction, RoundView};
use dynring_graph::{AgentId, EdgeId, EdgeSchedule, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Chooses the missing edge of the next round.
///
/// The engine validates the choice (the edge must exist); returning `None`
/// leaves every edge present.
pub trait EdgePolicy: Send {
    /// A short name for traces and reports.
    fn name(&self) -> &'static str;

    /// Selects the edge to remove, given the adversary-visible view and the
    /// set of agents that will be active this round.
    fn select(&mut self, view: &RoundView<'_>, active: &[AgentId]) -> Option<EdgeId>;

    /// Whether [`select`](EdgePolicy::select) ever reads
    /// [`AgentView::predicted`](crate::world::AgentView::predicted).
    ///
    /// Predicting a decision means dry-running every live protocol each
    /// round; policies that never look at the predictions should return
    /// `false` so the engine can skip that work (the `predicted` field then
    /// reports `Stay` for live agents). The answer must be constant over the
    /// policy's lifetime. Defaults to `true` (the conservative choice for
    /// omniscient proof adversaries).
    fn needs_predictions(&self) -> bool {
        true
    }

    /// Whether [`select`](EdgePolicy::select) reads the predictions of
    /// agents **outside the active set**. Policies that filter on the
    /// active set before touching
    /// [`AgentView::predicted`](crate::world::AgentView::predicted) (every
    /// "block-the-mover" adversary of the paper) should return `false`:
    /// under SSYNC the engine then skips the probe dry run for sleeping
    /// agents, whose `predicted` field reports [`PredictedAction::Stay`].
    /// Only consulted when [`needs_predictions`](EdgePolicy::needs_predictions)
    /// is `true`; the answer must be constant over the policy's lifetime.
    /// Defaults to `true` (sleepers are predicted too).
    fn needs_sleeper_predictions(&self) -> bool {
        true
    }

    /// Restores the policy to its as-constructed state, so a recycled
    /// simulation (see [`Simulation::recycle`](crate::sim::Simulation::recycle))
    /// replays exactly as a freshly built one. Stateful policies (episode
    /// counters, seeded RNGs) **must** implement this — a seeded policy
    /// restores the RNG from its original seed; the default no-op is only
    /// correct for stateless policies.
    fn reset(&mut self) {}
}

/// Never removes an edge (static ring).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRemoval;

impl EdgePolicy for NoRemoval {
    fn name(&self) -> &'static str {
        "no-removal"
    }

    fn select(&mut self, _view: &RoundView<'_>, _active: &[AgentId]) -> Option<EdgeId> {
        None
    }

    fn needs_predictions(&self) -> bool {
        false
    }
}

/// Replays a fixed [`EdgeSchedule`] (e.g. the hand-crafted worst cases of the
/// paper's figures).
///
/// The schedule is held behind an [`Arc`], so a battery that replays the same
/// scripted schedule in thousands of cells shares one allocation instead of
/// deep-copying the removal list per build (accepting a plain
/// [`EdgeSchedule`] by value still works through the `Into` bound).
#[derive(Debug, Clone)]
pub struct FromSchedule {
    schedule: Arc<EdgeSchedule>,
}

impl FromSchedule {
    /// Wraps a fixed schedule (owned or already shared).
    #[must_use]
    pub fn new(schedule: impl Into<Arc<EdgeSchedule>>) -> Self {
        FromSchedule { schedule: schedule.into() }
    }
}

impl EdgePolicy for FromSchedule {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn select(&mut self, view: &RoundView<'_>, _active: &[AgentId]) -> Option<EdgeId> {
        self.schedule.missing_at(view.round)
    }

    fn needs_predictions(&self) -> bool {
        false
    }
}

/// Removes the same edge in every round, forever.
#[derive(Debug, Clone, Copy)]
pub struct BlockEdgeForever {
    edge: EdgeId,
}

impl BlockEdgeForever {
    /// Blocks `edge` permanently.
    #[must_use]
    pub fn new(edge: EdgeId) -> Self {
        BlockEdgeForever { edge }
    }
}

impl EdgePolicy for BlockEdgeForever {
    fn name(&self) -> &'static str {
        "block-edge-forever"
    }

    fn select(&mut self, _view: &RoundView<'_>, _active: &[AgentId]) -> Option<EdgeId> {
        Some(self.edge)
    }

    fn needs_predictions(&self) -> bool {
        false
    }
}

/// Removes a uniformly random edge with probability `p` each round.
#[derive(Debug, Clone)]
pub struct RandomEdge {
    probability: f64,
    seed: u64,
    rng: StdRng,
}

impl RandomEdge {
    /// Creates the policy with removal probability `p` (clamped to `[0, 1]`)
    /// and RNG seed.
    #[must_use]
    pub fn new(probability: f64, seed: u64) -> Self {
        RandomEdge {
            probability: probability.clamp(0.0, 1.0),
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl EdgePolicy for RandomEdge {
    fn name(&self) -> &'static str {
        "random-edge"
    }

    fn select(&mut self, view: &RoundView<'_>, _active: &[AgentId]) -> Option<EdgeId> {
        if self.rng.gen_bool(self.probability) {
            Some(EdgeId::new(self.rng.gen_range(0..view.ring.size())))
        } else {
            None
        }
    }

    fn needs_predictions(&self) -> bool {
        false
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Removes a random edge and keeps it removed for a random number of rounds
/// before switching to another (or to none). Produces the "long blocks"
/// dynamics under which the bounce/reverse logic of the algorithms is
/// actually exercised.
#[derive(Debug, Clone)]
pub struct StickyRandomEdge {
    min_hold: u64,
    max_hold: u64,
    present_probability: f64,
    current: Option<EdgeId>,
    remaining: u64,
    seed: u64,
    rng: StdRng,
}

impl StickyRandomEdge {
    /// Creates the policy: each "episode" removes one random edge (or, with
    /// probability `present_probability`, no edge) for a number of rounds
    /// drawn uniformly from `[min_hold, max_hold]`.
    #[must_use]
    pub fn new(min_hold: u64, max_hold: u64, present_probability: f64, seed: u64) -> Self {
        StickyRandomEdge {
            min_hold: min_hold.max(1),
            max_hold: max_hold.max(min_hold.max(1)),
            present_probability: present_probability.clamp(0.0, 1.0),
            current: None,
            remaining: 0,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl EdgePolicy for StickyRandomEdge {
    fn name(&self) -> &'static str {
        "sticky-random-edge"
    }

    fn select(&mut self, view: &RoundView<'_>, _active: &[AgentId]) -> Option<EdgeId> {
        if self.remaining == 0 {
            self.remaining = self.rng.gen_range(self.min_hold..=self.max_hold);
            self.current = if self.rng.gen_bool(self.present_probability) {
                None
            } else {
                Some(EdgeId::new(self.rng.gen_range(0..view.ring.size())))
            };
        }
        self.remaining -= 1;
        self.current
    }

    fn needs_predictions(&self) -> bool {
        false
    }

    fn reset(&mut self) {
        self.current = None;
        self.remaining = 0;
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Observation 1: always remove the edge the target agent is about to cross,
/// so it can never leave its starting node.
#[derive(Debug, Clone, Copy)]
pub struct BlockAgent {
    agent: AgentId,
}

impl BlockAgent {
    /// Targets the given agent.
    #[must_use]
    pub fn new(agent: AgentId) -> Self {
        BlockAgent { agent }
    }
}

impl EdgePolicy for BlockAgent {
    fn name(&self) -> &'static str {
        "block-agent"
    }

    fn select(&mut self, view: &RoundView<'_>, _active: &[AgentId]) -> Option<EdgeId> {
        view.agent(self.agent).and_then(|a| a.predicted.target_edge())
    }
}

/// Theorem 9: remove the edge of the single activated would-be mover (to be
/// paired with [`FirstMoverOnly`](crate::scheduler::FirstMoverOnly)); more
/// generally, of the active mover that has been passive the longest.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockFirstMover;

impl EdgePolicy for BlockFirstMover {
    fn name(&self) -> &'static str {
        "block-first-mover"
    }

    fn select(&mut self, view: &RoundView<'_>, active: &[AgentId]) -> Option<EdgeId> {
        view.agents
            .iter()
            .filter(|a| !a.terminated && active.contains(&a.id) && a.predicted.is_move())
            .min_by_key(|a| (a.last_active_round, a.id))
            .and_then(|a| a.predicted.target_edge())
    }

    fn needs_sleeper_predictions(&self) -> bool {
        false
    }
}

/// Observation 2: prevent two agents from ever meeting (or catching each
/// other) by removing, when necessary, the edge over which a mover would
/// reach a node occupied by the other agent.
#[derive(Debug, Clone, Default)]
pub struct PreventMeeting {
    /// Scratch buffer of this round's movers `(id, destination, edge)`,
    /// reused across rounds so the steady-state round loop stays
    /// allocation-free even with this omniscient adversary installed.
    movers: Vec<(AgentId, NodeId, EdgeId)>,
}

impl PreventMeeting {
    /// Creates the adversary.
    #[must_use]
    pub fn new() -> Self {
        PreventMeeting::default()
    }
}

impl EdgePolicy for PreventMeeting {
    fn name(&self) -> &'static str {
        "prevent-meeting"
    }

    fn select(&mut self, view: &RoundView<'_>, active: &[AgentId]) -> Option<EdgeId> {
        let ring = view.ring;
        let agents = view.agents.as_ref();
        self.movers.clear();
        for agent in agents {
            if agent.terminated || !active.contains(&agent.id) {
                continue;
            }
            if let PredictedAction::Move { edge, direction } = agent.predicted {
                self.movers.push((agent.id, ring.neighbor(agent.node, direction), edge));
            }
        }

        // Case 2 of Observation 2: two movers converging on the same node
        // over different edges — removing either one suffices.
        for (i, &(_, dest_i, edge_i)) in self.movers.iter().enumerate() {
            for &(_, dest_j, edge_j) in self.movers.iter().skip(i + 1) {
                if dest_i == dest_j && edge_i != edge_j {
                    return Some(edge_i);
                }
            }
        }

        // Case 1: a mover heading into a node where another agent stays put.
        for &(mover, dest, edge) in &self.movers {
            for other in agents {
                if other.id != mover
                    && !other.terminated
                    && other.node == dest
                    && (!active.contains(&other.id) || !other.predicted.is_move())
                {
                    return Some(edge);
                }
            }
        }
        None
    }

    fn needs_sleeper_predictions(&self) -> bool {
        // Both cases filter on the active set before reading `predicted`
        // (the case-1 disjunction is already true for inactive agents), so
        // a sleeper's placeholder `Stay` can never change the selection.
        false
    }
}

/// Alternates between removing two edges, one per round (used to build the
/// indistinguishability argument of Theorem 19 and general stress tests).
#[derive(Debug, Clone, Copy)]
pub struct AlternatingBlock {
    first: EdgeId,
    second: EdgeId,
}

impl AlternatingBlock {
    /// Alternates between `first` (odd rounds) and `second` (even rounds).
    #[must_use]
    pub fn new(first: EdgeId, second: EdgeId) -> Self {
        AlternatingBlock { first, second }
    }
}

impl EdgePolicy for AlternatingBlock {
    fn name(&self) -> &'static str {
        "alternating-block"
    }

    fn select(&mut self, view: &RoundView<'_>, _active: &[AgentId]) -> Option<EdgeId> {
        if view.round % 2 == 1 {
            Some(self.first)
        } else {
            Some(self.second)
        }
    }

    fn needs_predictions(&self) -> bool {
        false
    }
}

/// Confines the agents to the arc of nodes `[lo, hi]` (walking
/// counter-clockwise from `lo` to `hi`): any attempted move that would leave
/// the window is blocked. This is the core mechanism of the Ω(N·n) / Ω(n²)
/// lower-bound adversaries of Theorems 13 and 15 — inside the window the
/// agents are forced to shuttle back and forth, accumulating edge traversals
/// while the explored region grows by at most one node per "phase".
#[derive(Debug, Clone, Copy)]
pub struct ConfineWindow {
    lo: NodeId,
    hi: NodeId,
}

impl ConfineWindow {
    /// Confines agents to the counter-clockwise arc from `lo` to `hi`
    /// (inclusive).
    #[must_use]
    pub fn new(lo: NodeId, hi: NodeId) -> Self {
        ConfineWindow { lo, hi }
    }

    fn contains(&self, ring_size: usize, node: NodeId) -> bool {
        // Walk CCW from lo to hi; the node is inside if it appears on that arc.
        let span = (self.hi.index() + ring_size - self.lo.index()) % ring_size;
        let offset = (node.index() + ring_size - self.lo.index()) % ring_size;
        offset <= span
    }
}

impl EdgePolicy for ConfineWindow {
    fn name(&self) -> &'static str {
        "confine-window"
    }

    fn select(&mut self, view: &RoundView<'_>, active: &[AgentId]) -> Option<EdgeId> {
        let n = view.ring.size();
        view.agents
            .iter()
            .filter(|a| !a.terminated && active.contains(&a.id))
            .filter_map(|a| match a.predicted {
                PredictedAction::Move { edge, direction } => {
                    let dest = view.ring.neighbor(a.node, direction);
                    if self.contains(n, a.node) && !self.contains(n, dest) {
                        Some(edge)
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .next()
    }

    fn needs_sleeper_predictions(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::AgentView;
    use dynring_graph::{GlobalDirection, Handedness, RingTopology, ScheduleBuilder};

    fn mover(id: usize, node: usize, direction: GlobalDirection, ring: &RingTopology) -> AgentView {
        AgentView {
            id: AgentId::new(id),
            node: NodeId::new(node),
            held_port: None,
            terminated: false,
            handedness: Handedness::LeftIsCcw,
            predicted: PredictedAction::Move {
                edge: ring.edge_towards(NodeId::new(node), direction),
                direction,
            },
            last_active_round: 0,
            asleep_on_port: 0,
            moves: 0,
        }
    }

    fn idler(id: usize, node: usize) -> AgentView {
        AgentView {
            id: AgentId::new(id),
            node: NodeId::new(node),
            held_port: None,
            terminated: false,
            handedness: Handedness::LeftIsCcw,
            predicted: PredictedAction::Stay,
            last_active_round: 0,
            asleep_on_port: 0,
            moves: 0,
        }
    }

    fn all_ids(view: &RoundView<'_>) -> Vec<AgentId> {
        view.agents.iter().map(|a| a.id).collect()
    }

    #[test]
    fn no_removal_and_block_forever() {
        let ring = RingTopology::new(5).unwrap();
        let visited = vec![false; 5];
        let view = RoundView { round: 1, ring: &ring, agents: vec![].into(), visited: &visited };
        assert_eq!(NoRemoval.select(&view, &[]), None);
        assert_eq!(
            BlockEdgeForever::new(EdgeId::new(3)).select(&view, &[]),
            Some(EdgeId::new(3))
        );
    }

    #[test]
    fn scripted_schedule_is_replayed() {
        let ring = RingTopology::new(5).unwrap();
        let schedule =
            ScheduleBuilder::new(&ring).remove_for(EdgeId::new(1), 2).all_present_for(1).build();
        let mut policy = FromSchedule::new(schedule);
        let visited = vec![false; 5];
        for (round, expected) in [(1, Some(EdgeId::new(1))), (2, Some(EdgeId::new(1))), (3, None)] {
            let view = RoundView { round, ring: &ring, agents: vec![].into(), visited: &visited };
            assert_eq!(policy.select(&view, &[]), expected);
        }
    }

    #[test]
    fn block_agent_targets_its_victims_edge() {
        let ring = RingTopology::new(6).unwrap();
        let visited = vec![false; 6];
        let agents = vec![mover(0, 2, GlobalDirection::Ccw, &ring), idler(1, 4)];
        let view = RoundView { round: 1, ring: &ring, agents: agents.into(), visited: &visited };
        let active = all_ids(&view);
        assert_eq!(BlockAgent::new(AgentId::new(0)).select(&view, &active), Some(EdgeId::new(2)));
        assert_eq!(BlockAgent::new(AgentId::new(1)).select(&view, &active), None);
    }

    #[test]
    fn block_first_mover_prefers_longest_passive() {
        let ring = RingTopology::new(6).unwrap();
        let visited = vec![false; 6];
        let mut a0 = mover(0, 2, GlobalDirection::Ccw, &ring);
        a0.last_active_round = 9;
        let mut a1 = mover(1, 4, GlobalDirection::Cw, &ring);
        a1.last_active_round = 3;
        let view = RoundView { round: 1, ring: &ring, agents: vec![a0, a1].into(), visited: &visited };
        let active = all_ids(&view);
        assert_eq!(BlockFirstMover.select(&view, &active), Some(EdgeId::new(3)));
    }

    #[test]
    fn prevent_meeting_blocks_convergence_on_a_waiting_agent() {
        let ring = RingTopology::new(6).unwrap();
        let visited = vec![false; 6];
        // Agent 0 at node 2 moves CCW towards node 3 where agent 1 idles.
        let agents = vec![mover(0, 2, GlobalDirection::Ccw, &ring), idler(1, 3)];
        let view = RoundView { round: 1, ring: &ring, agents: agents.into(), visited: &visited };
        let active = all_ids(&view);
        assert_eq!(PreventMeeting::new().select(&view, &active), Some(EdgeId::new(2)));
    }

    #[test]
    fn prevent_meeting_blocks_two_movers_converging() {
        let ring = RingTopology::new(6).unwrap();
        let visited = vec![false; 6];
        // Agents at nodes 2 and 4 both move towards node 3.
        let agents =
            vec![mover(0, 2, GlobalDirection::Ccw, &ring), mover(1, 4, GlobalDirection::Cw, &ring)];
        let view = RoundView { round: 1, ring: &ring, agents: agents.into(), visited: &visited };
        let active = all_ids(&view);
        let removed = PreventMeeting::new().select(&view, &active);
        assert!(removed == Some(EdgeId::new(2)) || removed == Some(EdgeId::new(3)));
    }

    #[test]
    fn prevent_meeting_lets_harmless_moves_through() {
        let ring = RingTopology::new(6).unwrap();
        let visited = vec![false; 6];
        let agents = vec![mover(0, 2, GlobalDirection::Ccw, &ring), idler(1, 5)];
        let view = RoundView { round: 1, ring: &ring, agents: agents.into(), visited: &visited };
        let active = all_ids(&view);
        assert_eq!(PreventMeeting::new().select(&view, &active), None);
    }

    #[test]
    fn alternating_block_switches_each_round() {
        let ring = RingTopology::new(5).unwrap();
        let visited = vec![false; 5];
        let mut policy = AlternatingBlock::new(EdgeId::new(0), EdgeId::new(2));
        for round in 1..=4 {
            let view = RoundView { round, ring: &ring, agents: vec![].into(), visited: &visited };
            let expected = if round % 2 == 1 { EdgeId::new(0) } else { EdgeId::new(2) };
            assert_eq!(policy.select(&view, &[]), Some(expected));
        }
    }

    #[test]
    fn confine_window_blocks_escapes_only() {
        let ring = RingTopology::new(8).unwrap();
        let visited = vec![false; 8];
        // Window = nodes 2..5 (CCW arc).
        let mut policy = ConfineWindow::new(NodeId::new(2), NodeId::new(5));
        // Moving within the window is allowed.
        let inside = vec![mover(0, 3, GlobalDirection::Ccw, &ring)];
        let view = RoundView { round: 1, ring: &ring, agents: inside.into(), visited: &visited };
        let active = all_ids(&view);
        assert_eq!(policy.select(&view, &active), None);
        // Trying to leave over the boundary is blocked.
        let escaping = vec![mover(0, 5, GlobalDirection::Ccw, &ring)];
        let view = RoundView { round: 1, ring: &ring, agents: escaping.into(), visited: &visited };
        let active = all_ids(&view);
        assert_eq!(policy.select(&view, &active), Some(EdgeId::new(5)));
        // Leaving at the other boundary (CW from node 2) is blocked as well.
        let escaping = vec![mover(0, 2, GlobalDirection::Cw, &ring)];
        let view = RoundView { round: 1, ring: &ring, agents: escaping.into(), visited: &visited };
        let active = all_ids(&view);
        assert_eq!(policy.select(&view, &active), Some(EdgeId::new(1)));
    }

    #[test]
    fn sticky_random_edge_holds_choices() {
        let ring = RingTopology::new(10).unwrap();
        let visited = vec![false; 10];
        let mut policy = StickyRandomEdge::new(3, 3, 0.0, 7);
        let mut last = None;
        let mut switches = 0;
        for round in 1..=12 {
            let view = RoundView { round, ring: &ring, agents: vec![].into(), visited: &visited };
            let choice = policy.select(&view, &[]);
            assert!(choice.is_some());
            if choice != last {
                switches += 1;
                last = choice;
            }
        }
        // With a hold of exactly 3 rounds, at most ceil(12/3) = 4 distinct episodes.
        assert!(switches <= 4, "too many switches: {switches}");
    }

    #[test]
    fn random_edge_probability_bounds() {
        let ring = RingTopology::new(10).unwrap();
        let visited = vec![false; 10];
        let mut never = RandomEdge::new(0.0, 3);
        let mut always = RandomEdge::new(1.0, 3);
        let view = RoundView { round: 1, ring: &ring, agents: vec![].into(), visited: &visited };
        assert_eq!(never.select(&view, &[]), None);
        assert!(always.select(&view, &[]).is_some());
    }
}
