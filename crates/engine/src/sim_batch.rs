//! Batched lockstep execution: one instruction stream stepping B runs.
//!
//! A [`SimBatch`] instantiates B *lanes* — independent runs sharing one
//! shape (ring size, team size, synchrony model) but each with its own
//! [`RunSpec`] (seed/placement), activation policy and edge adversary — and
//! steps every lane in lockstep, one round per lane per iteration. The
//! per-agent hot state is laid out **run-major**: one flat dense `Vec` per
//! field, lane ℓ's agents occupying the stride `[ℓ·A .. (ℓ+1)·A]`, so the
//! round phases become straight-line loops over contiguous lanes that the
//! compiler can pipeline across lanes (each lane's work is independent,
//! which breaks the round-to-round dependency chain that limits a solo run).
//!
//! # Byte-identical by construction
//!
//! The batch does not reimplement the round semantics: each lane's round is
//! executed by the *same* slice-level functions the solo
//! [`Simulation`](crate::sim::Simulation) runs —
//! `fill_round_fsync_lane`/`fill_agent_views_lane` for the fill + Look
//! phases and `resolve_lane` for resolution, passive transport and
//! bookkeeping — over a `LaneRef`/`LaneStateMut` view of the lane's
//! stride. Every per-lane policy instance is consulted exactly as often, in
//! exactly the same per-round order, with exactly the same
//! [`RoundView`], as in a solo run, so seeded policies consume their RNG
//! draws identically and the harvested [`RunReport`]s are byte-identical to
//! sequential execution (`tests/batch_lockstep_equivalence.rs` pins this).
//! Lanes whose spec records a trace append into a per-lane columnar
//! [`Trace`] through the same `record_round_from_lane` fast path as the
//! solo step, so batched traces (read back via [`SimBatch::trace`]) are
//! byte-identical to solo traces as well — trace cells no longer need to
//! fall back to solo execution.
//!
//! # Compaction and recycling
//!
//! Lanes whose stop condition holds (or that deadlock) are harvested
//! immediately and swap-compacted out of the *active index set* — the lane
//! data stays in place, only the index list shrinks — so late rounds never
//! touch finished runs. [`SimBatch::recycle`] rewinds every lane to round
//! zero with bulk fills over the flat arrays; like the solo lifecycle
//! (PR 5), a recycled batch of unchanged shape performs **zero heap
//! allocations** per run in steady state (the sweep bench asserts this with
//! a counting allocator).

use crate::adversary::EdgePolicy;
use crate::error::EngineError;
use crate::scheduler::ActivationPolicy;
use crate::sim::{resolve_lane, RunReport, RunSpec, StopCondition, StopReason};
use crate::trace::Trace;
use crate::world::{
    build_snapshot_lane, fill_agent_views_lane, predict_action, to_global, to_local, AgentProgram, PredictedAction,
    AgentSoA, AgentView, LaneRef, LaneStateMut, ProbePool, RoundView,
};
use dynring_graph::{AgentId, GlobalDirection, Handedness, NodeId, RingTopology};
use dynring_model::{
    Decision, LocalDirection, LocalPosition, NodeOccupancy, PriorOutcome, Snapshot,
    TerminationKind, TransportModel,
};
use std::borrow::Cow;

/// One lane of a batch: the run's spec plus its policy instances.
///
/// The policies are per-lane (each lane owns its activation policy and edge
/// adversary, typically seeded differently), while the *shape* — ring size,
/// team size, synchrony model — must agree across every lane loaded into one
/// [`SimBatch`].
pub struct BatchLane {
    /// The compiled run (ring, synchrony, agent placements/templates).
    pub spec: RunSpec,
    /// The lane's activation policy (consulted only under SSYNC).
    pub activation: Box<dyn ActivationPolicy>,
    /// The lane's edge adversary.
    pub edges: Box<dyn EdgePolicy>,
}

/// Per-lane round scratch: the batched counterpart of the solo round
/// scratch, kept per lane because the fill results (views, predictions,
/// active set) must survive from the fill phase to the resolution phase of
/// the same round while other lanes run theirs. All buffers reuse their
/// capacity across rounds and recycles.
#[derive(Default)]
struct LaneScratch {
    views: Vec<AgentView>,
    predicted: Vec<Option<Decision>>,
    decisions: Vec<Option<Decision>>,
    active: Vec<AgentId>,
    chosen: Vec<AgentId>,
    active_mask: Vec<bool>,
    claimed: Vec<(NodeId, GlobalDirection)>,
    probes: ProbePool,
    /// Node of each agent at the start of the round (trace recording only).
    nodes_before: Vec<NodeId>,
}

/// A batch of B same-shape runs stepped in lockstep (see the [module
/// docs](self)).
///
/// Lifecycle: [`load`](SimBatch::load) a group of lanes (validates the
/// shared shape and rewinds to round zero), [`run_into`](SimBatch::run_into)
/// to play every lane to its stop condition, then either
/// [`recycle`](SimBatch::recycle) for another cycle of the same lanes or
/// `load` the next group — all buffers are reused across both.
#[derive(Default)]
pub struct SimBatch {
    ring_size: usize,
    agent_count: usize,
    fsync: bool,
    transport_pt: bool,
    rings: Vec<RingTopology>,
    specs: Vec<RunSpec>,
    activation: Vec<Box<dyn ActivationPolicy>>,
    edges: Vec<Box<dyn EdgePolicy>>,
    // Run-major hot state: one entry per (lane, agent), stride `agent_count`.
    node: Vec<NodeId>,
    held_port: Vec<Option<GlobalDirection>>,
    terminated: Vec<bool>,
    handedness: Vec<Handedness>,
    prior: Vec<PriorOutcome>,
    program: Vec<AgentProgram>,
    moves: Vec<u64>,
    activations: Vec<u64>,
    last_active_round: Vec<u64>,
    asleep_on_port: Vec<u64>,
    terminated_at: Vec<Option<u64>>,
    poll_termination: Vec<bool>,
    visited_count: Vec<usize>,
    // Per-(lane, agent) visit rows, stride `agent_count * ring_size`.
    agent_visited: Vec<bool>,
    // Per-lane ring state, stride `ring_size`.
    visited: Vec<bool>,
    node_population: Vec<u32>,
    // Per-lane scalars.
    crowded_nodes: Vec<usize>,
    unvisited: Vec<usize>,
    alive: Vec<usize>,
    round: Vec<u64>,
    explored_at: Vec<Option<u64>>,
    /// Indices of lanes still running, swap-compacted as lanes finish.
    active_lanes: Vec<usize>,
    /// Whether the hot state holds a completed cycle (so `recycle` can undo
    /// the node populations agent-by-agent instead of clearing `O(n)` rows).
    primed: bool,
    // Flat FSYNC round scratch, stride `agent_count` — written in place
    // every round (no per-round clears), read back within the same round.
    fviews: Vec<AgentView>,
    fdecisions: Vec<Decision>,
    factive: Vec<AgentId>,
    fclaimed: Vec<(NodeId, GlobalDirection)>,
    // Flat FSYNC trace scratch, stride `agent_count` — written only for
    // trace-recording lanes (the fused round keeps plain `Decision`s and no
    // activity mask, so the trace's solo-shaped inputs are staged here).
    fnodes_before: Vec<NodeId>,
    factive_mask: Vec<bool>,
    fdecisions_opt: Vec<Option<Decision>>,
    /// Per-lane recorded traces (`None` for lanes whose spec runs
    /// trace-off); columnar flat appends, recycled capacity-intact.
    traces: Vec<Option<Trace>>,
    /// Per-lane scratch of the SSYNC path (live policy state machines need
    /// the solo round shape; see `step_round_ssync`).
    lane_scratch: Vec<LaneScratch>,
}

/// Clears and refills a flat array to `len` copies of `value`, reusing the
/// existing capacity (the actual per-lane values are written by `recycle`).
fn refit<T: Clone>(buffer: &mut Vec<T>, len: usize, value: T) {
    buffer.clear();
    buffer.resize(len, value);
}

/// Hot state of one lane on the fused FSYNC path: the lane's slices of the
/// batch's flat arrays plus its round-level counters, hoisted once per
/// [`SimBatch::run_into`] and carried across the whole round loop (the
/// counters live in registers; the caller writes them back when the lane
/// stops). [`FsyncLane::round`] is the solo `step_impl` FSYNC tier fused
/// into one pass: fill (+ fused predictions), adversary selection, Compute
/// and resolution, with the round scratch written in place — no per-round
/// `Vec` traffic and no re-slicing.
struct FsyncLane<'x> {
    ring: &'x RingTopology,
    edges: &'x mut Box<dyn EdgePolicy>,
    node: &'x mut [NodeId],
    held: &'x mut [Option<GlobalDirection>],
    term: &'x mut [bool],
    hand: &'x [Handedness],
    prior: &'x mut [PriorOutcome],
    prog: &'x mut [AgentProgram],
    moves: &'x mut [u64],
    activations: &'x mut [u64],
    last_active: &'x mut [u64],
    asleep: &'x mut [u64],
    terminated_at: &'x mut [Option<u64>],
    poll: &'x [bool],
    vcount: &'x mut [usize],
    views: &'x mut [AgentView],
    dec: &'x mut [Decision],
    act: &'x mut [AgentId],
    claim: &'x mut [(NodeId, GlobalDirection)],
    visited: &'x mut [bool],
    population: &'x mut [u32],
    avisited: &'x mut [bool],
    /// The lane's trace, when its spec records one. The fused round keeps
    /// plain `Decision`s and no activity mask, so `tnodes`/`tmask`/`tdec`
    /// stage the solo-shaped record inputs; they are written only while
    /// `trace` is `Some`.
    trace: Option<&'x mut Trace>,
    tnodes: &'x mut [NodeId],
    tmask: &'x mut [bool],
    tdec: &'x mut [Option<Decision>],
    crowded: usize,
    alive: usize,
    unvisited: usize,
    explored: Option<u64>,
    r: u64,
}

impl FsyncLane<'_> {
    /// Whether the lane's stop condition holds (mirrors the solo
    /// `stop_condition_met`).
    #[inline]
    fn stop_met(&self, stop: StopCondition, a: usize) -> bool {
        match stop {
            StopCondition::Explored => self.explored.is_some(),
            StopCondition::ExploredAndPartialTermination => {
                self.explored.is_some() && self.alive < a
            }
            StopCondition::AllTerminated => self.alive == 0,
            StopCondition::RoundBudget => false,
        }
    }

    /// The solo loop's cull, run before every stepped round: `Some` reason
    /// if the lane must stop now.
    #[inline]
    fn cull(&self, stop: StopCondition, a: usize) -> Option<StopReason> {
        if self.stop_met(stop, a) {
            Some(StopReason::ConditionMet)
        } else if self.alive == 0 {
            Some(StopReason::Deadlocked)
        } else {
            None
        }
    }

    /// One FSYNC round. Per lane the observable sequence — snapshot
    /// contents, `decide` call order, the `RoundView` handed to the
    /// adversary, port mutual exclusion, movement and bookkeeping — is
    /// exactly the solo `step_impl` FSYNC tier, so seeded policies consume
    /// their draws identically and the lane state stays byte-identical to
    /// a solo run (`tests/batch_lockstep_equivalence.rs`). `predict` is
    /// `EdgePolicy::needs_predictions`, hoisted by the caller: it takes
    /// `&self`, so its answer cannot change between rounds.
    #[inline(always)]
    #[allow(clippy::too_many_lines)]
    fn round(&mut self, a: usize, n: usize, predict: bool) {
        self.r += 1;
        let r = self.r;
        // Start-of-round snapshot for the trace (trace-only work): under
        // FSYNC the active set is exactly the agents live at the start of
        // the round, and every one of them decides.
        if self.trace.is_some() {
            self.tnodes.copy_from_slice(self.node);
            for index in 0..a {
                self.tmask[index] = !self.term[index];
            }
        }
        // Compute-on-fill (predict tier): the dry run *is* this round's
        // Compute under FSYNC, so run every live agent's protocol first,
        // keeping only the decide inputs live across the opaque calls.
        if predict {
            for index in 0..a {
                if self.term[index] {
                    continue;
                }
                let snapshot = snapshot_at(
                    self.ring,
                    self.crowded,
                    self.node,
                    self.held,
                    index,
                    self.hand[index],
                    self.prior[index],
                    r,
                );
                self.dec[index] = self.prog[index].decide(&snapshot);
            }
        }
        // Views, the active set and the start-of-round port claims —
        // straight-line array work, no calls.
        let mut active_len = 0;
        let mut claimed_len = 0;
        for index in 0..a {
            let is_terminated = self.term[index];
            let at = self.node[index];
            let held = self.held[index];
            let hand = self.hand[index];
            if !is_terminated {
                self.act[active_len] = AgentId::new(index);
                active_len += 1;
            }
            if let Some(port) = held {
                self.claim[claimed_len] = (at, port);
                claimed_len += 1;
            }
            let predicted = if is_terminated {
                PredictedAction::Terminate
            } else if predict {
                predict_action(self.ring, at, hand, self.dec[index])
            } else {
                PredictedAction::Stay
            };
            self.views[index] = AgentView {
                id: AgentId::new(index),
                node: at,
                held_port: held,
                terminated: is_terminated,
                handedness: hand,
                predicted,
                last_active_round: self.last_active[index],
                asleep_on_port: self.asleep[index],
                moves: self.moves[index],
            };
        }
        // Selection: the lane's adversary sees exactly the solo round view
        // and picks the missing edge.
        let view = RoundView {
            round: r,
            ring: self.ring,
            agents: Cow::Borrowed(&self.views[..]),
            visited: &self.visited[..],
        };
        let missing = self.edges.select(&view, &self.act[..active_len]).filter(|e| e.index() < n);
        drop(view);
        // Compute (non-predict tier: live agents decide only now, after
        // the adversary moved).
        if !predict {
            for index in 0..a {
                if self.term[index] {
                    continue;
                }
                let snapshot = snapshot_at(
                    self.ring,
                    self.crowded,
                    self.node,
                    self.held,
                    index,
                    self.hand[index],
                    self.prior[index],
                    r,
                );
                self.dec[index] = self.prog[index].decide(&snapshot);
            }
        }
        // Resolution + FSYNC bookkeeping — the `resolve_lane` FSYNC branch
        // (PT never applies to FSYNC). Every agent in the active set
        // decided this round.
        for k in 0..active_len {
            let index = self.act[k].index();
            let decision = self.dec[index];
            self.activations[index] += 1;
            self.last_active[index] = r;
            self.asleep[index] = 0;
            match decision {
                Decision::Terminate => {
                    self.alive -= 1;
                    self.term[index] = true;
                    self.terminated_at[index] = Some(r);
                    self.held[index] = None;
                    self.prior[index] = PriorOutcome::Idle;
                }
                Decision::Stay => {
                    self.prior[index] = PriorOutcome::Idle;
                }
                Decision::Retreat => {
                    self.held[index] = None;
                    self.prior[index] = PriorOutcome::Idle;
                }
                Decision::Move(ldir) => {
                    // The fill phase already resolved the local direction
                    // against the topology for the adversary's dry run;
                    // reuse it.
                    let at = self.node[index];
                    let (gdir, edge) = match self.views[index].predicted {
                        PredictedAction::Move { edge, direction } if predict => {
                            (direction, edge)
                        }
                        _ => {
                            let g = to_global(self.hand[index], ldir);
                            (g, self.ring.edge_towards(at, g))
                        }
                    };
                    let already_held = self.held[index] == Some(gdir);
                    if !already_held {
                        self.held[index] = None;
                        if self.claim[..claimed_len].contains(&(at, gdir)) {
                            self.prior[index] = PriorOutcome::PortAcquisitionFailed;
                            continue;
                        }
                        self.held[index] = Some(gdir);
                        self.claim[claimed_len] = (at, gdir);
                        claimed_len += 1;
                    }
                    if missing == Some(edge) {
                        self.prior[index] = PriorOutcome::BlockedOnPort;
                    } else {
                        let destination = self.ring.neighbor(at, gdir);
                        self.node[index] = destination;
                        self.held[index] = None;
                        self.prior[index] = PriorOutcome::Moved;
                        self.moves[index] += 1;
                        AgentSoA::relocate(self.population, &mut self.crowded, at, destination);
                        let node_index = destination.index();
                        if !self.visited[node_index] {
                            self.visited[node_index] = true;
                            self.unvisited -= 1;
                        }
                        let cell = &mut self.avisited[index * n + node_index];
                        if !*cell {
                            *cell = true;
                            self.vcount[index] += 1;
                        }
                    }
                }
            }
            if self.poll[index] && self.prog[index].has_terminated() && !self.term[index] {
                self.alive -= 1;
                self.term[index] = true;
                self.terminated_at[index] = Some(r);
                self.held[index] = None;
            }
        }
        if self.explored.is_none() && self.unvisited == 0 {
            self.explored = Some(r);
        }
        // Trace recording: the same columnar flat appends as the solo step,
        // fed from the staged solo-shaped inputs (`Option` decisions exist
        // exactly for the agents active at the start of the round).
        if let Some(trace) = self.trace.as_mut() {
            for index in 0..a {
                self.tdec[index] = if self.tmask[index] { Some(self.dec[index]) } else { None };
            }
            trace.record_round_from_lane(
                r,
                missing,
                n - self.unvisited,
                n,
                &self.act[..active_len],
                self.tmask,
                self.tnodes,
                self.node,
                self.held,
                self.tdec,
                self.prior,
                self.term,
                self.prog,
            );
        }
    }
}

/// Builds the [`LaneRef`] of lane `lane` from the batch's flat arrays.
#[allow(clippy::too_many_arguments)]
fn lane_ref_at<'a>(
    lane: usize,
    a: usize,
    node: &'a [NodeId],
    held_port: &'a [Option<GlobalDirection>],
    terminated: &'a [bool],
    handedness: &'a [Handedness],
    prior: &'a [PriorOutcome],
    last_active_round: &'a [u64],
    asleep_on_port: &'a [u64],
    moves: &'a [u64],
    crowded_nodes: usize,
) -> LaneRef<'a> {
    LaneRef {
        node: &node[lane * a..][..a],
        held_port: &held_port[lane * a..][..a],
        terminated: &terminated[lane * a..][..a],
        handedness: &handedness[lane * a..][..a],
        prior: &prior[lane * a..][..a],
        last_active_round: &last_active_round[lane * a..][..a],
        asleep_on_port: &asleep_on_port[lane * a..][..a],
        moves: &moves[lane * a..][..a],
        crowded_nodes,
    }
}

/// The solo `build_snapshot` over hoisted lane slices — what agent
/// `observer` perceives during Look, with the occupancy scan skipped while
/// no node in the lane holds two agents (`crowded == 0`). FSYNC only
/// (`round_hint` always set).
#[allow(clippy::too_many_arguments)]
fn snapshot_at(
    ring: &RingTopology,
    crowded: usize,
    node: &[NodeId],
    held_port: &[Option<GlobalDirection>],
    observer: usize,
    observer_handedness: Handedness,
    prior: PriorOutcome,
    round: u64,
) -> Snapshot {
    let observer_node = node[observer];
    let mut occupancy = NodeOccupancy::default();
    if crowded > 0 {
        for index in 0..node.len() {
            if index == observer || node[index] != observer_node {
                continue;
            }
            match held_port[index] {
                None => occupancy.in_node += 1,
                Some(gdir) => match to_local(observer_handedness, gdir) {
                    LocalDirection::Left => occupancy.on_left_port += 1,
                    LocalDirection::Right => occupancy.on_right_port += 1,
                },
            }
        }
    }
    let position = match held_port[observer] {
        None => LocalPosition::InNode,
        Some(gdir) => LocalPosition::OnPort(to_local(observer_handedness, gdir)),
    };
    Snapshot {
        position,
        is_landmark: ring.is_landmark(observer_node),
        occupancy,
        prior,
        round_hint: Some(round),
    }
}

impl std::fmt::Debug for SimBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBatch")
            .field("lanes", &self.specs.len())
            .field("ring_size", &self.ring_size)
            .field("agent_count", &self.agent_count)
            .field("fsync", &self.fsync)
            .field("active_lanes", &self.active_lanes.len())
            .finish_non_exhaustive()
    }
}

impl SimBatch {
    /// An empty batch; [`load`](SimBatch::load) lanes into it before running.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lanes currently loaded.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.specs.len()
    }

    /// Whether no lanes are loaded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The recorded trace of lane `lane` — `Some` once the lane has run iff
    /// its spec enabled trace recording. The trace is byte-identical to the
    /// one a solo [`Simulation`](crate::sim::Simulation) of the same
    /// spec/policies would record (`tests/batch_lockstep_equivalence.rs`).
    #[must_use]
    pub fn trace(&self, lane: usize) -> Option<&Trace> {
        self.traces.get(lane).and_then(Option::as_ref)
    }

    /// Loads a group of lanes, replacing any previous group while reusing
    /// every buffer, and rewinds the batch to round zero (an implicit
    /// [`recycle`](SimBatch::recycle)).
    ///
    /// # Errors
    ///
    /// [`EngineError::NoAgents`] for an empty group;
    /// [`EngineError::BatchMismatch`] when a lane's ring size, team size or
    /// synchrony model differs from lane 0's. Trace recording is per lane
    /// (any mix of trace-on and trace-off lanes batches fine): a lane whose
    /// spec records a trace fills it during the run, readable via
    /// [`trace`](SimBatch::trace) after [`run_into`](SimBatch::run_into).
    pub fn load(&mut self, lanes: Vec<BatchLane>) -> Result<(), EngineError> {
        let Some(first) = lanes.first() else {
            return Err(EngineError::NoAgents);
        };
        let n = first.spec.ring().size();
        let a = first.spec.agent_count();
        let synchrony = first.spec.synchrony();
        for (index, lane) in lanes.iter().enumerate() {
            if lane.spec.ring().size() != n {
                return Err(EngineError::BatchMismatch { lane: index, what: "ring size" });
            }
            if lane.spec.agent_count() != a {
                return Err(EngineError::BatchMismatch { lane: index, what: "team size" });
            }
            if lane.spec.synchrony() != synchrony {
                return Err(EngineError::BatchMismatch { lane: index, what: "synchrony model" });
            }
        }
        let b = lanes.len();
        self.ring_size = n;
        self.agent_count = a;
        self.fsync = synchrony.is_fsync();
        self.transport_pt = synchrony.transport() == Some(TransportModel::PassiveTransport);
        self.rings.clear();
        self.specs.clear();
        self.activation.clear();
        self.edges.clear();
        for lane in lanes {
            self.rings.push(lane.spec.ring().clone());
            self.activation.push(lane.activation);
            self.edges.push(lane.edges);
            self.specs.push(lane.spec);
        }
        refit(&mut self.node, b * a, NodeId::new(0));
        refit(&mut self.held_port, b * a, None);
        refit(&mut self.terminated, b * a, false);
        refit(&mut self.handedness, b * a, Handedness::LeftIsCcw);
        refit(&mut self.prior, b * a, PriorOutcome::Idle);
        refit(&mut self.moves, b * a, 0);
        refit(&mut self.activations, b * a, 0);
        refit(&mut self.last_active_round, b * a, 0);
        refit(&mut self.asleep_on_port, b * a, 0);
        refit(&mut self.terminated_at, b * a, None);
        refit(&mut self.poll_termination, b * a, false);
        refit(&mut self.visited_count, b * a, 1);
        refit(&mut self.agent_visited, b * a * n, false);
        refit(&mut self.visited, b * n, false);
        refit(&mut self.node_population, b * n, 0);
        refit(&mut self.crowded_nodes, b, 0);
        refit(&mut self.unvisited, b, 0);
        refit(&mut self.alive, b, 0);
        refit(&mut self.round, b, 0);
        refit(&mut self.explored_at, b, None);
        let filler = AgentView {
            id: AgentId::new(0),
            node: NodeId::new(0),
            held_port: None,
            terminated: false,
            handedness: Handedness::LeftIsCcw,
            predicted: PredictedAction::Stay,
            last_active_round: 0,
            asleep_on_port: 0,
            moves: 0,
        };
        refit(&mut self.fviews, b * a, filler);
        refit(&mut self.fdecisions, b * a, Decision::Stay);
        refit(&mut self.factive, b * a, AgentId::new(0));
        refit(&mut self.fnodes_before, b * a, NodeId::new(0));
        refit(&mut self.factive_mask, b * a, false);
        refit(&mut self.fdecisions_opt, b * a, None);
        // Keep surviving lanes' trace allocations so a trace-on lane of the
        // next group recycles capacity-intact; `recycle` toggles per lane.
        self.traces.truncate(b);
        self.traces.resize_with(b, || None);
        // An agent can contribute two claim entries in one round (the port
        // it held at the start plus a newly acquired one), hence stride 2A.
        refit(&mut self.fclaimed, b * 2 * a, (NodeId::new(0), GlobalDirection::Cw));
        // Programs are refreshed by `recycle`; keeping the old entries lets
        // same-representation templates reset through `clone_from_program`
        // without reboxing.
        self.program.truncate(b * a);
        if self.lane_scratch.len() < b {
            self.lane_scratch.resize_with(b, LaneScratch::default);
        }
        // Handedness and the termination-polling flag are fixed by the
        // lane's templates, so they are written once per load, not per
        // recycle.
        for (lane, spec) in self.specs.iter().enumerate() {
            for (index, agent) in spec.agent_specs().iter().enumerate() {
                self.handedness[lane * a + index] = agent.handedness;
                self.poll_termination[lane * a + index] =
                    agent.program.termination_kind() != TerminationKind::Unconscious;
            }
        }
        self.primed = false;
        self.recycle();
        Ok(())
    }

    /// Rewinds every lane to round zero of its spec in place — the batched
    /// counterpart of [`Simulation::recycle`](crate::sim::Simulation::recycle).
    /// The shared fields reset through bulk fills over the flat arrays; the
    /// per-lane pass re-places the agents, restores each program from its
    /// pristine template and resets the lane's policies. When the shapes
    /// match the previous cycle this performs zero heap allocations.
    pub fn recycle(&mut self) {
        let b = self.specs.len();
        let a = self.agent_count;
        let n = self.ring_size;
        if self.primed {
            // Every agent (terminated ones included) still occupies exactly
            // one node, so undoing the occupancy agent-by-agent zeroes the
            // populations in O(lanes * agents) instead of O(lanes * n).
            for (flat, at) in self.node.iter().enumerate() {
                self.node_population[(flat / a) * n + at.index()] -= 1;
            }
        } else {
            self.node_population.fill(0);
            self.primed = true;
        }
        self.visited.fill(false);
        self.agent_visited.fill(false);
        self.held_port.fill(None);
        self.terminated.fill(false);
        self.prior.fill(PriorOutcome::Idle);
        self.terminated_at.fill(None);
        self.visited_count.fill(1);
        self.explored_at.fill(None);
        bulk::zero_u64(&mut self.moves);
        bulk::zero_u64(&mut self.activations);
        bulk::zero_u64(&mut self.last_active_round);
        bulk::zero_u64(&mut self.asleep_on_port);
        bulk::zero_u64(&mut self.round);
        self.crowded_nodes.fill(0);
        self.alive.fill(a);
        for (lane, spec) in self.specs.iter().enumerate() {
            let mut start_nodes = 0;
            for (index, agent) in spec.agent_specs().iter().enumerate() {
                let flat = lane * a + index;
                self.node[flat] = agent.start;
                if let Some(live) = self.program.get_mut(flat) {
                    if !live.clone_from_program(&agent.program) {
                        *live = agent.program.clone_program();
                    }
                } else {
                    self.program.push(agent.program.clone_program());
                }
                self.agent_visited[flat * n + agent.start.index()] = true;
                let population = &mut self.node_population[lane * n + agent.start.index()];
                *population += 1;
                if *population == 2 {
                    self.crowded_nodes[lane] += 1;
                }
                let slot = &mut self.visited[lane * n + agent.start.index()];
                if !*slot {
                    *slot = true;
                    start_nodes += 1;
                }
            }
            self.unvisited[lane] = n - start_nodes;
            self.activation[lane].reset();
            self.edges[lane].reset();
            // Same toggle as the solo recycle: clearing keeps the columns'
            // capacity, so a recycled trace-on lane records allocation-free.
            match (&mut self.traces[lane], spec.record_trace()) {
                (Some(trace), true) => trace.clear(),
                (slot @ None, true) => *slot = Some(Trace::new()),
                (slot, false) => *slot = None,
            }
        }
        self.active_lanes.clear();
        self.active_lanes.extend(0..b);
    }

    /// Plays every lane until its stop condition holds, it deadlocks, or the
    /// round budget is exhausted, writing lane ℓ's summary into
    /// `reports[ℓ]` (resized to the lane count; per-lane vectors reuse their
    /// capacity, so a recycled batch summarising into a recycled report
    /// vector allocates nothing). Each lane's report is byte-identical to
    /// running its spec/policies solo via
    /// [`Simulation::run_into`](crate::sim::Simulation::run_into) with the
    /// same budget and stop condition.
    ///
    /// One `run_into` consumes the current cycle: call
    /// [`recycle`](SimBatch::recycle) (or [`load`](SimBatch::load)) before
    /// the next one.
    pub fn run_into(
        &mut self,
        max_rounds: u64,
        stop: StopCondition,
        reports: &mut Vec<RunReport>,
    ) {
        let b = self.specs.len();
        reports.truncate(b);
        if reports.len() < b {
            reports.resize_with(b, RunReport::default);
        }
        if self.fsync {
            // FSYNC lanes are fully independent (no cross-lane scheduler
            // state), so they are played to completion — adjacent pairs
            // with their rounds interleaved to keep two instruction
            // streams in flight — and harvested immediately.
            let mut i = 0;
            while i < self.active_lanes.len() {
                let lane = self.active_lanes[i];
                let paired = self.active_lanes.get(i + 1) == Some(&(lane + 1));
                if paired {
                    let (s0, s1) = self.run_lane_pair_fsync(lane, max_rounds, stop);
                    self.harvest(lane, s0, reports);
                    self.harvest(lane + 1, s1, reports);
                    i += 2;
                } else {
                    let reason = self.run_lane_fsync(lane, max_rounds, stop);
                    self.harvest(lane, reason, reports);
                    i += 1;
                }
            }
            self.active_lanes.clear();
            return;
        }
        for _ in 0..max_rounds {
            self.cull(stop, reports);
            if self.active_lanes.is_empty() {
                return;
            }
            self.step_round();
        }
        // Budget exhausted: the solo loop's final check — a lane whose stop
        // condition holds after the last budgeted round still reports
        // `ConditionMet`.
        for i in 0..self.active_lanes.len() {
            let lane = self.active_lanes[i];
            let reason = if self.lane_stop_met(lane, stop) {
                StopReason::ConditionMet
            } else {
                StopReason::BudgetExhausted
            };
            self.harvest(lane, reason, reports);
        }
        self.active_lanes.clear();
    }

    /// Whether lane `lane`'s stop condition holds (mirrors the solo
    /// `stop_condition_met`).
    fn lane_stop_met(&self, lane: usize, stop: StopCondition) -> bool {
        match stop {
            StopCondition::Explored => self.explored_at[lane].is_some(),
            StopCondition::ExploredAndPartialTermination => {
                self.explored_at[lane].is_some() && self.alive[lane] < self.agent_count
            }
            StopCondition::AllTerminated => self.alive[lane] == 0,
            StopCondition::RoundBudget => false,
        }
    }

    /// Harvests finished lanes out of the active set: a lane whose stop
    /// condition holds reports `ConditionMet`; a lane with no live agents
    /// (and an unmet condition) would make the solo `step` return `false`,
    /// so it reports `Deadlocked`. Matching the solo loop, this runs
    /// *before* each round is stepped.
    fn cull(&mut self, stop: StopCondition, reports: &mut [RunReport]) {
        let mut i = 0;
        while i < self.active_lanes.len() {
            let lane = self.active_lanes[i];
            let reason = if self.lane_stop_met(lane, stop) {
                Some(StopReason::ConditionMet)
            } else if self.alive[lane] == 0 {
                Some(StopReason::Deadlocked)
            } else {
                None
            };
            match reason {
                Some(reason) => {
                    self.harvest(lane, reason, reports);
                    self.active_lanes.swap_remove(i);
                }
                None => i += 1,
            }
        }
    }

    /// Writes lane `lane`'s summary into `reports[lane]` — field for field
    /// the solo `report_into`, reading the per-agent visit totals from the
    /// incrementally maintained counters.
    fn harvest(&self, lane: usize, reason: StopReason, reports: &mut [RunReport]) {
        let a = self.agent_count;
        let out = &mut reports[lane];
        out.rounds = self.round[lane];
        out.ring_size = self.ring_size;
        out.explored_at = self.explored_at[lane];
        out.visited_count = self.ring_size - self.unvisited[lane];
        out.termination_rounds.clear();
        out.termination_rounds.extend_from_slice(&self.terminated_at[lane * a..][..a]);
        out.all_terminated = self.alive[lane] == 0;
        out.moves_per_agent.clear();
        out.moves_per_agent.extend_from_slice(&self.moves[lane * a..][..a]);
        out.visited_per_agent.clear();
        out.visited_per_agent.extend_from_slice(&self.visited_count[lane * a..][..a]);
        out.total_moves = self.moves[lane * a..][..a].iter().sum();
        out.stop_reason = reason;
    }

    /// Advances every active lane by one round (SSYNC lockstep path; FSYNC
    /// lanes run to completion in [`SimBatch::run_lane_fsync`]).
    fn step_round(&mut self) {
        debug_assert!(!self.fsync);
        self.step_round_ssync();
    }

    /// Plays lane `lane` from its current round until its stop condition
    /// holds, it deadlocks, or `max_rounds` total rounds have been stepped,
    /// returning why it stopped. See [`FsyncLane`] for the fused round
    /// body; lanes are independent, so playing one to completion before
    /// the next is observationally equivalent to round-lockstep stepping.
    fn run_lane_fsync(&mut self, lane: usize, max_rounds: u64, stop: StopCondition) -> StopReason {
        let a = self.agent_count;
        let n = self.ring_size;
        debug_assert!(!self.transport_pt, "FSYNC has no passive transport");
        let base = lane * a;
        let Self {
            rings,
            round,
            edges,
            node,
            held_port,
            terminated,
            handedness,
            prior,
            program,
            moves,
            activations,
            last_active_round,
            asleep_on_port,
            terminated_at,
            poll_termination,
            agent_visited,
            visited_count,
            visited,
            node_population,
            crowded_nodes,
            unvisited,
            alive,
            explored_at,
            fviews,
            fdecisions,
            factive,
            fclaimed,
            fnodes_before,
            factive_mask,
            fdecisions_opt,
            traces,
            ..
        } = self;
        let mut hot = FsyncLane {
            ring: &rings[lane],
            edges: &mut edges[lane],
            node: &mut node[base..base + a],
            held: &mut held_port[base..base + a],
            term: &mut terminated[base..base + a],
            hand: &handedness[base..base + a],
            prior: &mut prior[base..base + a],
            prog: &mut program[base..base + a],
            moves: &mut moves[base..base + a],
            activations: &mut activations[base..base + a],
            last_active: &mut last_active_round[base..base + a],
            asleep: &mut asleep_on_port[base..base + a],
            terminated_at: &mut terminated_at[base..base + a],
            poll: &poll_termination[base..base + a],
            vcount: &mut visited_count[base..base + a],
            views: &mut fviews[base..base + a],
            dec: &mut fdecisions[base..base + a],
            act: &mut factive[base..base + a],
            claim: &mut fclaimed[2 * base..2 * base + 2 * a],
            visited: &mut visited[lane * n..lane * n + n],
            population: &mut node_population[lane * n..lane * n + n],
            avisited: &mut agent_visited[base * n..base * n + a * n],
            trace: traces[lane].as_mut(),
            tnodes: &mut fnodes_before[base..base + a],
            tmask: &mut factive_mask[base..base + a],
            tdec: &mut fdecisions_opt[base..base + a],
            crowded: crowded_nodes[lane],
            alive: alive[lane],
            unvisited: unvisited[lane],
            explored: explored_at[lane],
            r: round[lane],
        };
        let predict = hot.edges.needs_predictions();
        let mut reason = None;
        for _ in 0..max_rounds {
            reason = hot.cull(stop, a);
            if reason.is_some() {
                break;
            }
            hot.round(a, n, predict);
        }
        // Budget exhausted: the solo loop's final check — a lane whose stop
        // condition holds after the last budgeted round still reports
        // `ConditionMet`.
        let reason = reason.unwrap_or(if hot.stop_met(stop, a) {
            StopReason::ConditionMet
        } else {
            StopReason::BudgetExhausted
        });
        crowded_nodes[lane] = hot.crowded;
        alive[lane] = hot.alive;
        unvisited[lane] = hot.unvisited;
        explored_at[lane] = hot.explored;
        round[lane] = hot.r;
        reason
    }

    /// Plays the adjacent lane pair `(lane, lane + 1)` with their rounds
    /// interleaved in one loop: lane `lane` steps round *r*, then lane
    /// `lane + 1` steps round *r*, and so on. Each lane's observable
    /// sequence is untouched (lanes share no state), but the two
    /// independent instruction streams overlap in the pipeline, hiding the
    /// protocols' loop-carried Compute latency that a lane run serially
    /// would expose.
    #[allow(clippy::too_many_lines)]
    fn run_lane_pair_fsync(
        &mut self,
        lane: usize,
        max_rounds: u64,
        stop: StopCondition,
    ) -> (StopReason, StopReason) {
        let a = self.agent_count;
        let n = self.ring_size;
        debug_assert!(!self.transport_pt, "FSYNC has no passive transport");
        let base = lane * a;
        let Self {
            rings,
            round,
            edges,
            node,
            held_port,
            terminated,
            handedness,
            prior,
            program,
            moves,
            activations,
            last_active_round,
            asleep_on_port,
            terminated_at,
            poll_termination,
            agent_visited,
            visited_count,
            visited,
            node_population,
            crowded_nodes,
            unvisited,
            alive,
            explored_at,
            fviews,
            fdecisions,
            factive,
            fclaimed,
            fnodes_before,
            factive_mask,
            fdecisions_opt,
            traces,
            ..
        } = self;
        let (edges0, edges1) = edges[lane..lane + 2].split_at_mut(1);
        let (node0, node1) = node[base..base + 2 * a].split_at_mut(a);
        let (held0, held1) = held_port[base..base + 2 * a].split_at_mut(a);
        let (term0, term1) = terminated[base..base + 2 * a].split_at_mut(a);
        let (hand0, hand1) = handedness[base..base + 2 * a].split_at(a);
        let (prior0, prior1) = prior[base..base + 2 * a].split_at_mut(a);
        let (prog0, prog1) = program[base..base + 2 * a].split_at_mut(a);
        let (moves0, moves1) = moves[base..base + 2 * a].split_at_mut(a);
        let (activations0, activations1) = activations[base..base + 2 * a].split_at_mut(a);
        let (last0, last1) = last_active_round[base..base + 2 * a].split_at_mut(a);
        let (asleep0, asleep1) = asleep_on_port[base..base + 2 * a].split_at_mut(a);
        let (tat0, tat1) = terminated_at[base..base + 2 * a].split_at_mut(a);
        let (poll0, poll1) = poll_termination[base..base + 2 * a].split_at(a);
        let (vcount0, vcount1) = visited_count[base..base + 2 * a].split_at_mut(a);
        let (views0, views1) = fviews[base..base + 2 * a].split_at_mut(a);
        let (dec0, dec1) = fdecisions[base..base + 2 * a].split_at_mut(a);
        let (act0, act1) = factive[base..base + 2 * a].split_at_mut(a);
        let (claim0, claim1) = fclaimed[2 * base..2 * base + 4 * a].split_at_mut(2 * a);
        let (visited0, visited1) = visited[lane * n..(lane + 2) * n].split_at_mut(n);
        let (pop0, pop1) = node_population[lane * n..(lane + 2) * n].split_at_mut(n);
        let (av0, av1) = agent_visited[base * n..base * n + 2 * a * n].split_at_mut(a * n);
        let (tn0, tn1) = fnodes_before[base..base + 2 * a].split_at_mut(a);
        let (tm0, tm1) = factive_mask[base..base + 2 * a].split_at_mut(a);
        let (td0, td1) = fdecisions_opt[base..base + 2 * a].split_at_mut(a);
        let (trace0, trace1) = traces[lane..lane + 2].split_at_mut(1);
        let mut h0 = FsyncLane {
            ring: &rings[lane],
            edges: &mut edges0[0],
            node: node0,
            held: held0,
            term: term0,
            hand: hand0,
            prior: prior0,
            prog: prog0,
            moves: moves0,
            activations: activations0,
            last_active: last0,
            asleep: asleep0,
            terminated_at: tat0,
            poll: poll0,
            vcount: vcount0,
            views: views0,
            dec: dec0,
            act: act0,
            claim: claim0,
            visited: visited0,
            population: pop0,
            avisited: av0,
            trace: trace0[0].as_mut(),
            tnodes: tn0,
            tmask: tm0,
            tdec: td0,
            crowded: crowded_nodes[lane],
            alive: alive[lane],
            unvisited: unvisited[lane],
            explored: explored_at[lane],
            r: round[lane],
        };
        let mut h1 = FsyncLane {
            ring: &rings[lane + 1],
            edges: &mut edges1[0],
            node: node1,
            held: held1,
            term: term1,
            hand: hand1,
            prior: prior1,
            prog: prog1,
            moves: moves1,
            activations: activations1,
            last_active: last1,
            asleep: asleep1,
            terminated_at: tat1,
            poll: poll1,
            vcount: vcount1,
            views: views1,
            dec: dec1,
            act: act1,
            claim: claim1,
            visited: visited1,
            population: pop1,
            avisited: av1,
            trace: trace1[0].as_mut(),
            tnodes: tn1,
            tmask: tm1,
            tdec: td1,
            crowded: crowded_nodes[lane + 1],
            alive: alive[lane + 1],
            unvisited: unvisited[lane + 1],
            explored: explored_at[lane + 1],
            r: round[lane + 1],
        };
        let predict0 = h0.edges.needs_predictions();
        let predict1 = h1.edges.needs_predictions();
        let mut s0 = None;
        let mut s1 = None;
        for _ in 0..max_rounds {
            if s0.is_none() {
                s0 = h0.cull(stop, a);
            }
            if s1.is_none() {
                s1 = h1.cull(stop, a);
            }
            if s0.is_some() && s1.is_some() {
                break;
            }
            if s0.is_none() {
                h0.round(a, n, predict0);
            }
            if s1.is_none() {
                h1.round(a, n, predict1);
            }
        }
        let s0 = s0.unwrap_or(if h0.stop_met(stop, a) {
            StopReason::ConditionMet
        } else {
            StopReason::BudgetExhausted
        });
        let s1 = s1.unwrap_or(if h1.stop_met(stop, a) {
            StopReason::ConditionMet
        } else {
            StopReason::BudgetExhausted
        });
        crowded_nodes[lane] = h0.crowded;
        alive[lane] = h0.alive;
        unvisited[lane] = h0.unvisited;
        explored_at[lane] = h0.explored;
        round[lane] = h0.r;
        crowded_nodes[lane + 1] = h1.crowded;
        alive[lane + 1] = h1.alive;
        unvisited[lane + 1] = h1.unvisited;
        explored_at[lane + 1] = h1.explored;
        round[lane + 1] = h1.r;
        (s0, s1)
    }

    fn step_round_ssync(&mut self) {
        let a = self.agent_count;
        let n = self.ring_size;
        let Self {
            active_lanes,
            rings,
            round,
            lane_scratch,
            activation,
            edges,
            node,
            held_port,
            terminated,
            handedness,
            prior,
            program,
            moves,
            activations,
            last_active_round,
            asleep_on_port,
            terminated_at,
            poll_termination,
            agent_visited,
            visited_count,
            visited,
            node_population,
            crowded_nodes,
            unvisited,
            alive,
            explored_at,
            transport_pt,
            traces,
            ..
        } = self;
        for &lane in active_lanes.iter() {
            let r = round[lane] + 1;
            round[lane] = r;
            let ring = &rings[lane];
            let scratch = &mut lane_scratch[lane];
            let act_pred = activation[lane].needs_predictions();
            let edges_pred = edges[lane].needs_predictions();
            let predict = act_pred || edges_pred;
            // 1. Fill + activation choice (predictions only when the
            // activation policy reads them — the deferred tier below covers
            // an omniscient edge policy).
            {
                let lane_ref = lane_ref_at(
                    lane,
                    a,
                    node,
                    held_port,
                    terminated,
                    handedness,
                    prior,
                    last_active_round,
                    asleep_on_port,
                    moves,
                    crowded_nodes[lane],
                );
                fill_agent_views_lane(
                    &mut scratch.views,
                    &mut scratch.predicted,
                    &mut scratch.probes,
                    ring,
                    &lane_ref,
                    &program[lane * a..][..a],
                    r,
                    false,
                    act_pred,
                );
            }
            {
                let view = RoundView {
                    round: r,
                    ring,
                    agents: Cow::Borrowed(&scratch.views),
                    visited: &visited[lane * n..][..n],
                };
                scratch.active.clear();
                scratch.chosen.clear();
                activation[lane].select_into(&view, &mut scratch.chosen);
                let lane_terminated = &terminated[lane * a..][..a];
                scratch.chosen.retain(|id| lane_terminated.get(id.index()).is_some_and(|t| !*t));
                if scratch.chosen.len() > 1 {
                    scratch.chosen.sort_unstable();
                    scratch.chosen.dedup();
                }
                if scratch.chosen.is_empty() {
                    scratch.active.extend(view.alive().map(|agent| agent.id));
                } else {
                    scratch.active.extend(scratch.chosen.iter().copied());
                }
            }
            debug_assert!(
                scratch.active.windows(2).all(|w| w[0] < w[1]),
                "active set must be sorted and deduplicated"
            );
            scratch.active_mask.clear();
            scratch.active_mask.resize(a, false);
            for id in &scratch.active {
                scratch.active_mask[id.index()] = true;
            }
            // Keep the start-of-round nodes for the trace (trace-only work).
            if traces[lane].is_some() {
                scratch.nodes_before.clear();
                scratch.nodes_before.extend_from_slice(&node[lane * a..][..a]);
            }
            // Deferred predictions (omniscient edge policy, non-predicting
            // scheduler): actives decide on the live protocols, sleepers
            // dry-run a probe only if the edge policy reads them.
            let deferred = predict && !act_pred;
            if deferred {
                let probe_sleepers = edges[lane].needs_sleeper_predictions();
                scratch.decisions.clear();
                scratch.decisions.resize(a, None);
                for index in 0..a {
                    if terminated[lane * a + index] {
                        continue;
                    }
                    let agent_node = node[lane * a + index];
                    let agent_handedness = handedness[lane * a + index];
                    let lane_ref = lane_ref_at(
                        lane,
                        a,
                        node,
                        held_port,
                        terminated,
                        handedness,
                        prior,
                        last_active_round,
                        asleep_on_port,
                        moves,
                        crowded_nodes[lane],
                    );
                    let decision = if scratch.active_mask[index] {
                        let snapshot = build_snapshot_lane(ring, &lane_ref, index, r, false);
                        let decision = program[lane * a + index].decide(&snapshot);
                        scratch.decisions[index] = Some(decision);
                        decision
                    } else if probe_sleepers {
                        let snapshot = build_snapshot_lane(ring, &lane_ref, index, r, false);
                        scratch
                            .probes
                            .refresh(index, &program[lane * a + index])
                            .decide(&snapshot)
                    } else {
                        continue;
                    };
                    scratch.views[index].predicted =
                        predict_action(ring, agent_node, agent_handedness, decision);
                }
            }
            // 2. Edge adversary.
            let lane_missing = {
                let view = RoundView {
                    round: r,
                    ring,
                    agents: Cow::Borrowed(&scratch.views),
                    visited: &visited[lane * n..][..n],
                };
                edges[lane].select(&view, &scratch.active).filter(|e| e.index() < n)
            };
            // 3. Look + Compute for the active set (fused with the probe
            // pass when the scheduler predicted).
            if !deferred {
                scratch.decisions.clear();
                scratch.decisions.resize(a, None);
                for index in 0..a {
                    if !scratch.active_mask[index] {
                        continue;
                    }
                    let decision = if predict {
                        debug_assert!(act_pred);
                        let decision = scratch.predicted[index]
                            .expect("every live agent carries a prediction on prediction rounds");
                        scratch.probes.swap(index, &mut program[lane * a + index]);
                        decision
                    } else {
                        let lane_ref = lane_ref_at(
                            lane,
                            a,
                            node,
                            held_port,
                            terminated,
                            handedness,
                            prior,
                            last_active_round,
                            asleep_on_port,
                            moves,
                            crowded_nodes[lane],
                        );
                        let snapshot = build_snapshot_lane(ring, &lane_ref, index, r, false);
                        program[lane * a + index].decide(&snapshot)
                    };
                    scratch.decisions[index] = Some(decision);
                }
            }
            // Ports denied for the whole round: start-of-round held ports.
            scratch.claimed.clear();
            for index in 0..a {
                if let Some(port) = held_port[lane * a + index] {
                    scratch.claimed.push((node[lane * a + index], port));
                }
            }
            // 4–6. Resolution, passive transport, bookkeeping.
            let lane_state = LaneStateMut {
                node: &mut node[lane * a..][..a],
                held_port: &mut held_port[lane * a..][..a],
                terminated: &mut terminated[lane * a..][..a],
                handedness: &handedness[lane * a..][..a],
                prior: &mut prior[lane * a..][..a],
                program: &mut program[lane * a..][..a],
                moves: &mut moves[lane * a..][..a],
                activations: &mut activations[lane * a..][..a],
                last_active_round: &mut last_active_round[lane * a..][..a],
                asleep_on_port: &mut asleep_on_port[lane * a..][..a],
                terminated_at: &mut terminated_at[lane * a..][..a],
                poll_termination: &poll_termination[lane * a..][..a],
                agent_visited: &mut agent_visited[lane * a * n..][..a * n],
                visited_count: &mut visited_count[lane * a..][..a],
                ring_size: n,
                node_population: &mut node_population[lane * n..][..n],
                crowded_nodes: &mut crowded_nodes[lane],
                global_visited: &mut visited[lane * n..][..n],
                unvisited: &mut unvisited[lane],
                alive: &mut alive[lane],
            };
            resolve_lane(
                ring,
                lane_state,
                &scratch.decisions[..a],
                &scratch.active_mask[..a],
                &mut scratch.claimed,
                lane_missing,
                r,
                false,
                *transport_pt,
            );
            if explored_at[lane].is_none() && unvisited[lane] == 0 {
                explored_at[lane] = Some(r);
            }
            // Trace recording: identical columnar appends to the solo step
            // (the scratch already carries the solo-shaped round inputs).
            if let Some(trace) = traces[lane].as_mut() {
                trace.record_round_from_lane(
                    r,
                    lane_missing,
                    n - unvisited[lane],
                    n,
                    &scratch.active,
                    &scratch.active_mask[..a],
                    &scratch.nodes_before,
                    &node[lane * a..][..a],
                    &held_port[lane * a..][..a],
                    &scratch.decisions[..a],
                    &prior[lane * a..][..a],
                    &terminated[lane * a..][..a],
                    &program[lane * a..][..a],
                );
            }
        }
    }
}

/// Bulk-reset kernels for the recycle path. The default build leans on
/// `slice::fill` (which lowers to `memset`); the `wide-kernel` feature
/// swaps in an explicitly chunked kernel that processes a fixed vector
/// width per iteration — the cfg-gated "explicit SIMD" variant, written in
/// safe code so it composes with `#![forbid(unsafe_code)]` and falls back
/// to the scalar path for the remainder lanes.
mod bulk {
    /// Zeroes a `u64` counter array, eight lanes per iteration.
    #[cfg(feature = "wide-kernel")]
    pub(super) fn zero_u64(dst: &mut [u64]) {
        const WIDTH: usize = 8;
        let mut chunks = dst.chunks_exact_mut(WIDTH);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&[0; WIDTH]);
        }
        for value in chunks.into_remainder() {
            *value = 0;
        }
    }

    /// Zeroes a `u64` counter array (scalar fallback: `memset`).
    #[cfg(not(feature = "wide-kernel"))]
    pub(super) fn zero_u64(dst: &mut [u64]) {
        dst.fill(0);
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn zero_u64_clears_every_lane_and_the_ragged_tail() {
            for len in [0usize, 1, 7, 8, 9, 31, 64] {
                let mut buffer: Vec<u64> = (1..=len as u64).collect();
                super::zero_u64(&mut buffer);
                assert!(buffer.iter().all(|v| *v == 0), "len {len}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BlockAgent, NoRemoval};
    use crate::scheduler::{FullActivation, RoundRobinSingle};
    use crate::sim::AgentSpec;
    use dynring_core::fsync::KnownBound;
    use dynring_model::{Protocol, SynchronyModel};

    fn spec(n: usize, starts: &[usize], synchrony: SynchronyModel) -> RunSpec {
        let agents = starts
            .iter()
            .map(|&start| AgentSpec {
                start: NodeId::new(start),
                handedness: Handedness::LeftIsCcw,
                program: AgentProgram::Boxed(Box::new(KnownBound::new(n)) as Box<dyn Protocol>),
            })
            .collect();
        RunSpec::new(RingTopology::new(n).unwrap(), synchrony, agents, false).unwrap()
    }

    fn fsync_lane(n: usize, starts: &[usize]) -> BatchLane {
        BatchLane {
            spec: spec(n, starts, SynchronyModel::Fsync),
            activation: Box::new(FullActivation),
            edges: Box::new(NoRemoval),
        }
    }

    #[test]
    fn empty_batch_is_rejected() {
        let mut batch = SimBatch::new();
        assert_eq!(batch.load(Vec::new()), Err(EngineError::NoAgents));
        assert!(batch.is_empty());
    }

    #[test]
    fn shape_mismatches_are_rejected_with_the_offending_lane() {
        let mut batch = SimBatch::new();
        let err = batch.load(vec![fsync_lane(8, &[0]), fsync_lane(9, &[0])]).unwrap_err();
        assert_eq!(err, EngineError::BatchMismatch { lane: 1, what: "ring size" });
        let err = batch.load(vec![fsync_lane(8, &[0]), fsync_lane(8, &[0, 1])]).unwrap_err();
        assert_eq!(err, EngineError::BatchMismatch { lane: 1, what: "team size" });
        let mixed = BatchLane {
            spec: spec(8, &[0], SynchronyModel::Ssync(TransportModel::PassiveTransport)),
            activation: Box::new(RoundRobinSingle::new()),
            edges: Box::new(NoRemoval),
        };
        let err = batch.load(vec![fsync_lane(8, &[0]), mixed]).unwrap_err();
        assert_eq!(err, EngineError::BatchMismatch { lane: 1, what: "synchrony model" });
    }



    #[test]
    fn batched_lanes_match_solo_runs_and_recycle_identically() {
        let mut lanes = Vec::new();
        for shift in 0..5 {
            lanes.push(BatchLane {
                spec: spec(8, &[shift, shift + 2], SynchronyModel::Fsync),
                activation: Box::new(FullActivation),
                edges: Box::new(BlockAgent::new(AgentId::new(0))),
            });
        }
        let mut batch = SimBatch::new();
        batch.load(lanes).unwrap();
        assert_eq!(batch.lane_count(), 5);
        let mut reports = Vec::new();
        batch.run_into(200, StopCondition::AllTerminated, &mut reports);
        assert_eq!(reports.len(), 5);
        for (shift, report) in reports.iter().enumerate() {
            let solo_spec = spec(8, &[shift, shift + 2], SynchronyModel::Fsync);
            let mut solo = solo_spec.instantiate(
                Box::new(FullActivation),
                Box::new(BlockAgent::new(AgentId::new(0))),
            );
            let solo_report = solo.run(200, StopCondition::AllTerminated);
            assert_eq!(*report, solo_report, "lane {shift}");
        }
        // A recycled cycle reproduces the same reports.
        batch.recycle();
        let mut again = Vec::new();
        batch.run_into(200, StopCondition::AllTerminated, &mut again);
        assert_eq!(reports, again);
    }
}
