//! The round loop: Look–Compute–Move against an adversary.

use crate::adversary::EdgePolicy;
use crate::error::EngineError;
use crate::scheduler::ActivationPolicy;
use crate::trace::{AgentRoundRecord, RoundRecord, Trace};
use crate::world::{build_snapshot, fill_agent_views, AgentRuntime, AgentView, RoundView};
use dynring_graph::{AgentId, EdgeId, GlobalDirection, Handedness, NodeId, RingTopology};
use dynring_model::{Decision, PriorOutcome, Protocol, SynchronyModel, TransportModel};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// When a run should stop (besides exhausting the round budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopCondition {
    /// Stop as soon as every node has been visited.
    Explored,
    /// Stop as soon as every node has been visited **and** at least one agent
    /// has terminated.
    ExploredAndPartialTermination,
    /// Stop as soon as every agent has terminated (also stops if the ring is
    /// explored and no agent can ever terminate — i.e. never, so use a round
    /// budget).
    AllTerminated,
    /// Run for the full round budget regardless.
    RoundBudget,
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopReason {
    /// The stop condition was met.
    ConditionMet,
    /// The round budget was exhausted.
    BudgetExhausted,
    /// Every agent terminated (nothing left to simulate).
    Deadlocked,
}

/// Summary of a finished run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of rounds simulated.
    pub rounds: u64,
    /// Ring size.
    pub ring_size: usize,
    /// Round in which the last unvisited node was first visited, if any.
    pub explored_at: Option<u64>,
    /// Number of distinct nodes visited by the union of the agents.
    pub visited_count: usize,
    /// Per-agent termination rounds (same order as the agents were added).
    pub termination_rounds: Vec<Option<u64>>,
    /// Whether every agent terminated.
    pub all_terminated: bool,
    /// Per-agent number of successful traversals.
    pub moves_per_agent: Vec<u64>,
    /// Per-agent number of distinct nodes visited.
    pub visited_per_agent: Vec<usize>,
    /// Total number of successful traversals.
    pub total_moves: u64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

impl RunReport {
    /// Whether the whole ring was explored.
    #[must_use]
    pub fn explored(&self) -> bool {
        self.explored_at.is_some()
    }

    /// Round of the earliest explicit termination, if any.
    #[must_use]
    pub fn first_termination(&self) -> Option<u64> {
        self.termination_rounds.iter().flatten().min().copied()
    }

    /// Round of the latest explicit termination, if all agents terminated.
    #[must_use]
    pub fn last_termination(&self) -> Option<u64> {
        if self.all_terminated {
            self.termination_rounds.iter().flatten().max().copied()
        } else {
            None
        }
    }

    /// Whether at least one agent terminated.
    #[must_use]
    pub fn partially_terminated(&self) -> bool {
        self.termination_rounds.iter().any(Option::is_some)
    }
}

/// Builder for a [`Simulation`].
pub struct SimulationBuilder {
    ring: RingTopology,
    synchrony: SynchronyModel,
    agents: Vec<(NodeId, Handedness, Box<dyn Protocol>)>,
    activation: Option<Box<dyn ActivationPolicy>>,
    edges: Option<Box<dyn EdgePolicy>>,
    record_trace: bool,
}

impl SimulationBuilder {
    /// Declares the synchrony model (FSYNC by default).
    #[must_use]
    pub fn synchrony(mut self, synchrony: SynchronyModel) -> Self {
        self.synchrony = synchrony;
        self
    }

    /// Adds an agent with its start node, private orientation and protocol.
    #[must_use]
    pub fn agent(
        mut self,
        start: NodeId,
        handedness: Handedness,
        protocol: Box<dyn Protocol>,
    ) -> Self {
        self.agents.push((start, handedness, protocol));
        self
    }

    /// Sets the activation policy (scheduler).
    #[must_use]
    pub fn activation(mut self, policy: Box<dyn ActivationPolicy>) -> Self {
        self.activation = Some(policy);
        self
    }

    /// Sets the edge-removal policy (dynamics adversary).
    #[must_use]
    pub fn edges(mut self, policy: Box<dyn EdgePolicy>) -> Self {
        self.edges = Some(policy);
        self
    }

    /// Enables or disables per-round trace recording (disabled by default).
    #[must_use]
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Fails if no agents were declared, an agent starts outside the ring, or
    /// a policy is missing.
    pub fn build(self) -> Result<Simulation, EngineError> {
        if self.agents.is_empty() {
            return Err(EngineError::NoAgents);
        }
        let activation =
            self.activation.ok_or(EngineError::MissingPolicy { which: "activation" })?;
        let edges = self.edges.ok_or(EngineError::MissingPolicy { which: "edges" })?;
        let ring_size = self.ring.size();
        let mut runtimes = Vec::with_capacity(self.agents.len());
        for (index, (start, handedness, protocol)) in self.agents.into_iter().enumerate() {
            if start.index() >= ring_size {
                return Err(EngineError::StartOutOfRange {
                    agent: AgentId::new(index),
                    node: start,
                    ring_size,
                });
            }
            runtimes.push(AgentRuntime::new(
                AgentId::new(index),
                start,
                handedness,
                protocol,
                ring_size,
            ));
        }
        let mut visited = vec![false; ring_size];
        for agent in &runtimes {
            visited[agent.node.index()] = true;
        }
        let unvisited = visited.iter().filter(|v| !**v).count();
        let scratch = RoundScratch::new(runtimes.len());
        Ok(Simulation {
            ring: self.ring,
            synchrony: self.synchrony,
            agents: runtimes,
            visited,
            unvisited,
            round: 0,
            activation,
            edges,
            trace: if self.record_trace { Some(Trace::new()) } else { None },
            explored_at: None,
            scratch,
        })
    }
}

/// Reusable per-round working memory. All buffers are cleared and refilled
/// every round, so after the first round [`Simulation::step`] performs no
/// heap allocation on the FSYNC hot path (trace recording off, no policy
/// asking for decision predictions); see [`Simulation::step`] for the one
/// SSYNC caveat.
#[derive(Debug, Default)]
struct RoundScratch {
    /// Per-agent adversary views (borrowed by the [`RoundView`]).
    views: Vec<AgentView>,
    /// The sanitised active set, sorted by agent id.
    active: Vec<AgentId>,
    /// `active_mask[i]` ⇔ agent `i` is active this round (O(1) lookup where
    /// the resolution steps previously scanned the active list).
    active_mask: Vec<bool>,
    /// Per-agent decision of this round (`None` = asleep or terminated).
    decisions: Vec<Option<Decision>>,
    /// Node of each agent at the start of the round (trace recording only).
    nodes_before: Vec<NodeId>,
    /// Ports denied for the rest of the round, sorted. A handful of entries
    /// at most (one per agent), so a sorted vec beats a `HashSet`.
    claimed: Vec<(NodeId, GlobalDirection)>,
}

impl RoundScratch {
    fn new(agent_count: usize) -> Self {
        RoundScratch {
            views: Vec::with_capacity(agent_count),
            active: Vec::with_capacity(agent_count),
            active_mask: vec![false; agent_count],
            decisions: vec![None; agent_count],
            nodes_before: Vec::with_capacity(agent_count),
            claimed: Vec::with_capacity(agent_count),
        }
    }
}

/// A live simulation of agents exploring a dynamic ring.
pub struct Simulation {
    ring: RingTopology,
    synchrony: SynchronyModel,
    agents: Vec<AgentRuntime>,
    visited: Vec<bool>,
    /// Number of `false` entries in `visited` (kept incrementally so the
    /// per-round exploration check is O(1) instead of an O(n) scan).
    unvisited: usize,
    round: u64,
    activation: Box<dyn ActivationPolicy>,
    edges: Box<dyn EdgePolicy>,
    trace: Option<Trace>,
    explored_at: Option<u64>,
    scratch: RoundScratch,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("ring_size", &self.ring.size())
            .field("round", &self.round)
            .field("agents", &self.agents.len())
            .field("visited", &self.visited_count())
            .field("synchrony", &self.synchrony)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Starts building a simulation on the given ring.
    #[must_use]
    pub fn builder(ring: RingTopology) -> SimulationBuilder {
        SimulationBuilder {
            ring,
            synchrony: SynchronyModel::Fsync,
            agents: Vec::new(),
            activation: None,
            edges: None,
            record_trace: false,
        }
    }

    /// The ring being explored.
    #[must_use]
    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// Number of rounds simulated so far.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The recorded trace, if trace recording was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Number of distinct nodes visited by the union of the agents.
    #[must_use]
    pub fn visited_count(&self) -> usize {
        self.ring.size() - self.unvisited
    }

    /// Whether every node has been visited.
    #[must_use]
    pub fn explored(&self) -> bool {
        self.explored_at.is_some()
    }

    /// The round in which exploration completed, if it did.
    #[must_use]
    pub fn explored_at(&self) -> Option<u64> {
        self.explored_at
    }

    /// Whether every agent has terminated.
    #[must_use]
    pub fn all_terminated(&self) -> bool {
        self.agents.iter().all(|a| a.terminated)
    }

    /// Current node of each agent, in agent order (for tests and rendering).
    #[must_use]
    pub fn positions(&self) -> Vec<NodeId> {
        self.agents.iter().map(|a| a.node).collect()
    }

    /// Per-agent termination rounds.
    #[must_use]
    pub fn termination_rounds(&self) -> Vec<Option<u64>> {
        self.agents.iter().map(|a| a.terminated_at).collect()
    }

    /// Per-agent traversal counts.
    #[must_use]
    pub fn moves_per_agent(&self) -> Vec<u64> {
        self.agents.iter().map(|a| a.moves).collect()
    }

    fn mark_visited(visited: &mut [bool], unvisited: &mut usize, agent: &mut AgentRuntime) {
        let index = agent.node.index();
        if !visited[index] {
            visited[index] = true;
            *unvisited -= 1;
        }
        agent.visited[index] = true;
    }

    /// Plays one round. Returns `false` if there was nothing to do (every
    /// agent has terminated).
    ///
    /// All per-round working memory lives in scratch buffers owned by the
    /// simulation, so on the FSYNC hot path (trace recording off and no
    /// policy requesting decision predictions) this performs no heap
    /// allocation. Under SSYNC the activation policy still returns a fresh
    /// `Vec` of chosen agents each round (that is its trait contract), so
    /// SSYNC rounds carry one small allocation.
    pub fn step(&mut self) -> bool {
        if self.agents.iter().all(|a| a.terminated) {
            return false;
        }
        let round = self.round + 1;
        self.round = round;
        let fsync = self.synchrony.is_fsync();
        let record_trace = self.trace.is_some();
        // Predictions require cloning and dry-running every live protocol, so
        // they are only computed when a policy that will run this round
        // declares it reads them (under FSYNC the activation policy never
        // runs — the engine activates everyone directly).
        let predict = self.edges.needs_predictions()
            || (!fsync && self.activation.needs_predictions());

        // 1. Activation choice. The view borrows the ring, the visited map
        // and the scratch views, so the policy fields stay free for mutation.
        fill_agent_views(&mut self.scratch.views, &self.ring, &self.agents, round, fsync, predict);
        let view = RoundView {
            round,
            ring: &self.ring,
            agents: Cow::Borrowed(&self.scratch.views),
            visited: &self.visited,
        };
        self.scratch.active.clear();
        if fsync {
            self.scratch.active.extend(view.alive().map(|a| a.id));
        } else {
            let mut chosen = self.activation.select(&view);
            chosen.retain(|id| {
                self.agents.get(id.index()).is_some_and(|a| !a.terminated)
            });
            chosen.sort_unstable();
            chosen.dedup();
            if chosen.is_empty() {
                self.scratch.active.extend(view.alive().map(|a| a.id));
            } else {
                self.scratch.active.extend(chosen);
            }
        }
        // Both branches produce a strictly increasing id sequence (FSYNC
        // walks the agents in order; SSYNC sorts and dedups), so no re-sort
        // is needed here.
        debug_assert!(
            self.scratch.active.windows(2).all(|w| w[0] < w[1]),
            "active set must be sorted and deduplicated"
        );

        // 2. Edge adversary (may inspect predicted intents and the active set).
        let missing = self
            .edges
            .select(&view, &self.scratch.active)
            .filter(|e| e.index() < self.ring.size());
        drop(view);

        self.scratch.active_mask.clear();
        self.scratch.active_mask.resize(self.agents.len(), false);
        for id in &self.scratch.active {
            self.scratch.active_mask[id.index()] = true;
        }

        // 3. Look + Compute for active agents, in id order.
        self.scratch.decisions.clear();
        self.scratch.decisions.resize(self.agents.len(), None);
        for i in 0..self.agents.len() {
            if !self.scratch.active_mask[i] {
                continue;
            }
            let snapshot = build_snapshot(&self.ring, &self.agents, i, round, fsync);
            let decision = self.agents[i].protocol.decide(&snapshot);
            self.scratch.decisions[i] = Some(decision);
        }

        // Keep the start-of-round nodes for the trace (trace-only work).
        if record_trace {
            self.scratch.nodes_before.clear();
            self.scratch.nodes_before.extend(self.agents.iter().map(|a| a.node));
        }

        // Ports denied for the whole round: every port already held at the
        // start of the round plus every port acquired during it ("access to
        // the port continues to be denied … during this round"). At most one
        // entry per agent, so a sorted scratch vec with binary search beats
        // a hash set.
        self.scratch.claimed.clear();
        for agent in &self.agents {
            if let Some(port) = agent.held_port {
                self.scratch.claimed.push((agent.node, port));
            }
        }
        self.scratch.claimed.sort_unstable();

        // 4. Resolution: port acquisition in mutual exclusion, then moves.
        for index in 0..self.agents.len() {
            let Some(decision) = self.scratch.decisions[index] else { continue };
            match decision {
                Decision::Terminate => {
                    let agent = &mut self.agents[index];
                    agent.terminated = true;
                    agent.terminated_at = Some(round);
                    agent.held_port = None;
                    agent.prior = PriorOutcome::Idle;
                }
                Decision::Stay => {
                    self.agents[index].prior = PriorOutcome::Idle;
                }
                Decision::Retreat => {
                    let agent = &mut self.agents[index];
                    agent.held_port = None;
                    agent.prior = PriorOutcome::Idle;
                }
                Decision::Move(ldir) => {
                    let gdir = self.agents[index].to_global(ldir);
                    let node = self.agents[index].node;
                    let already_held = self.agents[index].held_port == Some(gdir);
                    if !already_held {
                        // Release any other port first, then try to acquire.
                        // The target port must not have been held or claimed
                        // by anyone else this round (mutual exclusion).
                        let slot = self.scratch.claimed.binary_search(&(node, gdir));
                        let agent = &mut self.agents[index];
                        agent.held_port = None;
                        let Err(insert_at) = slot else {
                            agent.prior = PriorOutcome::PortAcquisitionFailed;
                            continue;
                        };
                        agent.held_port = Some(gdir);
                        self.scratch.claimed.insert(insert_at, (node, gdir));
                    }
                    // Attempt the traversal.
                    let edge = self.ring.edge_towards(node, gdir);
                    if missing == Some(edge) {
                        self.agents[index].prior = PriorOutcome::BlockedOnPort;
                    } else {
                        let destination = self.ring.neighbor(node, gdir);
                        let agent = &mut self.agents[index];
                        agent.node = destination;
                        agent.held_port = None;
                        agent.prior = PriorOutcome::Moved;
                        agent.moves += 1;
                        Self::mark_visited(&mut self.visited, &mut self.unvisited, agent);
                    }
                }
            }
            // A protocol may flag termination without returning `Terminate`
            // (defensive; none of the paper's algorithms do).
            if self.agents[index].protocol.has_terminated() && !self.agents[index].terminated {
                let agent = &mut self.agents[index];
                agent.terminated = true;
                agent.terminated_at = Some(round);
                agent.held_port = None;
            }
        }

        // 5. Passive transport of sleeping agents (PT model only).
        if self.synchrony.transport() == Some(TransportModel::PassiveTransport) {
            for index in 0..self.agents.len() {
                let is_active = self.scratch.active_mask[index];
                let agent = &self.agents[index];
                if is_active || agent.terminated {
                    continue;
                }
                if let Some(gdir) = agent.held_port {
                    let edge = self.ring.edge_towards(agent.node, gdir);
                    if missing != Some(edge) {
                        let destination = self.ring.neighbor(agent.node, gdir);
                        let agent = &mut self.agents[index];
                        agent.node = destination;
                        agent.held_port = None;
                        agent.prior = PriorOutcome::Transported;
                        agent.moves += 1;
                        Self::mark_visited(&mut self.visited, &mut self.unvisited, agent);
                    }
                }
            }
        }

        // 6. Bookkeeping: activation ages, sleep counters, exploration round.
        for index in 0..self.agents.len() {
            let is_active = self.scratch.active_mask[index];
            let agent = &mut self.agents[index];
            if is_active {
                agent.activations += 1;
                agent.last_active_round = round;
                agent.asleep_on_port = 0;
            } else if agent.held_port.is_some() {
                agent.asleep_on_port += 1;
            } else {
                agent.asleep_on_port = 0;
            }
        }
        if self.explored_at.is_none() && self.unvisited == 0 {
            self.explored_at = Some(round);
        }

        // 7. Trace recording (the only step that may allocate: the records
        // are owned by the trace, not by the scratch).
        if self.trace.is_some() {
            let visited_count = self.visited_count();
            let records: Vec<AgentRoundRecord> = self
                .agents
                .iter()
                .enumerate()
                .map(|(index, agent)| AgentRoundRecord {
                    id: agent.id,
                    active: self.scratch.active_mask[index],
                    node_before: self.scratch.nodes_before[index],
                    node_after: agent.node,
                    held_port_after: agent.held_port,
                    decision: self.scratch.decisions[index],
                    outcome: agent.prior,
                    terminated: agent.terminated,
                    state_label: agent.protocol.state_label(),
                })
                .collect();
            if let Some(trace) = self.trace.as_mut() {
                trace.push(RoundRecord {
                    round,
                    missing_edge: missing,
                    active: self.scratch.active.clone(),
                    agents: records,
                    visited_count,
                });
            }
        }
        true
    }

    /// Runs until the stop condition holds or `max_rounds` rounds have been
    /// simulated, and summarises the execution.
    pub fn run(&mut self, max_rounds: u64, stop: StopCondition) -> RunReport {
        let mut reason = StopReason::BudgetExhausted;
        for _ in 0..max_rounds {
            if self.stop_condition_met(stop) {
                reason = StopReason::ConditionMet;
                break;
            }
            if !self.step() {
                reason = StopReason::Deadlocked;
                break;
            }
        }
        if reason == StopReason::BudgetExhausted && self.stop_condition_met(stop) {
            reason = StopReason::ConditionMet;
        }
        self.report(reason)
    }

    fn stop_condition_met(&self, stop: StopCondition) -> bool {
        match stop {
            StopCondition::Explored => self.explored(),
            StopCondition::ExploredAndPartialTermination => {
                self.explored() && self.agents.iter().any(|a| a.terminated)
            }
            StopCondition::AllTerminated => self.all_terminated(),
            StopCondition::RoundBudget => false,
        }
    }

    /// Builds the report for the current state of the simulation.
    #[must_use]
    pub fn report(&self, stop_reason: StopReason) -> RunReport {
        RunReport {
            rounds: self.round,
            ring_size: self.ring.size(),
            explored_at: self.explored_at,
            visited_count: self.visited_count(),
            termination_rounds: self.termination_rounds(),
            all_terminated: self.all_terminated(),
            moves_per_agent: self.moves_per_agent(),
            visited_per_agent: self.agents.iter().map(AgentRuntime::visited_count).collect(),
            total_moves: self.agents.iter().map(|a| a.moves).sum(),
            stop_reason,
        }
    }

    /// Immutable view of the upcoming round for external inspection (used by
    /// the renderer and by tests). Unlike the round loop's borrowed view,
    /// this one owns its agent views and always includes decision
    /// predictions.
    #[must_use]
    pub fn peek(&self) -> RoundView<'_> {
        let mut views = Vec::with_capacity(self.agents.len());
        fill_agent_views(
            &mut views,
            &self.ring,
            &self.agents,
            self.round + 1,
            self.synchrony.is_fsync(),
            true,
        );
        RoundView {
            round: self.round + 1,
            ring: &self.ring,
            agents: Cow::Owned(views),
            visited: &self.visited,
        }
    }

    /// Validates the adversary's last choice against the ring (exposed for
    /// property tests; the engine already filters invalid edges).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AdversaryEdgeOutOfRange`] when the edge does not
    /// exist.
    pub fn validate_edge_choice(&self, edge: Option<EdgeId>) -> Result<(), EngineError> {
        match edge {
            Some(e) if e.index() >= self.ring.size() => {
                Err(EngineError::AdversaryEdgeOutOfRange { edge: e, ring_size: self.ring.size() })
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BlockAgent, NoRemoval, PreventMeeting};
    use crate::scheduler::{FullActivation, RoundRobinSingle};
    use dynring_core::fsync::{KnownBound, Unconscious};
    use dynring_core::single::LoneWalker;
    use dynring_core::ssync::PtBoundChirality;

    fn fsync_sim(
        n: usize,
        starts: &[usize],
        protos: Vec<Box<dyn Protocol>>,
        edges: Box<dyn EdgePolicy>,
    ) -> Simulation {
        let ring = RingTopology::new(n).unwrap();
        let mut builder = Simulation::builder(ring)
            .synchrony(SynchronyModel::Fsync)
            .activation(Box::new(FullActivation))
            .edges(edges)
            .record_trace(true);
        for (start, proto) in starts.iter().zip(protos) {
            builder = builder.agent(NodeId::new(*start), Handedness::LeftIsCcw, proto);
        }
        builder.build().unwrap()
    }

    #[test]
    fn builder_rejects_empty_scenarios_and_bad_starts() {
        let ring = RingTopology::new(4).unwrap();
        let err = Simulation::builder(ring.clone())
            .activation(Box::new(FullActivation))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap_err();
        assert_eq!(err, EngineError::NoAgents);

        let err = Simulation::builder(ring.clone())
            .agent(NodeId::new(9), Handedness::LeftIsCcw, Box::new(LoneWalker::new(0)))
            .activation(Box::new(FullActivation))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::StartOutOfRange { .. }));

        let err = Simulation::builder(ring)
            .agent(NodeId::new(0), Handedness::LeftIsCcw, Box::new(LoneWalker::new(0)))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::MissingPolicy { which: "activation" }));
    }

    #[test]
    fn two_known_bound_agents_explore_and_terminate_on_a_static_ring() {
        let n = 8;
        let mut sim = fsync_sim(
            n,
            &[0, 3],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        let report = sim.run(200, StopCondition::AllTerminated);
        assert!(report.explored());
        assert!(report.all_terminated);
        // Theorem 3: termination within 3N - 6 rounds (plus the terminating
        // decision round itself).
        let deadline = 3 * n as u64 - 6 + 1;
        assert!(report.last_termination().unwrap() <= deadline);
        sim.trace().unwrap().check_invariants(n).unwrap();
    }

    #[test]
    fn a_single_agent_never_explores_against_its_blocker() {
        let n = 6;
        let mut sim = fsync_sim(
            n,
            &[2],
            vec![Box::new(LoneWalker::new(3))],
            Box::new(BlockAgent::new(AgentId::new(0))),
        );
        let report = sim.run(500, StopCondition::Explored);
        assert!(!report.explored());
        assert_eq!(report.visited_count, 1);
        assert_eq!(report.total_moves, 0);
    }

    #[test]
    fn unconscious_agents_explore_despite_prevent_meeting() {
        let n = 9;
        let mut sim = fsync_sim(
            n,
            &[0, 4],
            vec![Box::new(Unconscious::new()), Box::new(Unconscious::new())],
            Box::new(PreventMeeting),
        );
        let report = sim.run(40 * n as u64, StopCondition::Explored);
        assert!(report.explored(), "Theorem 5: exploration completes in O(n) rounds");
        assert!(!report.all_terminated, "unconscious exploration never terminates");
    }

    #[test]
    fn port_mutual_exclusion_lets_only_one_agent_through() {
        // Two agents on the same node moving the same way: one acquires the
        // port, the other reports a failed acquisition (Theorem 3's argument
        // for agents starting on the same node).
        let n = 5;
        let mut sim = fsync_sim(
            n,
            &[0, 0],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        assert!(sim.step());
        let record = &sim.trace().unwrap().rounds()[0];
        let outcomes: Vec<PriorOutcome> = record.agents.iter().map(|a| a.outcome).collect();
        assert!(outcomes.contains(&PriorOutcome::Moved));
        assert!(outcomes.contains(&PriorOutcome::PortAcquisitionFailed));
        sim.trace().unwrap().check_invariants(n).unwrap();
    }

    #[test]
    fn ssync_round_robin_with_pt_transport_carries_sleepers() {
        use crate::adversary::FromSchedule;
        use dynring_graph::ScheduleBuilder;
        // One PT agent walking left (CCW→CW depending on handedness) gets
        // blocked, falls asleep on the port, and is carried across when the
        // edge reappears while it is still asleep.
        let ring = RingTopology::new(6).unwrap();
        let schedule = ScheduleBuilder::new(&ring)
            .remove_for(dynring_graph::EdgeId::new(5), 2)
            .all_present_for(10)
            .build();
        let mut sim = Simulation::builder(ring)
            .synchrony(SynchronyModel::Ssync(TransportModel::PassiveTransport))
            .agent(NodeId::new(0), Handedness::LeftIsCcw, Box::new(PtBoundChirality::new(6)))
            .agent(NodeId::new(3), Handedness::LeftIsCcw, Box::new(PtBoundChirality::new(6)))
            .activation(Box::new(RoundRobinSingle::new()))
            .edges(Box::new(FromSchedule::new(schedule)))
            .record_trace(true)
            .build()
            .unwrap();
        let report = sim.run(400, StopCondition::ExploredAndPartialTermination);
        assert!(report.explored());
        assert!(report.partially_terminated(), "Theorem 12: at least one agent terminates");
        sim.trace().unwrap().check_invariants(6).unwrap();
    }

    #[test]
    fn report_accessors_are_consistent() {
        let n = 6;
        let mut sim = fsync_sim(
            n,
            &[0, 2],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        let report = sim.run(100, StopCondition::AllTerminated);
        assert_eq!(report.ring_size, n);
        assert_eq!(report.moves_per_agent.len(), 2);
        assert_eq!(report.termination_rounds.len(), 2);
        assert!(report.first_termination().is_some());
        assert!(report.last_termination().unwrap() >= report.first_termination().unwrap());
        assert_eq!(
            report.total_moves,
            report.moves_per_agent.iter().sum::<u64>()
        );
    }

    #[test]
    fn peek_exposes_predictions_without_advancing() {
        let n = 5;
        let sim = fsync_sim(
            n,
            &[0, 2],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        let view = sim.peek();
        assert_eq!(view.round, 1);
        assert_eq!(view.agents.len(), 2);
        assert!(view.agents.iter().all(|a| a.predicted.is_move()));
        assert_eq!(sim.round(), 0);
        assert!(sim.validate_edge_choice(Some(EdgeId::new(9))).is_err());
        assert!(sim.validate_edge_choice(Some(EdgeId::new(2))).is_ok());
        assert!(sim.validate_edge_choice(None).is_ok());
    }
}
