//! The round loop: Look–Compute–Move against an adversary.

use crate::adversary::EdgePolicy;
use crate::checkpoint::SimCheckpoint;
use crate::error::EngineError;
use crate::scheduler::ActivationPolicy;
use crate::trace::Trace;
use crate::world::{
    build_snapshot, fill_agent_views, fill_round_fsync, predict_action, AgentProgram, AgentSoA,
    AgentView, LaneStateMut, ProbePool, RoundView,
};
use dynring_graph::{AgentId, EdgeId, GlobalDirection, Handedness, NodeId, RingTopology};
use dynring_model::{Decision, PriorOutcome, Protocol, SynchronyModel, TransportModel};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// When a run should stop (besides exhausting the round budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopCondition {
    /// Stop as soon as every node has been visited.
    Explored,
    /// Stop as soon as every node has been visited **and** at least one agent
    /// has terminated.
    ExploredAndPartialTermination,
    /// Stop as soon as every agent has terminated (also stops if the ring is
    /// explored and no agent can ever terminate — i.e. never, so use a round
    /// budget).
    AllTerminated,
    /// Run for the full round budget regardless.
    RoundBudget,
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum StopReason {
    /// The stop condition was met.
    ConditionMet,
    /// The round budget was exhausted.
    #[default]
    BudgetExhausted,
    /// Every agent terminated (nothing left to simulate).
    Deadlocked,
}

/// Summary of a finished run.
///
/// The `Default` value is an empty shell for
/// [`Simulation::run_into`], which refills an existing report in place
/// (reusing the per-agent vectors) instead of allocating a fresh one per run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of rounds simulated.
    pub rounds: u64,
    /// Ring size.
    pub ring_size: usize,
    /// Round in which the last unvisited node was first visited, if any.
    pub explored_at: Option<u64>,
    /// Number of distinct nodes visited by the union of the agents.
    pub visited_count: usize,
    /// Per-agent termination rounds (same order as the agents were added).
    pub termination_rounds: Vec<Option<u64>>,
    /// Whether every agent terminated.
    pub all_terminated: bool,
    /// Per-agent number of successful traversals.
    pub moves_per_agent: Vec<u64>,
    /// Per-agent number of distinct nodes visited.
    pub visited_per_agent: Vec<usize>,
    /// Total number of successful traversals.
    pub total_moves: u64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

impl RunReport {
    /// Whether the whole ring was explored.
    #[must_use]
    pub fn explored(&self) -> bool {
        self.explored_at.is_some()
    }

    /// Round of the earliest explicit termination, if any.
    #[must_use]
    pub fn first_termination(&self) -> Option<u64> {
        self.termination_rounds.iter().flatten().min().copied()
    }

    /// Round of the latest explicit termination, if all agents terminated.
    #[must_use]
    pub fn last_termination(&self) -> Option<u64> {
        if self.all_terminated {
            self.termination_rounds.iter().flatten().max().copied()
        } else {
            None
        }
    }

    /// Whether at least one agent terminated.
    #[must_use]
    pub fn partially_terminated(&self) -> bool {
        self.termination_rounds.iter().any(Option::is_some)
    }
}

/// Builder for a [`Simulation`].
pub struct SimulationBuilder {
    ring: RingTopology,
    synchrony: SynchronyModel,
    agents: Vec<(NodeId, Handedness, AgentProgram)>,
    activation: Option<Box<dyn ActivationPolicy>>,
    edges: Option<Box<dyn EdgePolicy>>,
    record_trace: bool,
}

impl SimulationBuilder {
    /// Declares the synchrony model (FSYNC by default).
    #[must_use]
    pub fn synchrony(mut self, synchrony: SynchronyModel) -> Self {
        self.synchrony = synchrony;
        self
    }

    /// Adds an agent with its start node, private orientation and a boxed
    /// protocol (the `dyn`-dispatch extension escape hatch; equivalent to
    /// [`SimulationBuilder::agent_program`] with an
    /// [`AgentProgram::Boxed`]).
    #[must_use]
    pub fn agent(
        mut self,
        start: NodeId,
        handedness: Handedness,
        protocol: Box<dyn Protocol>,
    ) -> Self {
        self.agents.push((start, handedness, AgentProgram::Boxed(protocol)));
        self
    }

    /// Adds an agent with its start node, private orientation and program.
    ///
    /// Accepts both sides of the engine's dispatch story: a
    /// [`CatalogProtocol`](dynring_core::CatalogProtocol) (the statically
    /// dispatched fast path — pass `algorithm.instantiate_enum()`) or an
    /// explicit [`AgentProgram`]. Mixed teams are fine; see the
    /// `dynring_core::catalog` docs for a worked example.
    #[must_use]
    pub fn agent_program(
        mut self,
        start: NodeId,
        handedness: Handedness,
        program: impl Into<AgentProgram>,
    ) -> Self {
        self.agents.push((start, handedness, program.into()));
        self
    }

    /// Sets the activation policy (scheduler).
    #[must_use]
    pub fn activation(mut self, policy: Box<dyn ActivationPolicy>) -> Self {
        self.activation = Some(policy);
        self
    }

    /// Sets the edge-removal policy (dynamics adversary).
    #[must_use]
    pub fn edges(mut self, policy: Box<dyn EdgePolicy>) -> Self {
        self.edges = Some(policy);
        self
    }

    /// Enables or disables per-round trace recording (disabled by default).
    #[must_use]
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Fails if no agents were declared, an agent starts outside the ring, or
    /// a policy is missing.
    pub fn build(self) -> Result<Simulation, EngineError> {
        if self.agents.is_empty() {
            return Err(EngineError::NoAgents);
        }
        let activation =
            self.activation.ok_or(EngineError::MissingPolicy { which: "activation" })?;
        let edges = self.edges.ok_or(EngineError::MissingPolicy { which: "edges" })?;
        let ring_size = self.ring.size();
        let mut team = AgentSoA::new(ring_size);
        for (index, (start, handedness, protocol)) in self.agents.into_iter().enumerate() {
            if start.index() >= ring_size {
                return Err(EngineError::StartOutOfRange {
                    agent: AgentId::new(index),
                    node: start,
                    ring_size,
                });
            }
            team.push(start, handedness, protocol);
        }
        let mut visited = vec![false; ring_size];
        for node in &team.node {
            visited[node.index()] = true;
        }
        let unvisited = visited.iter().filter(|v| !**v).count();
        let scratch = RoundScratch::new(team.len());
        let alive = team.len();
        Ok(Simulation {
            ring: self.ring,
            synchrony: self.synchrony,
            agents: team,
            visited,
            unvisited,
            alive,
            round: 0,
            activation,
            edges,
            trace: if self.record_trace { Some(Trace::new()) } else { None },
            explored_at: None,
            scratch,
        })
    }
}

/// One agent of a [`RunSpec`]: the start node, the private orientation and
/// the **pristine program template** every (re)run copies its initial state
/// from.
#[derive(Debug)]
pub struct AgentSpec {
    /// Start node.
    pub start: NodeId,
    /// Private orientation.
    pub handedness: Handedness,
    /// The program in its as-instantiated state. Fresh builds clone it;
    /// recycled runs copy its state into the live program in place (see
    /// [`Simulation::recycle`]).
    pub program: AgentProgram,
}

impl AgentSpec {
    /// Bundles one agent's start, orientation and program template.
    #[must_use]
    pub fn new(start: NodeId, handedness: Handedness, program: impl Into<AgentProgram>) -> Self {
        AgentSpec { start, handedness, program: program.into() }
    }
}

/// A validated, reusable description of one run: ring topology, synchrony
/// model, the agent templates and whether a trace is recorded.
///
/// This is the engine half of the **run-recycling** fast path (see
/// `docs/ARCHITECTURE.md`, "Run lifecycle"): where [`SimulationBuilder`]
/// builds one `Simulation` and is consumed, a `RunSpec` is compiled once and
/// then drives any number of runs —
///
/// * [`RunSpec::instantiate`] builds a fresh simulation (observably identical
///   to the builder path);
/// * [`Simulation::recycle`] re-initialises an *existing* simulation to round
///   zero of the spec **in place**, reusing every buffer the previous run
///   allocated.
///
/// The activation and edge policies are deliberately not part of the spec:
/// they are installed on the simulation (at `instantiate` time or via
/// [`Simulation::replace_policies`]) and restored by their
/// [`reset`](crate::scheduler::ActivationPolicy::reset) hooks on recycle, so
/// the spec itself stays immutable and shareable.
#[derive(Debug)]
pub struct RunSpec {
    ring: RingTopology,
    synchrony: SynchronyModel,
    agents: Vec<AgentSpec>,
    record_trace: bool,
}

impl RunSpec {
    /// Compiles a validated spec.
    ///
    /// # Errors
    ///
    /// Fails like [`SimulationBuilder::build`]: no agents, or an agent
    /// starting outside the ring.
    pub fn new(
        ring: RingTopology,
        synchrony: SynchronyModel,
        agents: Vec<AgentSpec>,
        record_trace: bool,
    ) -> Result<Self, EngineError> {
        if agents.is_empty() {
            return Err(EngineError::NoAgents);
        }
        for (index, agent) in agents.iter().enumerate() {
            if agent.start.index() >= ring.size() {
                return Err(EngineError::StartOutOfRange {
                    agent: AgentId::new(index),
                    node: agent.start,
                    ring_size: ring.size(),
                });
            }
        }
        Ok(RunSpec { ring, synchrony, agents, record_trace })
    }

    /// The ring the runs explore.
    #[must_use]
    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// The synchrony model of the runs.
    #[must_use]
    pub fn synchrony(&self) -> SynchronyModel {
        self.synchrony
    }

    /// Number of agents per run.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Whether runs record a trace.
    #[must_use]
    pub fn record_trace(&self) -> bool {
        self.record_trace
    }

    /// The per-agent specs (start node, handedness, protocol template), in
    /// team order — the batched engine seeds its lanes from these.
    pub(crate) fn agent_specs(&self) -> &[AgentSpec] {
        &self.agents
    }

    /// Builds a fresh simulation from this spec with the given policies
    /// (observably identical to assembling the same run through
    /// [`Simulation::builder`]; the agent templates are cloned, the spec
    /// stays reusable).
    #[must_use]
    pub fn instantiate(
        &self,
        activation: Box<dyn ActivationPolicy>,
        edges: Box<dyn EdgePolicy>,
    ) -> Simulation {
        let mut builder = Simulation::builder(self.ring.clone())
            .synchrony(self.synchrony)
            .activation(activation)
            .edges(edges)
            .record_trace(self.record_trace);
        for agent in &self.agents {
            builder =
                builder.agent_program(agent.start, agent.handedness, agent.program.clone_program());
        }
        builder.build().expect("RunSpec was validated at construction")
    }
}

/// Reusable per-round working memory. All buffers are cleared and refilled
/// every round, so after the first round [`Simulation::step`] performs no
/// heap allocation on the FSYNC hot path — with trace recording off this now
/// holds **with or without** decision predictions, because predictions reuse
/// the per-agent [`ProbePool`] instead of boxing protocol clones; see
/// [`Simulation::step`] for the one SSYNC caveat.
#[derive(Debug, Default)]
struct RoundScratch {
    /// Per-agent adversary views (borrowed by the [`RoundView`]).
    views: Vec<AgentView>,
    /// The sanitised active set, sorted by agent id.
    active: Vec<AgentId>,
    /// Raw activation-policy choice (SSYNC only; sanitised into `active`).
    chosen: Vec<AgentId>,
    /// `active_mask[i]` ⇔ agent `i` is active this round (O(1) lookup where
    /// the resolution steps previously scanned the active list).
    active_mask: Vec<bool>,
    /// Per-agent decision of this round (`None` = asleep or terminated).
    decisions: Vec<Option<Decision>>,
    /// Per-agent decision predicted by the probe dry run (prediction rounds
    /// only; fused into [`RoundScratch::decisions`] for active agents).
    predicted: Vec<Option<Decision>>,
    /// Reusable per-agent protocol probes backing the predictions.
    probes: ProbePool,
    /// Node of each agent at the start of the round (trace recording only).
    nodes_before: Vec<NodeId>,
    /// Ports denied for the rest of the round, sorted. A handful of entries
    /// at most (one per agent), so a sorted vec beats a `HashSet`.
    claimed: Vec<(NodeId, GlobalDirection)>,
}

impl RoundScratch {
    fn new(agent_count: usize) -> Self {
        RoundScratch {
            views: Vec::with_capacity(agent_count),
            active: Vec::with_capacity(agent_count),
            chosen: Vec::with_capacity(agent_count),
            active_mask: vec![false; agent_count],
            decisions: vec![None; agent_count],
            predicted: vec![None; agent_count],
            probes: ProbePool::default(),
            nodes_before: Vec::with_capacity(agent_count),
            claimed: Vec::with_capacity(agent_count),
        }
    }
}

/// A live simulation of agents exploring a dynamic ring.
pub struct Simulation {
    ring: RingTopology,
    synchrony: SynchronyModel,
    agents: AgentSoA,
    visited: Vec<bool>,
    /// Number of `false` entries in `visited` (kept incrementally so the
    /// per-round exploration check is O(1) instead of an O(n) scan).
    unvisited: usize,
    /// Number of agents that have not terminated (kept incrementally so the
    /// per-round liveness and termination checks are O(1)).
    alive: usize,
    round: u64,
    activation: Box<dyn ActivationPolicy>,
    edges: Box<dyn EdgePolicy>,
    trace: Option<Trace>,
    explored_at: Option<u64>,
    scratch: RoundScratch,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("ring_size", &self.ring.size())
            .field("round", &self.round)
            .field("agents", &self.agents.len())
            .field("visited", &self.visited_count())
            .field("synchrony", &self.synchrony)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Starts building a simulation on the given ring.
    #[must_use]
    pub fn builder(ring: RingTopology) -> SimulationBuilder {
        SimulationBuilder {
            ring,
            synchrony: SynchronyModel::Fsync,
            agents: Vec::new(),
            activation: None,
            edges: None,
            record_trace: false,
        }
    }

    /// The ring being explored.
    #[must_use]
    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// Number of rounds simulated so far.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The recorded trace, if trace recording was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Number of distinct nodes visited by the union of the agents.
    #[must_use]
    pub fn visited_count(&self) -> usize {
        self.ring.size() - self.unvisited
    }

    /// Whether every node has been visited.
    #[must_use]
    pub fn explored(&self) -> bool {
        self.explored_at.is_some()
    }

    /// The round in which exploration completed, if it did.
    #[must_use]
    pub fn explored_at(&self) -> Option<u64> {
        self.explored_at
    }

    /// Whether every agent has terminated.
    #[must_use]
    pub fn all_terminated(&self) -> bool {
        self.agents.all_terminated()
    }

    /// Current node of each agent, in agent order (for tests and rendering).
    #[must_use]
    pub fn positions(&self) -> Vec<NodeId> {
        self.agents.node.clone()
    }

    /// Per-agent termination rounds.
    #[must_use]
    pub fn termination_rounds(&self) -> Vec<Option<u64>> {
        self.agents.terminated_at.clone()
    }

    /// Per-agent traversal counts.
    #[must_use]
    pub fn moves_per_agent(&self) -> Vec<u64> {
        self.agents.moves.clone()
    }

    /// Re-initialises this simulation **in place** to round zero of `spec`,
    /// reusing every buffer of the previous run:
    ///
    /// * ring topology, synchrony model and the global visited map are
    ///   overwritten (the map's allocation is reused);
    /// * the whole agent team is reset from the spec's templates — hot and
    ///   cold SoA fields, per-agent visit maps and the occupancy index are
    ///   refilled in their existing vectors, and each program copies the
    ///   template's pristine state through the enum's variant-matching
    ///   `clone_from` (boxed programs through `clone_from_box`);
    /// * the trace is cleared (or created/dropped if `spec` toggles
    ///   recording) and the round scratch, including the probe pool, carries
    ///   over as-is — every scratch buffer is refilled before use;
    /// * the installed activation and edge policies are restored by their
    ///   [`reset`](crate::scheduler::ActivationPolicy::reset) hooks. If the
    ///   next run needs *different* policies, install them first with
    ///   [`Simulation::replace_policies`].
    ///
    /// When the shape (ring size, team size, program representations) matches
    /// the previous run this performs **zero heap allocations**; when it does
    /// not, existing capacity is still reused and only growth allocates. A
    /// recycled run is observably identical to one built fresh from the same
    /// spec (`tests/recycle_equivalence.rs` pins this for the whole
    /// catalogue).
    pub fn recycle(&mut self, spec: &RunSpec) {
        self.ring.clone_from(&spec.ring);
        self.synchrony = spec.synchrony;
        self.agents.reset_from(
            spec.ring.size(),
            spec.agents.iter().map(|a| (a.start, a.handedness, &a.program)),
        );
        self.visited.clear();
        self.visited.resize(spec.ring.size(), false);
        let mut start_nodes = 0;
        for agent in &spec.agents {
            let slot = &mut self.visited[agent.start.index()];
            if !*slot {
                *slot = true;
                start_nodes += 1;
            }
        }
        self.unvisited = spec.ring.size() - start_nodes;
        self.alive = spec.agents.len();
        self.round = 0;
        self.explored_at = None;
        match (&mut self.trace, spec.record_trace) {
            (Some(trace), true) => trace.clear(),
            (trace @ None, true) => *trace = Some(Trace::new()),
            (trace, false) => *trace = None,
        }
        self.activation.reset();
        self.edges.reset();
    }

    /// Replaces the installed activation and edge policies (used by recycling
    /// callers when the next run's policies differ from the previous run's;
    /// same-policy reruns only need the `reset` performed by
    /// [`Simulation::recycle`]).
    pub fn replace_policies(
        &mut self,
        activation: Box<dyn ActivationPolicy>,
        edges: Box<dyn EdgePolicy>,
    ) {
        self.activation = activation;
        self.edges = edges;
    }

    /// Plays one round. Returns `false` if there was nothing to do (every
    /// agent has terminated).
    ///
    /// All per-round working memory lives in scratch buffers owned by the
    /// simulation, so on the FSYNC hot path (trace recording off) this
    /// performs no heap allocation — including rounds with decision
    /// predictions, which dry-run each live protocol through a reusable
    /// probe from the engine's probe pool instead of boxing a clone. Under
    /// SSYNC
    /// the activation policy still returns a fresh `Vec` of chosen agents
    /// each round (that is its trait contract), so SSYNC rounds carry one
    /// small allocation.
    pub fn step(&mut self) -> bool {
        self.step_impl(None)
    }

    /// Plays one round with the adversary's edge choice **forced** to
    /// `missing` (`None` forces an all-present round), bypassing the
    /// installed edge policy entirely: it is neither consulted nor advanced,
    /// and no edge-policy predictions are computed. Out-of-range edges are
    /// ignored exactly as the engine ignores an invalid policy choice.
    /// Activation policies still run (and still receive their predictions),
    /// so a forced round is otherwise identical to a policy round.
    ///
    /// This is the expansion primitive of the analysis-side model checker,
    /// which enumerates every edge choice per round instead of sampling one
    /// choice from a policy.
    pub fn step_with_edge(&mut self, missing: Option<EdgeId>) -> bool {
        self.step_impl(Some(missing))
    }

    fn step_impl(&mut self, forced: Option<Option<EdgeId>>) -> bool {
        if self.alive == 0 {
            return false;
        }
        let round = self.round + 1;
        self.round = round;
        let fsync = self.synchrony.is_fsync();
        let record_trace = self.trace.is_some();
        // Predictions dry-run every live protocol, so they are only computed
        // when a policy that will run this round declares it reads them
        // (under FSYNC the activation policy never runs — the engine
        // activates everyone directly). Three prediction strategies:
        //
        //  * FSYNC: every live agent is activated no matter what, so the dry
        //    run *is* this round's Compute — decide on the live protocols at
        //    fill time, no probe (`fill_agent_views_fsync_predict`);
        //  * SSYNC, activation policy reads predictions: full probe pass
        //    before the activation choice; actives are fused by swapping the
        //    post-Compute probe in;
        //  * SSYNC, only the edge policy reads predictions: defer the
        //    predictions until after the activation choice, so actives
        //    decide on the live protocols and only sleepers go through a
        //    probe (the policy declared it never reads `predicted`, so the
        //    placeholder views it selects on are equivalent).
        let act_pred = !fsync && self.activation.needs_predictions();
        let edges_pred = forced.is_none() && self.edges.needs_predictions();
        let predict = edges_pred || act_pred;

        // 1. Fill + activation choice. Under FSYNC the activation policy is
        // never consulted (everyone live is active), so the views, active
        // set, mask and fused predictions come from one pass; under SSYNC the
        // policy selects on a view borrowed from the scratch buffers.
        if fsync {
            let RoundScratch { views, predicted, active, active_mask, claimed, .. } =
                &mut self.scratch;
            fill_round_fsync(
                views,
                predicted,
                active,
                active_mask,
                claimed,
                &self.ring,
                &mut self.agents,
                round,
                predict,
            );
        } else {
            {
                let RoundScratch { views, predicted, probes, .. } = &mut self.scratch;
                fill_agent_views(
                    views,
                    predicted,
                    probes,
                    &self.ring,
                    &self.agents,
                    round,
                    fsync,
                    act_pred,
                );
            }
            {
                let RoundScratch { views, active, chosen, .. } = &mut self.scratch;
                let view = RoundView {
                    round,
                    ring: &self.ring,
                    agents: Cow::Borrowed(views),
                    visited: &self.visited,
                };
                active.clear();
                chosen.clear();
                self.activation.select_into(&view, chosen);
                chosen.retain(|id| {
                    self.agents.terminated.get(id.index()).is_some_and(|t| !*t)
                });
                if chosen.len() > 1 {
                    chosen.sort_unstable();
                    chosen.dedup();
                }
                if chosen.is_empty() {
                    active.extend(view.alive().map(|a| a.id));
                } else {
                    active.extend(chosen.iter().copied());
                }
            }
            // The policy result was sorted and deduplicated above (the FSYNC
            // pass walks the agents in order by construction).
            debug_assert!(
                self.scratch.active.windows(2).all(|w| w[0] < w[1]),
                "active set must be sorted and deduplicated"
            );

            self.scratch.active_mask.clear();
            self.scratch.active_mask.resize(self.agents.len(), false);
            for id in &self.scratch.active {
                self.scratch.active_mask[id.index()] = true;
            }
        }

        // Deferred predictions (SSYNC with an omniscient edge policy only):
        // the active set is known, so actives run Compute on the live
        // protocols (prediction fusion) and only sleepers dry-run a probe.
        // Active decisions land straight in the decision buffer — there is
        // no separate Look + Compute pass afterwards.
        let deferred = predict && !fsync && !act_pred;
        if deferred {
            // Sleepers are only dry-run when the edge policy actually reads
            // their predictions; the paper's block-the-mover adversaries
            // all filter on the active set first.
            let probe_sleepers = self.edges.needs_sleeper_predictions();
            let agent_count = self.agents.len();
            let RoundScratch { views, probes, active_mask, decisions, .. } = &mut self.scratch;
            let views = &mut views[..agent_count];
            let active_mask = &active_mask[..agent_count];
            decisions.clear();
            decisions.resize(agent_count, None);
            for (index, decision_slot) in decisions.iter_mut().enumerate() {
                if self.agents.terminated[index] {
                    continue;
                }
                let node = self.agents.node[index];
                let handedness = self.agents.handedness[index];
                let decision = if active_mask[index] {
                    let snapshot = build_snapshot(&self.ring, &self.agents, index, round, fsync);
                    let decision = self.agents.program[index].decide(&snapshot);
                    *decision_slot = Some(decision);
                    decision
                } else if probe_sleepers {
                    let snapshot = build_snapshot(&self.ring, &self.agents, index, round, fsync);
                    probes.refresh(index, &self.agents.program[index]).decide(&snapshot)
                } else {
                    continue;
                };
                views[index].predicted = predict_action(&self.ring, node, handedness, decision);
            }
        }

        // 2. Edge adversary (may inspect predicted intents and the active
        // set). A forced round skips the policy: the caller *is* the
        // adversary.
        let missing = match forced {
            Some(choice) => choice.filter(|e| e.index() < self.ring.size()),
            None => {
                let view = RoundView {
                    round,
                    ring: &self.ring,
                    agents: Cow::Borrowed(&self.scratch.views),
                    visited: &self.visited,
                };
                self.edges
                    .select(&view, &self.scratch.active)
                    .filter(|e| e.index() < self.ring.size())
            }
        };

        // 3. Look + Compute for active agents, in id order. On prediction
        // rounds this is *fused* with the prediction pass: the probe was
        // state-copied from the live protocol and dry-run on the identical
        // Look snapshot, so (protocols being deterministic) its decision is
        // this round's decision and its state the post-Compute state — the
        // probe is swapped in instead of running Look + Compute a second
        // time.
        if fsync && predict {
            // The one-pass FSYNC fill already ran Compute on every live
            // agent and recorded the decisions; terminated agents hold
            // `None` there exactly as the resolution phase expects, so the
            // prediction buffer simply *becomes* the decision buffer.
            std::mem::swap(&mut self.scratch.decisions, &mut self.scratch.predicted);
        } else if deferred {
            // The deferred pass above filled the decision buffer in place.
        } else {
            self.scratch.decisions.clear();
            self.scratch.decisions.resize(self.agents.len(), None);
            for index in 0..self.agents.len() {
                if !self.scratch.active_mask[index] {
                    continue;
                }
                let decision = if predict {
                    // Only the predicting-scheduler tier reaches this branch
                    // (the FSYNC and deferred tiers were handled above), so
                    // the probe holds the post-Compute state: swap it in.
                    debug_assert!(act_pred);
                    let decision = self.scratch.predicted[index]
                        .expect("every live agent carries a prediction on prediction rounds");
                    self.scratch.probes.swap(index, &mut self.agents.program[index]);
                    decision
                } else {
                    let snapshot = build_snapshot(&self.ring, &self.agents, index, round, fsync);
                    self.agents.program[index].decide(&snapshot)
                };
                self.scratch.decisions[index] = Some(decision);
            }
        }

        // Keep the start-of-round nodes for the trace (trace-only work).
        if record_trace {
            self.scratch.nodes_before.clear();
            self.scratch.nodes_before.extend_from_slice(&self.agents.node);
        }

        // Ports denied for the whole round: every port already held at the
        // start of the round plus every port acquired during it ("access to
        // the port continues to be denied … during this round"). At most one
        // entry per agent, so an unsorted scratch vec with a linear
        // membership scan beats both a hash set and a sorted vec. (FSYNC
        // rounds collected the held ports during the one-pass fill; held
        // ports only change during resolution, so the fill-time snapshot is
        // identical.)
        if !fsync {
            self.scratch.claimed.clear();
            for (node, port) in self.agents.node.iter().zip(&self.agents.held_port) {
                if let Some(port) = port {
                    self.scratch.claimed.push((*node, *port));
                }
            }
        }

        // 4–6. Resolution (port acquisition in mutual exclusion, then
        // moves), passive transport, and activation/sleep bookkeeping —
        // shared verbatim with the batched engine via `resolve_lane`.
        {
            let agent_count = self.agents.len();
            let transport_pt = self.synchrony.transport() == Some(TransportModel::PassiveTransport);
            let lane = self.agents.lane_state_mut(
                self.visited.as_mut_slice(),
                &mut self.unvisited,
                &mut self.alive,
            );
            resolve_lane(
                &self.ring,
                lane,
                &self.scratch.decisions[..agent_count],
                &self.scratch.active_mask[..agent_count],
                &mut self.scratch.claimed,
                missing,
                round,
                fsync,
                transport_pt,
            );
        }
        if self.explored_at.is_none() && self.unvisited == 0 {
            self.explored_at = Some(round);
        }

        // 7. Trace recording: flat columnar appends straight from the round
        // slices (allocation-free in the recycled steady state; see
        // `Trace::record_round_from_lane`).
        let visited_count = self.ring.size() - self.unvisited;
        if let Some(trace) = self.trace.as_mut() {
            trace.record_round_from_lane(
                round,
                missing,
                visited_count,
                self.ring.size(),
                &self.scratch.active,
                &self.scratch.active_mask,
                &self.scratch.nodes_before,
                &self.agents.node,
                &self.agents.held_port,
                &self.scratch.decisions,
                &self.agents.prior,
                &self.agents.terminated,
                &self.agents.program,
            );
        }
        true
    }

    /// Runs until the stop condition holds or `max_rounds` rounds have been
    /// simulated, and summarises the execution.
    pub fn run(&mut self, max_rounds: u64, stop: StopCondition) -> RunReport {
        let reason = self.run_rounds(max_rounds, stop);
        self.report(reason)
    }

    /// [`Simulation::run`], but the summary is written into an existing
    /// report whose per-agent vectors are reused (allocation-free once the
    /// report has seen a team of this size) — the companion of
    /// [`Simulation::recycle`] on the runs/sec fast path.
    pub fn run_into(&mut self, max_rounds: u64, stop: StopCondition, report: &mut RunReport) {
        let reason = self.run_rounds(max_rounds, stop);
        self.report_into(reason, report);
    }

    fn run_rounds(&mut self, max_rounds: u64, stop: StopCondition) -> StopReason {
        let mut reason = StopReason::BudgetExhausted;
        if stop == StopCondition::RoundBudget {
            // The budget-only loop (throughput measurement) skips the
            // per-round stop-condition dispatch.
            for _ in 0..max_rounds {
                if !self.step() {
                    return StopReason::Deadlocked;
                }
            }
            return reason;
        }
        for _ in 0..max_rounds {
            if self.stop_condition_met(stop) {
                reason = StopReason::ConditionMet;
                break;
            }
            if !self.step() {
                reason = StopReason::Deadlocked;
                break;
            }
        }
        if reason == StopReason::BudgetExhausted && self.stop_condition_met(stop) {
            reason = StopReason::ConditionMet;
        }
        reason
    }

    fn stop_condition_met(&self, stop: StopCondition) -> bool {
        match stop {
            StopCondition::Explored => self.explored(),
            StopCondition::ExploredAndPartialTermination => {
                self.explored() && self.alive < self.agents.len()
            }
            StopCondition::AllTerminated => self.alive == 0,
            StopCondition::RoundBudget => false,
        }
    }

    /// Builds the report for the current state of the simulation.
    #[must_use]
    pub fn report(&self, stop_reason: StopReason) -> RunReport {
        let mut report = RunReport::default();
        self.report_into(stop_reason, &mut report);
        report
    }

    /// [`Simulation::report`], written into an existing report in place. The
    /// per-agent vectors reuse their capacity, so summarising a recycled run
    /// into a recycled report allocates nothing.
    pub fn report_into(&self, stop_reason: StopReason, out: &mut RunReport) {
        out.rounds = self.round;
        out.ring_size = self.ring.size();
        out.explored_at = self.explored_at;
        out.visited_count = self.visited_count();
        out.termination_rounds.clone_from(&self.agents.terminated_at);
        out.all_terminated = self.all_terminated();
        out.moves_per_agent.clone_from(&self.agents.moves);
        out.visited_per_agent.clear();
        out.visited_per_agent
            .extend((0..self.agents.len()).map(|index| self.agents.visited_count(index)));
        out.total_moves = self.agents.moves.iter().sum();
        out.stop_reason = stop_reason;
    }

    /// View of the upcoming round for external inspection (used by the
    /// renderer and by tests). The view always includes decision predictions
    /// and borrows the simulation's round scratch (which is why this takes
    /// `&mut self` — the next `step` refills every scratch buffer before
    /// reading it, so peeking never perturbs the run).
    #[must_use]
    pub fn peek(&mut self) -> RoundView<'_> {
        let round = self.round + 1;
        let fsync = self.synchrony.is_fsync();
        {
            let RoundScratch { views, predicted, probes, .. } = &mut self.scratch;
            fill_agent_views(views, predicted, probes, &self.ring, &self.agents, round, fsync, true);
        }
        RoundView {
            round,
            ring: &self.ring,
            agents: Cow::Borrowed(&self.scratch.views),
            visited: &self.visited,
        }
    }

    /// Validates the adversary's last choice against the ring (exposed for
    /// property tests; the engine already filters invalid edges).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AdversaryEdgeOutOfRange`] when the edge does not
    /// exist.
    pub fn validate_edge_choice(&self, edge: Option<EdgeId>) -> Result<(), EngineError> {
        match edge {
            Some(e) if e.index() >= self.ring.size() => {
                Err(EngineError::AdversaryEdgeOutOfRange { edge: e, ring_size: self.ring.size() })
            }
            _ => Ok(()),
        }
    }

    /// Number of agents in the team (terminated or not).
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Number of agents that have not terminated.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Total successful traversals across the team so far.
    #[must_use]
    pub fn total_moves(&self) -> u64 {
        self.agents.moves.iter().sum()
    }

    /// Whether this simulation can be checkpointed: the installed activation
    /// policy must be able to capture its state in a token (seeded random
    /// policies cannot; see
    /// [`ActivationPolicy::state_token`]).
    /// The edge policy never matters — checkpoint/restore exists to drive
    /// branching through [`Simulation::step_with_edge`], which bypasses it.
    #[must_use]
    pub fn supports_checkpoint(&self) -> bool {
        self.activation.state_token().is_some()
    }

    /// Captures the complete behavioural state of the run — round, visit
    /// maps, every agent's position/port/program state and the activation
    /// policy's token — into a fresh [`SimCheckpoint`], so the run can be
    /// branched: `checkpoint`, step with one adversary choice, inspect,
    /// [`restore`](Simulation::restore), step with the next choice.
    ///
    /// The trace (if recording) and the edge policy's internal state are
    /// deliberately **not** captured: checkpointing callers drive the
    /// adversary themselves through [`Simulation::step_with_edge`] and run
    /// trace-off (a restored trace-on simulation keeps appending rounds from
    /// every branch to one trace).
    ///
    /// # Panics
    ///
    /// Panics if the activation policy is not checkpointable; guard with
    /// [`Simulation::supports_checkpoint`].
    #[must_use]
    pub fn checkpoint(&self) -> SimCheckpoint {
        let mut out = SimCheckpoint::default();
        self.checkpoint_into(&mut out);
        out
    }

    /// [`Simulation::checkpoint`], written into an existing checkpoint whose
    /// buffers are reused — the model checker's expansion loop re-fills one
    /// scratch checkpoint per candidate state instead of allocating per
    /// branch.
    ///
    /// # Panics
    ///
    /// Panics if the activation policy is not checkpointable.
    pub fn checkpoint_into(&self, out: &mut SimCheckpoint) {
        out.round = self.round;
        out.explored_at = self.explored_at;
        out.unvisited = self.unvisited;
        out.alive = self.alive;
        out.visited.clone_from(&self.visited);
        let agents = &self.agents;
        out.node.clone_from(&agents.node);
        out.held_port.clone_from(&agents.held_port);
        out.terminated.clone_from(&agents.terminated);
        out.handedness.clone_from(&agents.handedness);
        out.prior.clone_from(&agents.prior);
        out.moves.clone_from(&agents.moves);
        out.activations.clone_from(&agents.activations);
        out.last_active_round.clone_from(&agents.last_active_round);
        out.asleep_on_port.clone_from(&agents.asleep_on_port);
        out.terminated_at.clone_from(&agents.terminated_at);
        out.agent_visited.clone_from(&agents.visited);
        out.agent_visited_count.clone_from(&agents.visited_count);
        out.node_population.clone_from(&agents.node_population);
        out.crowded_nodes = agents.crowded_nodes;
        if out.program.len() == agents.program.len() {
            for (dst, src) in out.program.iter_mut().zip(&agents.program) {
                if !dst.clone_from_program(src) {
                    *dst = src.clone_program();
                }
            }
        } else {
            out.program.clear();
            out.program.extend(agents.program.iter().map(AgentProgram::clone_program));
        }
        out.activation_token = self
            .activation
            .state_token()
            .expect("checkpoint requires a checkpointable activation policy");
    }

    /// Rewinds the run to a state previously captured from **this** run by
    /// [`Simulation::checkpoint`]: every field the checkpoint holds is copied
    /// back in place (no allocation when shapes match) and the activation
    /// policy's state token is restored. Stepping after a restore replays
    /// exactly as stepping did from the original state.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's shape (team size, ring size) does not match
    /// this simulation — checkpoints are not portable across specs.
    pub fn restore(&mut self, cp: &SimCheckpoint) {
        assert_eq!(cp.node.len(), self.agents.len(), "checkpoint is from a different team");
        assert_eq!(cp.visited.len(), self.ring.size(), "checkpoint is from a different ring");
        self.round = cp.round;
        self.explored_at = cp.explored_at;
        self.unvisited = cp.unvisited;
        self.alive = cp.alive;
        self.visited.clone_from(&cp.visited);
        let agents = &mut self.agents;
        agents.node.clone_from(&cp.node);
        agents.held_port.clone_from(&cp.held_port);
        agents.terminated.clone_from(&cp.terminated);
        agents.handedness.clone_from(&cp.handedness);
        agents.prior.clone_from(&cp.prior);
        agents.moves.clone_from(&cp.moves);
        agents.activations.clone_from(&cp.activations);
        agents.last_active_round.clone_from(&cp.last_active_round);
        agents.asleep_on_port.clone_from(&cp.asleep_on_port);
        agents.terminated_at.clone_from(&cp.terminated_at);
        agents.visited.clone_from(&cp.agent_visited);
        agents.visited_count.clone_from(&cp.agent_visited_count);
        agents.node_population.clone_from(&cp.node_population);
        agents.crowded_nodes = cp.crowded_nodes;
        for (dst, src) in agents.program.iter_mut().zip(&cp.program) {
            if !dst.clone_from_program(src) {
                *dst = src.clone_program();
            }
        }
        if let Some(trace) = self.trace.as_mut() {
            // Program state just changed outside `decide` — the one event the
            // trace's label delta encoding cannot observe.
            trace.invalidate_label_cache();
        }
        self.activation.restore_state(cp.activation_token);
    }
}

/// Resolution phase of one round — steps 4–6 of the round pipeline: port
/// acquisition in mutual exclusion, traversals against the missing edge,
/// passive transport of sleeping agents (PT model), and activation/sleep
/// bookkeeping. `decisions[index]` is `Some` exactly for the agents that ran
/// Compute this round; `claimed` must already hold every port held at the
/// start of the round. Shared verbatim between the solo [`Simulation`] and
/// the batched [`SimBatch`](crate::sim_batch::SimBatch) so both paths
/// resolve rounds through the same code.
///
/// The per-agent state arrives as slices hoisted once per round (via
/// [`LaneStateMut`]): the parallel vectors are re-sliced to the common
/// length so the indexing below is bounds-check-free, and the virtual
/// protocol calls cannot force reloads of the (noalias) slice pointers.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn resolve_lane(
    ring: &RingTopology,
    lane: LaneStateMut<'_>,
    decisions: &[Option<Decision>],
    active_mask: &[bool],
    claimed: &mut Vec<(NodeId, GlobalDirection)>,
    missing: Option<EdgeId>,
    round: u64,
    fsync: bool,
    transport_pt: bool,
) {
    let LaneStateMut {
        node,
        held_port,
        terminated,
        handedness,
        prior,
        program,
        moves,
        activations,
        last_active_round,
        asleep_on_port,
        terminated_at,
        poll_termination,
        agent_visited,
        visited_count,
        ring_size,
        node_population,
        crowded_nodes,
        global_visited,
        unvisited,
        alive,
    } = lane;
    let agent_count = node.len();
    let decisions = &decisions[..agent_count];
    let mut mark_visited = |index: usize, node_index: usize| {
        if !global_visited[node_index] {
            global_visited[node_index] = true;
            *unvisited -= 1;
        }
        let cell = &mut agent_visited[index * ring_size + node_index];
        if !*cell {
            *cell = true;
            visited_count[index] += 1;
        }
    };
    for index in 0..agent_count {
        let Some(decision) = decisions[index] else { continue };
        // Under FSYNC every decider was active, so the per-agent
        // bookkeeping (step 6) folds into this pass; terminated
        // agents were never activated and their sleep counters are
        // already zero.
        if fsync {
            activations[index] += 1;
            last_active_round[index] = round;
            asleep_on_port[index] = 0;
        }
        match decision {
            Decision::Terminate => {
                *alive -= 1;
                terminated[index] = true;
                terminated_at[index] = Some(round);
                held_port[index] = None;
                prior[index] = PriorOutcome::Idle;
            }
            Decision::Stay => {
                prior[index] = PriorOutcome::Idle;
            }
            Decision::Retreat => {
                held_port[index] = None;
                prior[index] = PriorOutcome::Idle;
            }
            Decision::Move(ldir) => {
                let gdir = crate::world::to_global(handedness[index], ldir);
                let at = node[index];
                let already_held = held_port[index] == Some(gdir);
                if !already_held {
                    // Release any other port first, then try to
                    // acquire. The target port must not have been
                    // held or claimed by anyone else this round
                    // (mutual exclusion).
                    held_port[index] = None;
                    if claimed.contains(&(at, gdir)) {
                        prior[index] = PriorOutcome::PortAcquisitionFailed;
                        continue;
                    }
                    held_port[index] = Some(gdir);
                    claimed.push((at, gdir));
                }
                // Attempt the traversal.
                let edge = ring.edge_towards(at, gdir);
                if missing == Some(edge) {
                    prior[index] = PriorOutcome::BlockedOnPort;
                } else {
                    let destination = ring.neighbor(at, gdir);
                    node[index] = destination;
                    held_port[index] = None;
                    prior[index] = PriorOutcome::Moved;
                    moves[index] += 1;
                    AgentSoA::relocate(node_population, crowded_nodes, at, destination);
                    mark_visited(index, destination.index());
                }
            }
        }
        // A protocol may flag termination without returning
        // `Terminate` (defensive; none of the paper's algorithms do).
        if poll_termination[index] && program[index].has_terminated() && !terminated[index] {
            *alive -= 1;
            terminated[index] = true;
            terminated_at[index] = Some(round);
            held_port[index] = None;
        }
    }

    // 5. Passive transport of sleeping agents (PT model only).
    if transport_pt {
        let active_mask = &active_mask[..agent_count];
        for index in 0..agent_count {
            if active_mask[index] || terminated[index] {
                continue;
            }
            if let Some(gdir) = held_port[index] {
                let at = node[index];
                let edge = ring.edge_towards(at, gdir);
                if missing != Some(edge) {
                    let destination = ring.neighbor(at, gdir);
                    node[index] = destination;
                    held_port[index] = None;
                    prior[index] = PriorOutcome::Transported;
                    moves[index] += 1;
                    AgentSoA::relocate(node_population, crowded_nodes, at, destination);
                    mark_visited(index, destination.index());
                }
            }
        }
    }

    // 6. Bookkeeping: activation ages, sleep counters (FSYNC rounds
    // folded this into the resolution pass above).
    if !fsync {
        let active_mask = &active_mask[..agent_count];
        for index in 0..agent_count {
            if active_mask[index] {
                activations[index] += 1;
                last_active_round[index] = round;
                asleep_on_port[index] = 0;
            } else if held_port[index].is_some() {
                asleep_on_port[index] += 1;
            } else {
                asleep_on_port[index] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BlockAgent, NoRemoval, PreventMeeting};
    use crate::scheduler::{FullActivation, RoundRobinSingle};
    use dynring_core::fsync::{KnownBound, Unconscious};
    use dynring_core::single::LoneWalker;
    use dynring_core::ssync::PtBoundChirality;

    fn fsync_sim(
        n: usize,
        starts: &[usize],
        protos: Vec<Box<dyn Protocol>>,
        edges: Box<dyn EdgePolicy>,
    ) -> Simulation {
        let ring = RingTopology::new(n).unwrap();
        let mut builder = Simulation::builder(ring)
            .synchrony(SynchronyModel::Fsync)
            .activation(Box::new(FullActivation))
            .edges(edges)
            .record_trace(true);
        for (start, proto) in starts.iter().zip(protos) {
            builder = builder.agent(NodeId::new(*start), Handedness::LeftIsCcw, proto);
        }
        builder.build().unwrap()
    }

    #[test]
    fn builder_rejects_empty_scenarios_and_bad_starts() {
        let ring = RingTopology::new(4).unwrap();
        let err = Simulation::builder(ring.clone())
            .activation(Box::new(FullActivation))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap_err();
        assert_eq!(err, EngineError::NoAgents);

        let err = Simulation::builder(ring.clone())
            .agent(NodeId::new(9), Handedness::LeftIsCcw, Box::new(LoneWalker::new(0)))
            .activation(Box::new(FullActivation))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::StartOutOfRange { .. }));

        let err = Simulation::builder(ring)
            .agent(NodeId::new(0), Handedness::LeftIsCcw, Box::new(LoneWalker::new(0)))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::MissingPolicy { which: "activation" }));
    }

    #[test]
    fn two_known_bound_agents_explore_and_terminate_on_a_static_ring() {
        let n = 8;
        let mut sim = fsync_sim(
            n,
            &[0, 3],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        let report = sim.run(200, StopCondition::AllTerminated);
        assert!(report.explored());
        assert!(report.all_terminated);
        // Theorem 3: termination within 3N - 6 rounds (plus the terminating
        // decision round itself).
        let deadline = 3 * n as u64 - 6 + 1;
        assert!(report.last_termination().unwrap() <= deadline);
        sim.trace().unwrap().check_invariants(n).unwrap();
    }

    #[test]
    fn a_single_agent_never_explores_against_its_blocker() {
        let n = 6;
        let mut sim = fsync_sim(
            n,
            &[2],
            vec![Box::new(LoneWalker::new(3))],
            Box::new(BlockAgent::new(AgentId::new(0))),
        );
        let report = sim.run(500, StopCondition::Explored);
        assert!(!report.explored());
        assert_eq!(report.visited_count, 1);
        assert_eq!(report.total_moves, 0);
    }

    #[test]
    fn unconscious_agents_explore_despite_prevent_meeting() {
        let n = 9;
        let mut sim = fsync_sim(
            n,
            &[0, 4],
            vec![Box::new(Unconscious::new()), Box::new(Unconscious::new())],
            Box::new(PreventMeeting::new()),
        );
        let report = sim.run(40 * n as u64, StopCondition::Explored);
        assert!(report.explored(), "Theorem 5: exploration completes in O(n) rounds");
        assert!(!report.all_terminated, "unconscious exploration never terminates");
    }

    #[test]
    fn port_mutual_exclusion_lets_only_one_agent_through() {
        // Two agents on the same node moving the same way: one acquires the
        // port, the other reports a failed acquisition (Theorem 3's argument
        // for agents starting on the same node).
        let n = 5;
        let mut sim = fsync_sim(
            n,
            &[0, 0],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        assert!(sim.step());
        let record = sim.trace().unwrap().round_at(0).unwrap();
        let outcomes: Vec<PriorOutcome> = record.agents.iter().map(|a| a.outcome).collect();
        assert!(outcomes.contains(&PriorOutcome::Moved));
        assert!(outcomes.contains(&PriorOutcome::PortAcquisitionFailed));
        sim.trace().unwrap().check_invariants(n).unwrap();
    }

    #[test]
    fn ssync_round_robin_with_pt_transport_carries_sleepers() {
        use crate::adversary::FromSchedule;
        use dynring_graph::ScheduleBuilder;
        // One PT agent walking left (CCW→CW depending on handedness) gets
        // blocked, falls asleep on the port, and is carried across when the
        // edge reappears while it is still asleep.
        let ring = RingTopology::new(6).unwrap();
        let schedule = ScheduleBuilder::new(&ring)
            .remove_for(dynring_graph::EdgeId::new(5), 2)
            .all_present_for(10)
            .build();
        let mut sim = Simulation::builder(ring)
            .synchrony(SynchronyModel::Ssync(TransportModel::PassiveTransport))
            .agent(NodeId::new(0), Handedness::LeftIsCcw, Box::new(PtBoundChirality::new(6)))
            .agent(NodeId::new(3), Handedness::LeftIsCcw, Box::new(PtBoundChirality::new(6)))
            .activation(Box::new(RoundRobinSingle::new()))
            .edges(Box::new(FromSchedule::new(schedule)))
            .record_trace(true)
            .build()
            .unwrap();
        let report = sim.run(400, StopCondition::ExploredAndPartialTermination);
        assert!(report.explored());
        assert!(report.partially_terminated(), "Theorem 12: at least one agent terminates");
        sim.trace().unwrap().check_invariants(6).unwrap();
    }

    #[test]
    fn report_accessors_are_consistent() {
        let n = 6;
        let mut sim = fsync_sim(
            n,
            &[0, 2],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        let report = sim.run(100, StopCondition::AllTerminated);
        assert_eq!(report.ring_size, n);
        assert_eq!(report.moves_per_agent.len(), 2);
        assert_eq!(report.termination_rounds.len(), 2);
        assert!(report.first_termination().is_some());
        assert!(report.last_termination().unwrap() >= report.first_termination().unwrap());
        assert_eq!(
            report.total_moves,
            report.moves_per_agent.iter().sum::<u64>()
        );
    }

    #[test]
    fn run_spec_validates_like_the_builder() {
        let ring = RingTopology::new(4).unwrap();
        let err = RunSpec::new(ring.clone(), SynchronyModel::Fsync, vec![], false).unwrap_err();
        assert_eq!(err, EngineError::NoAgents);
        let err = RunSpec::new(
            ring,
            SynchronyModel::Fsync,
            vec![AgentSpec::new(
                NodeId::new(9),
                Handedness::LeftIsCcw,
                Box::new(LoneWalker::new(0)) as Box<dyn Protocol>,
            )],
            false,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::StartOutOfRange { .. }));
    }

    #[test]
    fn recycled_runs_replay_the_fresh_execution_bit_for_bit() {
        let n = 8;
        let spec = RunSpec::new(
            RingTopology::new(n).unwrap(),
            SynchronyModel::Fsync,
            vec![
                AgentSpec::new(
                    NodeId::new(0),
                    Handedness::LeftIsCcw,
                    Box::new(KnownBound::new(n)) as Box<dyn Protocol>,
                ),
                AgentSpec::new(
                    NodeId::new(3),
                    Handedness::LeftIsCcw,
                    Box::new(KnownBound::new(n)) as Box<dyn Protocol>,
                ),
            ],
            true,
        )
        .unwrap();
        assert_eq!(spec.agent_count(), 2);
        assert!(spec.record_trace());
        assert_eq!(spec.ring().size(), n);
        assert!(spec.synchrony().is_fsync());
        let mut sim = spec.instantiate(
            Box::new(FullActivation),
            Box::new(crate::adversary::StickyRandomEdge::new(1, 6, 0.25, 7)),
        );
        let fresh_report = sim.run(200, StopCondition::AllTerminated);
        let fresh_trace = sim.trace().expect("trace on").clone();
        // Recycling the same simulation (the seeded adversary is restored by
        // its reset hook) must replay the identical execution; run_into
        // refills an existing report in place.
        let mut recycled_report = RunReport::default();
        for _ in 0..3 {
            sim.recycle(&spec);
            assert_eq!(sim.round(), 0);
            sim.run_into(200, StopCondition::AllTerminated, &mut recycled_report);
            assert_eq!(fresh_report, recycled_report);
            assert_eq!(&fresh_trace, sim.trace().expect("trace on"));
        }
    }

    #[test]
    fn recycle_adopts_a_new_shape_and_policies() {
        let small = RunSpec::new(
            RingTopology::new(5).unwrap(),
            SynchronyModel::Fsync,
            vec![
                AgentSpec::new(
                    NodeId::new(0),
                    Handedness::LeftIsCcw,
                    Box::new(KnownBound::new(5)) as Box<dyn Protocol>,
                ),
                AgentSpec::new(
                    NodeId::new(2),
                    Handedness::LeftIsCcw,
                    Box::new(KnownBound::new(5)) as Box<dyn Protocol>,
                ),
            ],
            true,
        )
        .unwrap();
        let big = RunSpec::new(
            RingTopology::new(9).unwrap(),
            SynchronyModel::Fsync,
            vec![AgentSpec::new(
                NodeId::new(4),
                Handedness::LeftIsCw,
                Box::new(LoneWalker::new(0)) as Box<dyn Protocol>,
            )],
            false,
        )
        .unwrap();
        let reference = big
            .instantiate(Box::new(FullActivation), Box::new(NoRemoval))
            .run(40, StopCondition::RoundBudget);
        // Start from the *small* two-agent spec, then recycle into the
        // nine-node single-agent one with different policies: the grown ring
        // and shrunk team must behave exactly like a fresh build.
        let mut sim = small.instantiate(
            Box::new(FullActivation),
            Box::new(BlockAgent::new(AgentId::new(0))),
        );
        let _ = sim.run(30, StopCondition::AllTerminated);
        sim.replace_policies(Box::new(FullActivation), Box::new(NoRemoval));
        sim.recycle(&big);
        assert!(sim.trace().is_none(), "recycling a trace-off spec drops the trace");
        assert_eq!(sim.run(40, StopCondition::RoundBudget), reference);
    }

    #[test]
    fn peek_exposes_predictions_without_advancing() {
        let n = 5;
        let mut sim = fsync_sim(
            n,
            &[0, 2],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        let view = sim.peek();
        assert_eq!(view.round, 1);
        assert_eq!(view.agents.len(), 2);
        assert!(view.agents.iter().all(|a| a.predicted.is_move()));
        assert_eq!(sim.round(), 0);
        assert!(sim.validate_edge_choice(Some(EdgeId::new(9))).is_err());
        assert!(sim.validate_edge_choice(Some(EdgeId::new(2))).is_ok());
        assert!(sim.validate_edge_choice(None).is_ok());
    }
}
