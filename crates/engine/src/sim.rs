//! The round loop: Look–Compute–Move against an adversary.

use crate::adversary::EdgePolicy;
use crate::error::EngineError;
use crate::scheduler::ActivationPolicy;
use crate::trace::{AgentRoundRecord, RoundRecord, Trace};
use crate::world::{build_snapshot, predict_action, AgentRuntime, AgentView, RoundView};
use dynring_graph::{AgentId, EdgeId, Handedness, NodeId, RingTopology};
use dynring_model::{Decision, PriorOutcome, Protocol, SynchronyModel, TransportModel};
use serde::{Deserialize, Serialize};

/// When a run should stop (besides exhausting the round budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopCondition {
    /// Stop as soon as every node has been visited.
    Explored,
    /// Stop as soon as every node has been visited **and** at least one agent
    /// has terminated.
    ExploredAndPartialTermination,
    /// Stop as soon as every agent has terminated (also stops if the ring is
    /// explored and no agent can ever terminate — i.e. never, so use a round
    /// budget).
    AllTerminated,
    /// Run for the full round budget regardless.
    RoundBudget,
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopReason {
    /// The stop condition was met.
    ConditionMet,
    /// The round budget was exhausted.
    BudgetExhausted,
    /// Every agent terminated (nothing left to simulate).
    Deadlocked,
}

/// Summary of a finished run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of rounds simulated.
    pub rounds: u64,
    /// Ring size.
    pub ring_size: usize,
    /// Round in which the last unvisited node was first visited, if any.
    pub explored_at: Option<u64>,
    /// Number of distinct nodes visited by the union of the agents.
    pub visited_count: usize,
    /// Per-agent termination rounds (same order as the agents were added).
    pub termination_rounds: Vec<Option<u64>>,
    /// Whether every agent terminated.
    pub all_terminated: bool,
    /// Per-agent number of successful traversals.
    pub moves_per_agent: Vec<u64>,
    /// Per-agent number of distinct nodes visited.
    pub visited_per_agent: Vec<usize>,
    /// Total number of successful traversals.
    pub total_moves: u64,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

impl RunReport {
    /// Whether the whole ring was explored.
    #[must_use]
    pub fn explored(&self) -> bool {
        self.explored_at.is_some()
    }

    /// Round of the earliest explicit termination, if any.
    #[must_use]
    pub fn first_termination(&self) -> Option<u64> {
        self.termination_rounds.iter().flatten().min().copied()
    }

    /// Round of the latest explicit termination, if all agents terminated.
    #[must_use]
    pub fn last_termination(&self) -> Option<u64> {
        if self.all_terminated {
            self.termination_rounds.iter().flatten().max().copied()
        } else {
            None
        }
    }

    /// Whether at least one agent terminated.
    #[must_use]
    pub fn partially_terminated(&self) -> bool {
        self.termination_rounds.iter().any(Option::is_some)
    }
}

/// Builder for a [`Simulation`].
pub struct SimulationBuilder {
    ring: RingTopology,
    synchrony: SynchronyModel,
    agents: Vec<(NodeId, Handedness, Box<dyn Protocol>)>,
    activation: Option<Box<dyn ActivationPolicy>>,
    edges: Option<Box<dyn EdgePolicy>>,
    record_trace: bool,
}

impl SimulationBuilder {
    /// Declares the synchrony model (FSYNC by default).
    #[must_use]
    pub fn synchrony(mut self, synchrony: SynchronyModel) -> Self {
        self.synchrony = synchrony;
        self
    }

    /// Adds an agent with its start node, private orientation and protocol.
    #[must_use]
    pub fn agent(
        mut self,
        start: NodeId,
        handedness: Handedness,
        protocol: Box<dyn Protocol>,
    ) -> Self {
        self.agents.push((start, handedness, protocol));
        self
    }

    /// Sets the activation policy (scheduler).
    #[must_use]
    pub fn activation(mut self, policy: Box<dyn ActivationPolicy>) -> Self {
        self.activation = Some(policy);
        self
    }

    /// Sets the edge-removal policy (dynamics adversary).
    #[must_use]
    pub fn edges(mut self, policy: Box<dyn EdgePolicy>) -> Self {
        self.edges = Some(policy);
        self
    }

    /// Enables or disables per-round trace recording (disabled by default).
    #[must_use]
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Fails if no agents were declared, an agent starts outside the ring, or
    /// a policy is missing.
    pub fn build(self) -> Result<Simulation, EngineError> {
        if self.agents.is_empty() {
            return Err(EngineError::NoAgents);
        }
        let activation =
            self.activation.ok_or(EngineError::MissingPolicy { which: "activation" })?;
        let edges = self.edges.ok_or(EngineError::MissingPolicy { which: "edges" })?;
        let ring_size = self.ring.size();
        let mut runtimes = Vec::with_capacity(self.agents.len());
        for (index, (start, handedness, protocol)) in self.agents.into_iter().enumerate() {
            if start.index() >= ring_size {
                return Err(EngineError::StartOutOfRange {
                    agent: AgentId::new(index),
                    node: start,
                    ring_size,
                });
            }
            runtimes.push(AgentRuntime::new(
                AgentId::new(index),
                start,
                handedness,
                protocol,
                ring_size,
            ));
        }
        let mut visited = vec![false; ring_size];
        for agent in &runtimes {
            visited[agent.node.index()] = true;
        }
        Ok(Simulation {
            ring: self.ring,
            synchrony: self.synchrony,
            agents: runtimes,
            visited,
            round: 0,
            activation,
            edges,
            trace: if self.record_trace { Some(Trace::new()) } else { None },
            explored_at: None,
        })
    }
}

/// Builds the adversary-visible view of the upcoming round from the world
/// state. A free function so that the simulation can keep its policy fields
/// mutably borrowable while the view is alive.
fn build_round_view<'a>(
    ring: &'a RingTopology,
    agents: &[AgentRuntime],
    visited: &'a [bool],
    round: u64,
    fsync: bool,
) -> RoundView<'a> {
    let mut views = Vec::with_capacity(agents.len());
    for (index, agent) in agents.iter().enumerate() {
        let predicted = if agent.terminated {
            crate::world::PredictedAction::Terminate
        } else {
            let snapshot = build_snapshot(ring, agents, index, round, fsync);
            let mut probe = agent.protocol.clone_box();
            predict_action(ring, agent, probe.decide(&snapshot))
        };
        views.push(AgentView {
            id: agent.id,
            node: agent.node,
            held_port: agent.held_port,
            terminated: agent.terminated,
            handedness: agent.handedness,
            predicted,
            last_active_round: agent.last_active_round,
            asleep_on_port: agent.asleep_on_port,
            moves: agent.moves,
            state_label: agent.protocol.state_label(),
        });
    }
    RoundView { round, ring, agents: views, visited }
}

/// A live simulation of agents exploring a dynamic ring.
pub struct Simulation {
    ring: RingTopology,
    synchrony: SynchronyModel,
    agents: Vec<AgentRuntime>,
    visited: Vec<bool>,
    round: u64,
    activation: Box<dyn ActivationPolicy>,
    edges: Box<dyn EdgePolicy>,
    trace: Option<Trace>,
    explored_at: Option<u64>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("ring_size", &self.ring.size())
            .field("round", &self.round)
            .field("agents", &self.agents.len())
            .field("visited", &self.visited_count())
            .field("synchrony", &self.synchrony)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Starts building a simulation on the given ring.
    #[must_use]
    pub fn builder(ring: RingTopology) -> SimulationBuilder {
        SimulationBuilder {
            ring,
            synchrony: SynchronyModel::Fsync,
            agents: Vec::new(),
            activation: None,
            edges: None,
            record_trace: false,
        }
    }

    /// The ring being explored.
    #[must_use]
    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// Number of rounds simulated so far.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The recorded trace, if trace recording was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Number of distinct nodes visited by the union of the agents.
    #[must_use]
    pub fn visited_count(&self) -> usize {
        self.visited.iter().filter(|v| **v).count()
    }

    /// Whether every node has been visited.
    #[must_use]
    pub fn explored(&self) -> bool {
        self.explored_at.is_some()
    }

    /// The round in which exploration completed, if it did.
    #[must_use]
    pub fn explored_at(&self) -> Option<u64> {
        self.explored_at
    }

    /// Whether every agent has terminated.
    #[must_use]
    pub fn all_terminated(&self) -> bool {
        self.agents.iter().all(|a| a.terminated)
    }

    /// Current node of each agent, in agent order (for tests and rendering).
    #[must_use]
    pub fn positions(&self) -> Vec<NodeId> {
        self.agents.iter().map(|a| a.node).collect()
    }

    /// Per-agent termination rounds.
    #[must_use]
    pub fn termination_rounds(&self) -> Vec<Option<u64>> {
        self.agents.iter().map(|a| a.terminated_at).collect()
    }

    /// Per-agent traversal counts.
    #[must_use]
    pub fn moves_per_agent(&self) -> Vec<u64> {
        self.agents.iter().map(|a| a.moves).collect()
    }

    fn mark_visited(visited: &mut [bool], agent: &mut AgentRuntime) {
        visited[agent.node.index()] = true;
        agent.visited[agent.node.index()] = true;
    }

    /// Plays one round. Returns `false` if there was nothing to do (every
    /// agent has terminated).
    pub fn step(&mut self) -> bool {
        if self.agents.iter().all(|a| a.terminated) {
            return false;
        }
        let round = self.round + 1;
        self.round = round;
        let fsync = self.synchrony.is_fsync();

        // 1. Activation choice. The view borrows only the ring, agents and
        // visited fields, so the policy fields stay free for mutation.
        let view = build_round_view(&self.ring, &self.agents, &self.visited, round, fsync);
        let mut active: Vec<AgentId> = if fsync {
            view.alive().map(|a| a.id).collect()
        } else {
            let mut chosen = self.activation.select(&view);
            chosen.retain(|id| {
                self.agents.get(id.index()).is_some_and(|a| !a.terminated)
            });
            chosen.sort_unstable();
            chosen.dedup();
            if chosen.is_empty() {
                view.alive().map(|a| a.id).collect()
            } else {
                chosen
            }
        };
        active.sort_unstable();

        // 2. Edge adversary (may inspect predicted intents and the active set).
        let missing = self.edges.select(&view, &active).filter(|e| e.index() < self.ring.size());
        drop(view);

        // 3. Look + Compute for active agents, in id order.
        let mut decisions: Vec<Option<Decision>> = vec![None; self.agents.len()];
        for id in &active {
            let index = id.index();
            let snapshot = build_snapshot(&self.ring, &self.agents, index, round, fsync);
            let decision = self.agents[index].protocol.decide(&snapshot);
            decisions[index] = Some(decision);
        }

        // Keep the start-of-round nodes for the trace.
        let nodes_before: Vec<NodeId> = self.agents.iter().map(|a| a.node).collect();

        // Ports denied for the whole round: every port already held at the
        // start of the round plus every port acquired during it ("access to
        // the port continues to be denied … during this round").
        let mut claimed: std::collections::HashSet<(NodeId, dynring_graph::GlobalDirection)> =
            self.agents
                .iter()
                .filter_map(|a| a.held_port.map(|p| (a.node, p)))
                .collect();

        // 4. Resolution: port acquisition in mutual exclusion, then moves.
        for (index, decision) in decisions.iter().enumerate() {
            let Some(decision) = *decision else { continue };
            match decision {
                Decision::Terminate => {
                    let agent = &mut self.agents[index];
                    agent.terminated = true;
                    agent.terminated_at = Some(round);
                    agent.held_port = None;
                    agent.prior = PriorOutcome::Idle;
                }
                Decision::Stay => {
                    self.agents[index].prior = PriorOutcome::Idle;
                }
                Decision::Retreat => {
                    let agent = &mut self.agents[index];
                    agent.held_port = None;
                    agent.prior = PriorOutcome::Idle;
                }
                Decision::Move(ldir) => {
                    let gdir = self.agents[index].to_global(ldir);
                    let node = self.agents[index].node;
                    let already_held = self.agents[index].held_port == Some(gdir);
                    if !already_held {
                        // Release any other port first, then try to acquire.
                        // The target port must not have been held or claimed
                        // by anyone else this round (mutual exclusion).
                        let occupied = claimed.contains(&(node, gdir));
                        let agent = &mut self.agents[index];
                        agent.held_port = None;
                        if occupied {
                            agent.prior = PriorOutcome::PortAcquisitionFailed;
                            continue;
                        }
                        agent.held_port = Some(gdir);
                        claimed.insert((node, gdir));
                    }
                    // Attempt the traversal.
                    let edge = self.ring.edge_towards(node, gdir);
                    if missing == Some(edge) {
                        self.agents[index].prior = PriorOutcome::BlockedOnPort;
                    } else {
                        let destination = self.ring.neighbor(node, gdir);
                        let agent = &mut self.agents[index];
                        agent.node = destination;
                        agent.held_port = None;
                        agent.prior = PriorOutcome::Moved;
                        agent.moves += 1;
                        Self::mark_visited(&mut self.visited, agent);
                    }
                }
            }
            // A protocol may flag termination without returning `Terminate`
            // (defensive; none of the paper's algorithms do).
            if self.agents[index].protocol.has_terminated() && !self.agents[index].terminated {
                let agent = &mut self.agents[index];
                agent.terminated = true;
                agent.terminated_at = Some(round);
                agent.held_port = None;
            }
        }

        // 5. Passive transport of sleeping agents (PT model only).
        if self.synchrony.transport() == Some(TransportModel::PassiveTransport) {
            for index in 0..self.agents.len() {
                let is_active = active.contains(&AgentId::new(index));
                let agent = &self.agents[index];
                if is_active || agent.terminated {
                    continue;
                }
                if let Some(gdir) = agent.held_port {
                    let edge = self.ring.edge_towards(agent.node, gdir);
                    if missing != Some(edge) {
                        let destination = self.ring.neighbor(agent.node, gdir);
                        let agent = &mut self.agents[index];
                        agent.node = destination;
                        agent.held_port = None;
                        agent.prior = PriorOutcome::Transported;
                        agent.moves += 1;
                        Self::mark_visited(&mut self.visited, agent);
                    }
                }
            }
        }

        // 6. Bookkeeping: activation ages, sleep counters, exploration round.
        for index in 0..self.agents.len() {
            let is_active = active.contains(&AgentId::new(index));
            let agent = &mut self.agents[index];
            if is_active {
                agent.activations += 1;
                agent.last_active_round = round;
                agent.asleep_on_port = 0;
            } else if agent.held_port.is_some() {
                agent.asleep_on_port += 1;
            } else {
                agent.asleep_on_port = 0;
            }
        }
        if self.explored_at.is_none() && self.visited.iter().all(|v| *v) {
            self.explored_at = Some(round);
        }

        // 7. Trace recording.
        if self.trace.is_some() {
            let visited_count = self.visited_count();
            let records: Vec<AgentRoundRecord> = self
                .agents
                .iter()
                .enumerate()
                .map(|(index, agent)| AgentRoundRecord {
                    id: agent.id,
                    active: active.contains(&agent.id),
                    node_before: nodes_before[index],
                    node_after: agent.node,
                    held_port_after: agent.held_port,
                    decision: decisions[index],
                    outcome: agent.prior,
                    terminated: agent.terminated,
                    state_label: agent.protocol.state_label(),
                })
                .collect();
            if let Some(trace) = self.trace.as_mut() {
                trace.push(RoundRecord {
                    round,
                    missing_edge: missing,
                    active,
                    agents: records,
                    visited_count,
                });
            }
        }
        true
    }

    /// Runs until the stop condition holds or `max_rounds` rounds have been
    /// simulated, and summarises the execution.
    pub fn run(&mut self, max_rounds: u64, stop: StopCondition) -> RunReport {
        let mut reason = StopReason::BudgetExhausted;
        for _ in 0..max_rounds {
            if self.stop_condition_met(stop) {
                reason = StopReason::ConditionMet;
                break;
            }
            if !self.step() {
                reason = StopReason::Deadlocked;
                break;
            }
        }
        if reason == StopReason::BudgetExhausted && self.stop_condition_met(stop) {
            reason = StopReason::ConditionMet;
        }
        self.report(reason)
    }

    fn stop_condition_met(&self, stop: StopCondition) -> bool {
        match stop {
            StopCondition::Explored => self.explored(),
            StopCondition::ExploredAndPartialTermination => {
                self.explored() && self.agents.iter().any(|a| a.terminated)
            }
            StopCondition::AllTerminated => self.all_terminated(),
            StopCondition::RoundBudget => false,
        }
    }

    /// Builds the report for the current state of the simulation.
    #[must_use]
    pub fn report(&self, stop_reason: StopReason) -> RunReport {
        RunReport {
            rounds: self.round,
            ring_size: self.ring.size(),
            explored_at: self.explored_at,
            visited_count: self.visited_count(),
            termination_rounds: self.termination_rounds(),
            all_terminated: self.all_terminated(),
            moves_per_agent: self.moves_per_agent(),
            visited_per_agent: self.agents.iter().map(AgentRuntime::visited_count).collect(),
            total_moves: self.agents.iter().map(|a| a.moves).sum(),
            stop_reason,
        }
    }

    /// Immutable view of the upcoming round for external inspection (used by
    /// the renderer and by tests).
    #[must_use]
    pub fn peek(&self) -> RoundView<'_> {
        build_round_view(
            &self.ring,
            &self.agents,
            &self.visited,
            self.round + 1,
            self.synchrony.is_fsync(),
        )
    }

    /// Validates the adversary's last choice against the ring (exposed for
    /// property tests; the engine already filters invalid edges).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AdversaryEdgeOutOfRange`] when the edge does not
    /// exist.
    pub fn validate_edge_choice(&self, edge: Option<EdgeId>) -> Result<(), EngineError> {
        match edge {
            Some(e) if e.index() >= self.ring.size() => {
                Err(EngineError::AdversaryEdgeOutOfRange { edge: e, ring_size: self.ring.size() })
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BlockAgent, NoRemoval, PreventMeeting};
    use crate::scheduler::{FullActivation, RoundRobinSingle};
    use dynring_core::fsync::{KnownBound, Unconscious};
    use dynring_core::single::LoneWalker;
    use dynring_core::ssync::PtBoundChirality;

    fn fsync_sim(
        n: usize,
        starts: &[usize],
        protos: Vec<Box<dyn Protocol>>,
        edges: Box<dyn EdgePolicy>,
    ) -> Simulation {
        let ring = RingTopology::new(n).unwrap();
        let mut builder = Simulation::builder(ring)
            .synchrony(SynchronyModel::Fsync)
            .activation(Box::new(FullActivation))
            .edges(edges)
            .record_trace(true);
        for (start, proto) in starts.iter().zip(protos) {
            builder = builder.agent(NodeId::new(*start), Handedness::LeftIsCcw, proto);
        }
        builder.build().unwrap()
    }

    #[test]
    fn builder_rejects_empty_scenarios_and_bad_starts() {
        let ring = RingTopology::new(4).unwrap();
        let err = Simulation::builder(ring.clone())
            .activation(Box::new(FullActivation))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap_err();
        assert_eq!(err, EngineError::NoAgents);

        let err = Simulation::builder(ring.clone())
            .agent(NodeId::new(9), Handedness::LeftIsCcw, Box::new(LoneWalker::new(0)))
            .activation(Box::new(FullActivation))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::StartOutOfRange { .. }));

        let err = Simulation::builder(ring)
            .agent(NodeId::new(0), Handedness::LeftIsCcw, Box::new(LoneWalker::new(0)))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::MissingPolicy { which: "activation" }));
    }

    #[test]
    fn two_known_bound_agents_explore_and_terminate_on_a_static_ring() {
        let n = 8;
        let mut sim = fsync_sim(
            n,
            &[0, 3],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        let report = sim.run(200, StopCondition::AllTerminated);
        assert!(report.explored());
        assert!(report.all_terminated);
        // Theorem 3: termination within 3N - 6 rounds (plus the terminating
        // decision round itself).
        let deadline = 3 * n as u64 - 6 + 1;
        assert!(report.last_termination().unwrap() <= deadline);
        sim.trace().unwrap().check_invariants(n).unwrap();
    }

    #[test]
    fn a_single_agent_never_explores_against_its_blocker() {
        let n = 6;
        let mut sim = fsync_sim(
            n,
            &[2],
            vec![Box::new(LoneWalker::new(3))],
            Box::new(BlockAgent::new(AgentId::new(0))),
        );
        let report = sim.run(500, StopCondition::Explored);
        assert!(!report.explored());
        assert_eq!(report.visited_count, 1);
        assert_eq!(report.total_moves, 0);
    }

    #[test]
    fn unconscious_agents_explore_despite_prevent_meeting() {
        let n = 9;
        let mut sim = fsync_sim(
            n,
            &[0, 4],
            vec![Box::new(Unconscious::new()), Box::new(Unconscious::new())],
            Box::new(PreventMeeting),
        );
        let report = sim.run(40 * n as u64, StopCondition::Explored);
        assert!(report.explored(), "Theorem 5: exploration completes in O(n) rounds");
        assert!(!report.all_terminated, "unconscious exploration never terminates");
    }

    #[test]
    fn port_mutual_exclusion_lets_only_one_agent_through() {
        // Two agents on the same node moving the same way: one acquires the
        // port, the other reports a failed acquisition (Theorem 3's argument
        // for agents starting on the same node).
        let n = 5;
        let mut sim = fsync_sim(
            n,
            &[0, 0],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        assert!(sim.step());
        let record = &sim.trace().unwrap().rounds()[0];
        let outcomes: Vec<PriorOutcome> = record.agents.iter().map(|a| a.outcome).collect();
        assert!(outcomes.contains(&PriorOutcome::Moved));
        assert!(outcomes.contains(&PriorOutcome::PortAcquisitionFailed));
        sim.trace().unwrap().check_invariants(n).unwrap();
    }

    #[test]
    fn ssync_round_robin_with_pt_transport_carries_sleepers() {
        use crate::adversary::FromSchedule;
        use dynring_graph::ScheduleBuilder;
        // One PT agent walking left (CCW→CW depending on handedness) gets
        // blocked, falls asleep on the port, and is carried across when the
        // edge reappears while it is still asleep.
        let ring = RingTopology::new(6).unwrap();
        let schedule = ScheduleBuilder::new(&ring)
            .remove_for(dynring_graph::EdgeId::new(5), 2)
            .all_present_for(10)
            .build();
        let mut sim = Simulation::builder(ring)
            .synchrony(SynchronyModel::Ssync(TransportModel::PassiveTransport))
            .agent(NodeId::new(0), Handedness::LeftIsCcw, Box::new(PtBoundChirality::new(6)))
            .agent(NodeId::new(3), Handedness::LeftIsCcw, Box::new(PtBoundChirality::new(6)))
            .activation(Box::new(RoundRobinSingle::new()))
            .edges(Box::new(FromSchedule::new(schedule)))
            .record_trace(true)
            .build()
            .unwrap();
        let report = sim.run(400, StopCondition::ExploredAndPartialTermination);
        assert!(report.explored());
        assert!(report.partially_terminated(), "Theorem 12: at least one agent terminates");
        sim.trace().unwrap().check_invariants(6).unwrap();
    }

    #[test]
    fn report_accessors_are_consistent() {
        let n = 6;
        let mut sim = fsync_sim(
            n,
            &[0, 2],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        let report = sim.run(100, StopCondition::AllTerminated);
        assert_eq!(report.ring_size, n);
        assert_eq!(report.moves_per_agent.len(), 2);
        assert_eq!(report.termination_rounds.len(), 2);
        assert!(report.first_termination().is_some());
        assert!(report.last_termination().unwrap() >= report.first_termination().unwrap());
        assert_eq!(
            report.total_moves,
            report.moves_per_agent.iter().sum::<u64>()
        );
    }

    #[test]
    fn peek_exposes_predictions_without_advancing() {
        let n = 5;
        let sim = fsync_sim(
            n,
            &[0, 2],
            vec![Box::new(KnownBound::new(n)), Box::new(KnownBound::new(n))],
            Box::new(NoRemoval),
        );
        let view = sim.peek();
        assert_eq!(view.round, 1);
        assert_eq!(view.agents.len(), 2);
        assert!(view.agents.iter().all(|a| a.predicted.is_move()));
        assert_eq!(sim.round(), 0);
        assert!(sim.validate_edge_choice(Some(EdgeId::new(9))).is_err());
        assert!(sim.validate_edge_choice(Some(EdgeId::new(2))).is_ok());
        assert!(sim.validate_edge_choice(None).is_ok());
    }
}
