//! ASCII rendering of rings, rounds and traces.
//!
//! Used by the examples to show what a run looked like, in the spirit of the
//! schedule drawings of Figures 2, 15 and 16 of the paper.

use crate::trace::{RoundRecord, Trace};
use dynring_graph::{GlobalDirection, NodeId, RingTopology};

/// Renders one round as a single line: each node is a cell, `*` marks the
/// landmark, letters mark agents (uppercase = in the node, lowercase = on a
/// port), and `x` marks the missing edge.
#[must_use]
pub fn render_round(ring: &RingTopology, record: &RoundRecord) -> String {
    let n = ring.size();
    let mut cells: Vec<String> = (0..n)
        .map(|i| {
            let node = NodeId::new(i);
            let mut cell = String::new();
            if ring.is_landmark(node) {
                cell.push('*');
            }
            for agent in &record.agents {
                if agent.node_after == node {
                    let letter = (b'A' + (agent.id.index() % 26) as u8) as char;
                    if agent.held_port_after.is_some() {
                        cell.push(letter.to_ascii_lowercase());
                    } else {
                        cell.push(letter);
                    }
                }
            }
            if cell.is_empty() {
                cell.push('.');
            }
            cell
        })
        .collect();

    // Pad cells to equal width for alignment.
    let width = cells.iter().map(String::len).max().unwrap_or(1);
    for cell in &mut cells {
        while cell.len() < width {
            cell.push(' ');
        }
    }

    let mut line = format!("r{:>4} ", record.round);
    for (i, cell) in cells.iter().enumerate() {
        line.push('[');
        line.push_str(cell);
        line.push(']');
        let edge_missing = record.missing_edge.is_some_and(|e| e.index() == i);
        line.push(if edge_missing { 'x' } else { '-' });
    }
    line.push_str(&format!(" visited={}", record.visited_count));
    line
}

/// Renders a whole trace, one line per round (optionally subsampled to at
/// most `max_lines` lines).
#[must_use]
pub fn render_trace(ring: &RingTopology, trace: &Trace, max_lines: usize) -> String {
    if trace.is_empty() {
        return String::from("(empty trace)");
    }
    let stride = (trace.len() / max_lines.max(1)).max(1);
    let mut out = String::new();
    for (i, record) in trace.rounds().enumerate() {
        if i % stride == 0 || i + 1 == trace.len() {
            out.push_str(&render_round(ring, &record));
            out.push('\n');
        }
    }
    out
}

/// A compact description of an agent's journey: the sequence of nodes visited
/// (with repeats collapsed).
#[must_use]
pub fn render_journey(trace: &Trace, agent_index: usize) -> String {
    let mut journey: Vec<NodeId> = Vec::new();
    for record in trace.rounds() {
        if let Some(agent) = record.agents.get(agent_index) {
            if journey.last() != Some(&agent.node_after) {
                journey.push(agent.node_after);
            }
        }
    }
    journey.iter().map(ToString::to_string).collect::<Vec<_>>().join(" → ")
}

/// Human-readable label for a direction of travel (used in reports).
#[must_use]
pub fn direction_label(dir: GlobalDirection) -> &'static str {
    match dir {
        GlobalDirection::Ccw => "counter-clockwise",
        GlobalDirection::Cw => "clockwise",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AgentRoundRecord;
    use dynring_graph::{AgentId, EdgeId};
    use dynring_model::PriorOutcome;

    fn sample_trace() -> (RingTopology, Trace) {
        let ring = RingTopology::with_landmark(5, NodeId::new(0)).unwrap();
        let mut trace = Trace::new();
        trace.push(RoundRecord {
            round: 1,
            missing_edge: Some(EdgeId::new(2)),
            active: vec![AgentId::new(0), AgentId::new(1)],
            agents: vec![
                AgentRoundRecord {
                    id: AgentId::new(0),
                    active: true,
                    node_before: NodeId::new(0),
                    node_after: NodeId::new(1),
                    held_port_after: None,
                    decision: None,
                    outcome: PriorOutcome::Moved,
                    terminated: false,
                    state_label: String::new(),
                },
                AgentRoundRecord {
                    id: AgentId::new(1),
                    active: true,
                    node_before: NodeId::new(3),
                    node_after: NodeId::new(3),
                    held_port_after: Some(GlobalDirection::Ccw),
                    decision: None,
                    outcome: PriorOutcome::BlockedOnPort,
                    terminated: false,
                    state_label: String::new(),
                },
            ],
            visited_count: 3,
        });
        (ring, trace)
    }

    #[test]
    fn round_rendering_contains_agents_landmark_and_missing_edge() {
        let (ring, trace) = sample_trace();
        let line = render_round(&ring, &trace.round_at(0).unwrap());
        assert!(line.contains('A'), "agent 0 in a node: {line}");
        assert!(line.contains('b'), "agent 1 waiting on a port: {line}");
        assert!(line.contains('*'), "landmark marker: {line}");
        assert!(line.contains('x'), "missing edge marker: {line}");
        assert!(line.contains("visited=3"));
    }

    #[test]
    fn trace_rendering_emits_one_line_per_round() {
        let (ring, trace) = sample_trace();
        let text = render_trace(&ring, &trace, 10);
        assert_eq!(text.lines().count(), 1);
        assert_eq!(render_trace(&ring, &Trace::new(), 10), "(empty trace)");
    }

    #[test]
    fn journey_collapses_repeats() {
        let (_, trace) = sample_trace();
        assert_eq!(render_journey(&trace, 0), "v1");
        assert_eq!(render_journey(&trace, 1), "v3");
    }

    #[test]
    fn direction_labels() {
        assert_eq!(direction_label(GlobalDirection::Ccw), "counter-clockwise");
        assert_eq!(direction_label(GlobalDirection::Cw), "clockwise");
    }
}
