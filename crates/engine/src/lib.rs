//! Round engine for live exploration of dynamic rings.
//!
//! This crate executes the Look–Compute–Move model of Section 2 of
//! *Live Exploration of Dynamic Rings* against pluggable adversaries:
//!
//! * [`world`] — the "god view": where each agent stands, which ports are
//!   held, which nodes have been visited — plus [`world::AgentProgram`],
//!   the two-representation agent runtime (statically dispatched
//!   [`CatalogProtocol`](dynring_core::CatalogProtocol) fast path for
//!   catalogue teams, `Box<dyn Protocol>` escape hatch for user-defined
//!   protocols; see `docs/ARCHITECTURE.md`, "The dispatch story");
//! * [`scheduler`] — activation policies: the FSYNC scheduler, fair and
//!   adversarial SSYNC schedulers, and the ET-fairness wrapper;
//! * [`adversary`] — edge-removal policies: benign, random, scripted
//!   (fixed [`EdgeSchedule`](dynring_graph::EdgeSchedule)s such as the
//!   worst-case schedule of Figure 2) and the proof adversaries
//!   (Observations 1–2, Theorems 9, 10, 13, 15, 19);
//! * [`sim`] — the round loop itself, with port mutual exclusion, passive
//!   transport, metrics and invariant checking;
//! * [`sim_batch`] — batched lockstep execution: [`sim_batch::SimBatch`]
//!   steps B same-shape runs per instruction stream through the same round
//!   code as [`sim::Simulation`], harvesting byte-identical reports at
//!   multi-run sweep speed;
//! * [`checkpoint`] — branchable run state: checkpoint/restore of a live
//!   simulation plus canonicalised configuration keys, the engine half of
//!   the analysis-side model checker;
//! * [`trace`] — per-round records of everything that happened, for replay,
//!   rendering and assertions in tests.
//!
//! # Quick example
//!
//! Catalogue agents ride the enum fast path via
//! [`SimulationBuilder::agent_program`](sim::SimulationBuilder::agent_program);
//! `agent` with a `Box<dyn Protocol>` is the equivalent escape hatch.
//!
//! ```
//! use dynring_core::Algorithm;
//! use dynring_engine::adversary::NoRemoval;
//! use dynring_engine::scheduler::FullActivation;
//! use dynring_engine::sim::{Simulation, StopCondition};
//! use dynring_graph::{Handedness, NodeId, RingTopology};
//! use dynring_model::SynchronyModel;
//!
//! let alg = Algorithm::KnownBound { upper_bound: 8 };
//! let ring = RingTopology::new(8).unwrap();
//! let mut sim = Simulation::builder(ring)
//!     .synchrony(SynchronyModel::Fsync)
//!     .agent_program(NodeId::new(0), Handedness::LeftIsCcw, alg.instantiate_enum())
//!     .agent_program(NodeId::new(3), Handedness::LeftIsCcw, alg.instantiate_enum())
//!     .activation(Box::new(FullActivation))
//!     .edges(Box::new(NoRemoval))
//!     .build()
//!     .unwrap();
//! let report = sim.run(100, StopCondition::AllTerminated);
//! assert!(report.explored());
//! assert!(report.all_terminated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod checkpoint;
pub mod error;
pub mod render;
pub mod scheduler;
pub mod sim;
pub mod sim_batch;
pub mod trace;
pub mod world;

pub use adversary::EdgePolicy;
pub use checkpoint::{KeyScratch, SimCheckpoint};
pub use error::EngineError;
pub use scheduler::ActivationPolicy;
pub use sim::{AgentSpec, RunReport, RunSpec, Simulation, SimulationBuilder, StopCondition};
pub use sim_batch::{BatchLane, SimBatch};
pub use trace::{RoundRecord, Trace};
pub use world::{AgentProgram, AgentView, PredictedAction, RoundView};
