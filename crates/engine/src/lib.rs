//! Round engine for live exploration of dynamic rings.
//!
//! This crate executes the Look–Compute–Move model of Section 2 of
//! *Live Exploration of Dynamic Rings* against pluggable adversaries:
//!
//! * [`world`] — the "god view": where each agent stands, which ports are
//!   held, which nodes have been visited;
//! * [`scheduler`] — activation policies: the FSYNC scheduler, fair and
//!   adversarial SSYNC schedulers, and the ET-fairness wrapper;
//! * [`adversary`] — edge-removal policies: benign, random, scripted
//!   (fixed [`EdgeSchedule`](dynring_graph::EdgeSchedule)s such as the
//!   worst-case schedule of Figure 2) and the proof adversaries
//!   (Observations 1–2, Theorems 9, 10, 13, 15, 19);
//! * [`sim`] — the round loop itself, with port mutual exclusion, passive
//!   transport, metrics and invariant checking;
//! * [`trace`] — per-round records of everything that happened, for replay,
//!   rendering and assertions in tests.
//!
//! # Quick example
//!
//! ```
//! use dynring_core::fsync::KnownBound;
//! use dynring_engine::adversary::NoRemoval;
//! use dynring_engine::scheduler::FullActivation;
//! use dynring_engine::sim::{Simulation, StopCondition};
//! use dynring_graph::{Handedness, NodeId, RingTopology};
//! use dynring_model::SynchronyModel;
//!
//! let ring = RingTopology::new(8).unwrap();
//! let mut sim = Simulation::builder(ring)
//!     .synchrony(SynchronyModel::Fsync)
//!     .agent(NodeId::new(0), Handedness::LeftIsCcw, Box::new(KnownBound::new(8)))
//!     .agent(NodeId::new(3), Handedness::LeftIsCcw, Box::new(KnownBound::new(8)))
//!     .activation(Box::new(FullActivation))
//!     .edges(Box::new(NoRemoval))
//!     .build()
//!     .unwrap();
//! let report = sim.run(100, StopCondition::AllTerminated);
//! assert!(report.explored());
//! assert!(report.all_terminated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod error;
pub mod render;
pub mod scheduler;
pub mod sim;
pub mod trace;
pub mod world;

pub use adversary::EdgePolicy;
pub use error::EngineError;
pub use scheduler::ActivationPolicy;
pub use sim::{RunReport, Simulation, SimulationBuilder, StopCondition};
pub use trace::{RoundRecord, Trace};
pub use world::{AgentView, PredictedAction, RoundView};
