//! The simulator's "god view" of the ring and the agents.
//!
//! Nothing in this module is visible to the protocols; they only ever receive
//! [`dynring_model::Snapshot`]s built from it. Adversaries, on the
//! other hand, receive the full [`RoundView`], including a prediction of what
//! every agent would do if activated — this is legitimate because the
//! protocols are deterministic, so an omniscient adversary could compute the
//! same prediction by simulation, exactly as the adversaries in the paper's
//! impossibility proofs do.
//!
//! Agent state is laid out as a **struct of arrays** (`AgentSoA`): the
//! fields read by the per-round hot loops — the Look snapshot's occupancy
//! pass and the scheduler's activation scans — are dense parallel vectors
//! indexed by agent, while cold state (the agent program, per-agent visit
//! maps, statistics) lives in separate arrays the hot passes never touch.
//! Each program is an [`AgentProgram`]: a statically dispatched
//! [`CatalogProtocol`] for the paper's algorithms (zero virtual calls in a
//! homogeneous team's Compute dispatch) or a `Box<dyn Protocol>` escape
//! hatch for user-defined ones. Decision predictions reuse per-agent probe
//! instances from a private probe pool (an in-place state copy per round —
//! a variant-matching `clone_from` on the enum arm, never an `as_any`
//! downcast) instead of boxing a fresh clone, so the omniscient-adversary
//! path is allocation-free in the steady state too.

use dynring_core::CatalogProtocol;
use dynring_graph::{AgentId, EdgeId, GlobalDirection, Handedness, NodeId, RingTopology};
use dynring_model::{
    Decision, LocalDirection, LocalPosition, NodeOccupancy, PriorOutcome, Protocol, Snapshot,
    TerminationKind,
};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// The executable program of one agent: the engine's two-representation
/// dispatch story.
///
/// * [`AgentProgram::Catalog`] — the **enum fast path**: a
///   [`CatalogProtocol`] whose `decide` resolves by a static `match` the
///   compiler inlines, so a homogeneous catalogue team (the common case in
///   every sweep and bench) runs Compute with **zero virtual calls**, and
///   prediction probes refresh through a variant-matching
///   [`Clone::clone_from`] instead of an `as_any` downcast.
/// * [`AgentProgram::Boxed`] — the **extension escape hatch**: any
///   user-defined `Box<dyn Protocol>`, dispatched virtually exactly as
///   before the enum runtime existed.
///
/// Both representations coexist in one team (see
/// [`SimulationBuilder::agent_program`](crate::sim::SimulationBuilder::agent_program))
/// and are observably identical for catalogue algorithms
/// (`tests/dispatch_equivalence.rs`). `docs/ARCHITECTURE.md` tells the full
/// story.
// The size asymmetry is deliberate: storing the catalogue state machine
// inline (~260 bytes) keeps Compute reads out of the heap entirely, and the
// per-agent cost is paid once per team, not per round.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AgentProgram {
    /// A catalogue protocol on the statically dispatched fast path.
    Catalog(CatalogProtocol),
    /// A type-erased protocol on the virtual-dispatch escape hatch.
    Boxed(Box<dyn Protocol>),
}

impl From<CatalogProtocol> for AgentProgram {
    fn from(protocol: CatalogProtocol) -> Self {
        AgentProgram::Catalog(protocol)
    }
}

impl From<Box<dyn Protocol>> for AgentProgram {
    fn from(protocol: Box<dyn Protocol>) -> Self {
        AgentProgram::Boxed(protocol)
    }
}

impl AgentProgram {
    /// One **Compute** step (see [`Protocol::decide`]). On the catalogue arm
    /// this is a static match into the concrete state machine; only the
    /// boxed arm pays a virtual call.
    #[inline]
    pub fn decide(&mut self, snapshot: &Snapshot) -> Decision {
        match self {
            AgentProgram::Catalog(p) => p.decide(snapshot),
            AgentProgram::Boxed(p) => p.decide(snapshot),
        }
    }

    /// The wrapped protocol's name (see [`Protocol::name`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AgentProgram::Catalog(p) => p.name(),
            AgentProgram::Boxed(p) => p.name(),
        }
    }

    /// The wrapped protocol's termination discipline.
    #[must_use]
    pub fn termination_kind(&self) -> TerminationKind {
        match self {
            AgentProgram::Catalog(p) => p.termination_kind(),
            AgentProgram::Boxed(p) => p.termination_kind(),
        }
    }

    /// Whether the wrapped protocol has entered its terminal state.
    #[must_use]
    pub fn has_terminated(&self) -> bool {
        match self {
            AgentProgram::Catalog(p) => p.has_terminated(),
            AgentProgram::Boxed(p) => p.has_terminated(),
        }
    }

    /// The wrapped protocol's state label for traces.
    #[must_use]
    pub fn state_label(&self) -> String {
        match self {
            AgentProgram::Catalog(p) => p.state_label(),
            AgentProgram::Boxed(p) => p.state_label(),
        }
    }

    /// Appends an injective binary encoding of the program's full state to
    /// `out`, for canonical-key construction (see
    /// [`Protocol::write_state_key`]). A leading arm tag separates the two
    /// representations, and a second discriminator byte records whether the
    /// protocol supplied a packed encoding (`1`) or the encoder fell back to
    /// the length-prefixed `Debug` string (`0`, allocation accepted on this
    /// escape hatch — the format is injective because `Debug` derives print
    /// every field).
    pub fn write_state_key(&self, out: &mut Vec<u8>) {
        let arm = match self {
            AgentProgram::Catalog(_) => 0u8,
            AgentProgram::Boxed(_) => 1u8,
        };
        out.push(arm);
        let tag_at = out.len();
        out.push(1);
        let packed = match self {
            AgentProgram::Catalog(p) => p.write_state_key(out),
            AgentProgram::Boxed(p) => p.write_state_key(out),
        };
        if !packed {
            out.truncate(tag_at + 1);
            out[tag_at] = 0;
            let label = match self {
                AgentProgram::Catalog(p) => format!("{p:?}"),
                AgentProgram::Boxed(p) => format!("{p:?}"),
            };
            dynring_model::statekey::push_bytes(out, label.as_bytes());
        }
    }

    /// An owned copy of the program with its full internal state.
    #[must_use]
    pub fn clone_program(&self) -> AgentProgram {
        match self {
            AgentProgram::Catalog(p) => AgentProgram::Catalog(p.clone()),
            AgentProgram::Boxed(p) => AgentProgram::Boxed(p.clone_box()),
        }
    }

    /// Copies `src`'s state into `self` in place, returning whether the copy
    /// happened. Catalogue programs copy through the enum's variant-matching
    /// `clone_from` (no downcast, allocation-free for same-variant pairs);
    /// boxed programs go through [`Protocol::clone_from_box`]. A
    /// representation mismatch is refused, and the caller falls back to
    /// [`AgentProgram::clone_program`].
    pub fn clone_from_program(&mut self, src: &AgentProgram) -> bool {
        match (self, src) {
            (AgentProgram::Catalog(dst), AgentProgram::Catalog(src)) => {
                dst.clone_from(src);
                true
            }
            (AgentProgram::Boxed(dst), AgentProgram::Boxed(src)) => {
                dst.clone_from_box(src.as_ref())
            }
            _ => false,
        }
    }
}

/// Converts a local direction into the global frame of an agent with the
/// given orientation.
pub(crate) fn to_global(handedness: Handedness, dir: LocalDirection) -> GlobalDirection {
    match dir {
        LocalDirection::Left => handedness.local_left(),
        LocalDirection::Right => handedness.local_right(),
    }
}

/// Converts a global direction into the local frame of an agent with the
/// given orientation.
pub(crate) fn to_local(handedness: Handedness, dir: GlobalDirection) -> LocalDirection {
    if dir == handedness.local_left() {
        LocalDirection::Left
    } else {
        LocalDirection::Right
    }
}

/// Mutable per-agent runtime state owned by the simulation, in
/// struct-of-arrays layout. All vectors are parallel and indexed by agent
/// (agents are stored in id order, so the index *is* the [`AgentId`]).
#[derive(Debug, Default)]
pub(crate) struct AgentSoA {
    /// Hot: the node each agent currently occupies.
    pub node: Vec<NodeId>,
    /// Hot: the port (by global direction) each agent holds, if any.
    pub held_port: Vec<Option<GlobalDirection>>,
    /// Hot: whether each agent has terminated.
    pub terminated: Vec<bool>,
    /// Hot: each agent's private orientation.
    pub handedness: Vec<Handedness>,
    /// Hot: the outcome each agent will be shown at its next Look.
    pub prior: Vec<PriorOutcome>,
    /// Cold: the program (Compute state machine) of each agent — the
    /// catalogue enum fast path or the boxed escape hatch.
    pub program: Vec<AgentProgram>,
    /// Cold: successful traversals per agent.
    pub moves: Vec<u64>,
    /// Cold: activations per agent.
    pub activations: Vec<u64>,
    /// Cold: the last round each agent was active (0 = never).
    pub last_active_round: Vec<u64>,
    /// Cold: consecutive rounds spent asleep while holding a port (ET
    /// fairness accounting).
    pub asleep_on_port: Vec<u64>,
    /// Cold: per-agent termination rounds.
    pub terminated_at: Vec<Option<u64>>,
    /// Cold: whether the engine must poll `Protocol::has_terminated` after
    /// each decision. Protocols declaring [`TerminationKind::Unconscious`]
    /// promise they never enter a terminal state, so the per-round virtual
    /// call is skipped for them.
    pub poll_termination: Vec<bool>,
    /// Cold: per-agent visit maps, flattened row-major
    /// (`agent * ring_size + node`).
    pub visited: Vec<bool>,
    /// Cold: number of `true` entries in each agent's row of `visited`,
    /// maintained incrementally by the resolution phase so reports read the
    /// count in O(1) instead of re-scanning the row.
    pub visited_count: Vec<usize>,
    /// Ring size (row stride of `visited`).
    pub ring_size: usize,
    /// Number of agents standing on each node (index = node id), maintained
    /// incrementally on every move/transport.
    pub node_population: Vec<u32>,
    /// Number of nodes holding two or more agents. While this is zero the
    /// Look occupancy of every agent is trivially empty, so
    /// [`build_snapshot`] skips its scan over the team entirely — the common
    /// case under a meeting-preventing adversary, and the difference between
    /// O(k) and O(k²) Look work per round for large teams.
    pub crowded_nodes: usize,
}

impl AgentSoA {
    /// An empty team on a ring of the given size.
    pub(crate) fn new(ring_size: usize) -> Self {
        AgentSoA {
            ring_size,
            node_population: vec![0; ring_size],
            ..AgentSoA::default()
        }
    }

    /// Appends an agent; its start node is marked visited in its private map.
    pub(crate) fn push(&mut self, node: NodeId, handedness: Handedness, program: AgentProgram) {
        self.node.push(node);
        self.held_port.push(None);
        self.terminated.push(false);
        self.handedness.push(handedness);
        self.prior.push(PriorOutcome::Idle);
        self.poll_termination
            .push(program.termination_kind() != TerminationKind::Unconscious);
        self.program.push(program);
        self.moves.push(0);
        self.activations.push(0);
        self.last_active_round.push(0);
        self.asleep_on_port.push(0);
        self.terminated_at.push(None);
        let start = self.visited.len();
        self.visited.resize(start + self.ring_size, false);
        self.visited[start + node.index()] = true;
        self.visited_count.push(1);
        self.node_population[node.index()] += 1;
        if self.node_population[node.index()] == 2 {
            self.crowded_nodes += 1;
        }
    }

    /// Re-initialises the whole team in place from per-agent templates: every
    /// parallel vector is cleared and refilled (capacity reused — no
    /// allocation when the shape matches a previous run, and vector growth is
    /// the only allocation when it does not), and each agent's program copies
    /// the template's pristine state through
    /// [`AgentProgram::clone_from_program`] (falling back to a fresh program
    /// clone on a representation mismatch). This is the team half of
    /// [`Simulation::recycle`](crate::sim::Simulation::recycle).
    pub(crate) fn reset_from<'a>(
        &mut self,
        ring_size: usize,
        specs: impl ExactSizeIterator<Item = (NodeId, Handedness, &'a AgentProgram)>,
    ) {
        let count = specs.len();
        self.ring_size = ring_size;
        self.node.clear();
        self.handedness.clear();
        self.held_port.clear();
        self.held_port.resize(count, None);
        self.terminated.clear();
        self.terminated.resize(count, false);
        self.prior.clear();
        self.prior.resize(count, PriorOutcome::Idle);
        self.moves.clear();
        self.moves.resize(count, 0);
        self.activations.clear();
        self.activations.resize(count, 0);
        self.last_active_round.clear();
        self.last_active_round.resize(count, 0);
        self.asleep_on_port.clear();
        self.asleep_on_port.resize(count, 0);
        self.terminated_at.clear();
        self.terminated_at.resize(count, None);
        self.poll_termination.clear();
        self.program.truncate(count);
        self.visited.clear();
        self.visited.resize(count * ring_size, false);
        self.visited_count.clear();
        self.visited_count.resize(count, 1);
        self.node_population.clear();
        self.node_population.resize(ring_size, 0);
        self.crowded_nodes = 0;
        for (index, (node, handedness, template)) in specs.enumerate() {
            debug_assert!(node.index() < ring_size, "RunSpec starts are validated");
            self.node.push(node);
            self.handedness.push(handedness);
            self.poll_termination
                .push(template.termination_kind() != TerminationKind::Unconscious);
            if let Some(live) = self.program.get_mut(index) {
                if !live.clone_from_program(template) {
                    *live = template.clone_program();
                }
            } else {
                self.program.push(template.clone_program());
            }
            self.visited[index * ring_size + node.index()] = true;
            self.node_population[node.index()] += 1;
            if self.node_population[node.index()] == 2 {
                self.crowded_nodes += 1;
            }
        }
    }

    /// Records that an agent left `from` for `to`, keeping the population
    /// index and the crowded-node counter in sync.
    #[inline]
    pub(crate) fn relocate(
        node_population: &mut [u32],
        crowded_nodes: &mut usize,
        from: NodeId,
        to: NodeId,
    ) {
        node_population[from.index()] -= 1;
        if node_population[from.index()] == 1 {
            *crowded_nodes -= 1;
        }
        node_population[to.index()] += 1;
        if node_population[to.index()] == 2 {
            *crowded_nodes += 1;
        }
    }

    /// Number of agents.
    pub(crate) fn len(&self) -> usize {
        self.node.len()
    }

    /// The number of distinct nodes agent `index` has visited (maintained
    /// incrementally; equals the number of `true` entries in the agent's
    /// row of the visit map).
    pub(crate) fn visited_count(&self, index: usize) -> usize {
        debug_assert_eq!(
            self.visited_count[index],
            self.visited[index * self.ring_size..(index + 1) * self.ring_size]
                .iter()
                .filter(|v| **v)
                .count(),
            "incremental per-agent visit counter out of sync"
        );
        self.visited_count[index]
    }

    /// Whether every agent has terminated (a straight pass over one dense
    /// bool slice).
    pub(crate) fn all_terminated(&self) -> bool {
        self.terminated.iter().all(|t| *t)
    }

    /// Splits the team into the immutable hot-state [`LaneRef`] plus the
    /// mutable program slice — the borrow shape shared by the solo round
    /// loop and the batched engine, so [`fill_round_fsync`] and friends run
    /// on exactly the same slices either way.
    #[inline(always)]
    pub(crate) fn lane_split(&mut self) -> (LaneRef<'_>, &mut [AgentProgram]) {
        (
            LaneRef {
                node: &self.node,
                held_port: &self.held_port,
                terminated: &self.terminated,
                handedness: &self.handedness,
                prior: &self.prior,
                last_active_round: &self.last_active_round,
                asleep_on_port: &self.asleep_on_port,
                moves: &self.moves,
                crowded_nodes: self.crowded_nodes,
            },
            &mut self.program,
        )
    }

    /// Immutable variant of [`AgentSoA::lane_split`].
    #[inline(always)]
    pub(crate) fn lane_ref(&self) -> (LaneRef<'_>, &[AgentProgram]) {
        (
            LaneRef {
                node: &self.node,
                held_port: &self.held_port,
                terminated: &self.terminated,
                handedness: &self.handedness,
                prior: &self.prior,
                last_active_round: &self.last_active_round,
                asleep_on_port: &self.asleep_on_port,
                moves: &self.moves,
                crowded_nodes: self.crowded_nodes,
            },
            &self.program,
        )
    }

    /// Borrows the team's complete mutable state as a [`LaneStateMut`] for
    /// the resolution phase, joined with the run-level visit map and
    /// liveness counters that live outside the SoA.
    #[inline(always)]
    pub(crate) fn lane_state_mut<'a>(
        &'a mut self,
        global_visited: &'a mut [bool],
        unvisited: &'a mut usize,
        alive: &'a mut usize,
    ) -> LaneStateMut<'a> {
        LaneStateMut {
            node: &mut self.node,
            held_port: &mut self.held_port,
            terminated: &mut self.terminated,
            handedness: &self.handedness,
            prior: &mut self.prior,
            program: &mut self.program,
            moves: &mut self.moves,
            activations: &mut self.activations,
            last_active_round: &mut self.last_active_round,
            asleep_on_port: &mut self.asleep_on_port,
            terminated_at: &mut self.terminated_at,
            poll_termination: &self.poll_termination,
            agent_visited: &mut self.visited,
            visited_count: &mut self.visited_count,
            ring_size: self.ring_size,
            node_population: &mut self.node_population,
            crowded_nodes: &mut self.crowded_nodes,
            global_visited,
            unvisited,
            alive,
        }
    }
}

/// Borrowed, storage-agnostic view of one run's hot agent state: parallel
/// slices indexed by agent. The solo [`Simulation`](crate::sim::Simulation)
/// derives it from its [`AgentSoA`]; the batched engine
/// ([`SimBatch`](crate::sim_batch::SimBatch)) derives it from one lane's
/// stride of its run-major flat arrays — both then run the **same** fill,
/// Look and resolution code, which is what makes the batched path
/// byte-identical by construction.
pub(crate) struct LaneRef<'a> {
    pub node: &'a [NodeId],
    pub held_port: &'a [Option<GlobalDirection>],
    pub terminated: &'a [bool],
    pub handedness: &'a [Handedness],
    pub prior: &'a [PriorOutcome],
    pub last_active_round: &'a [u64],
    pub asleep_on_port: &'a [u64],
    pub moves: &'a [u64],
    pub crowded_nodes: usize,
}

/// Mutable counterpart of [`LaneRef`] for the resolution phase: one run's
/// complete mutable state (agent slices plus the run-level visit map and
/// liveness counters), again shared between the solo and batched engines.
pub(crate) struct LaneStateMut<'a> {
    pub node: &'a mut [NodeId],
    pub held_port: &'a mut [Option<GlobalDirection>],
    pub terminated: &'a mut [bool],
    pub handedness: &'a [Handedness],
    pub prior: &'a mut [PriorOutcome],
    pub program: &'a mut [AgentProgram],
    pub moves: &'a mut [u64],
    pub activations: &'a mut [u64],
    pub last_active_round: &'a mut [u64],
    pub asleep_on_port: &'a mut [u64],
    pub terminated_at: &'a mut [Option<u64>],
    pub poll_termination: &'a [bool],
    pub agent_visited: &'a mut [bool],
    pub visited_count: &'a mut [usize],
    pub ring_size: usize,
    pub node_population: &'a mut [u32],
    pub crowded_nodes: &'a mut usize,
    pub global_visited: &'a mut [bool],
    pub unvisited: &'a mut usize,
    pub alive: &'a mut usize,
}

/// A pool of reusable protocol *probe* instances, one slot per agent.
///
/// Predicting an agent's decision requires dry-running its (deterministic)
/// protocol on the upcoming Look snapshot without touching the live instance.
/// Instead of boxing a fresh clone per agent per round, the pool refreshes a
/// persistent probe in place; only the first round per agent (or a boxed
/// protocol that does not support in-place copies) allocates.
///
/// The slots hold [`AgentProgram`]s, so the pool follows the engine's
/// two-representation dispatch story: a catalogue probe refreshes through
/// the enum's variant-matching `clone_from` — **no `as_any` downcast on any
/// prediction-fusion tier** — while a boxed probe goes through
/// [`Protocol::clone_from_box`] exactly as before.
#[derive(Debug, Default)]
pub(crate) struct ProbePool {
    slots: Vec<Option<AgentProgram>>,
}

impl ProbePool {
    /// Returns the probe for agent `index`, its state refreshed from `src`.
    pub(crate) fn refresh(&mut self, index: usize, src: &AgentProgram) -> &mut AgentProgram {
        if self.slots.len() <= index {
            self.slots.resize_with(index + 1, || None);
        }
        let slot = &mut self.slots[index];
        let reused = match slot {
            Some(probe) => probe.clone_from_program(src),
            None => false,
        };
        if !reused {
            *slot = Some(src.clone_program());
        }
        slot.as_mut().expect("slot was just filled")
    }

    /// Swaps agent `index`'s probe with `live` (see the round loop's
    /// *prediction fusion*: after the dry run the probe holds exactly the
    /// post-Compute state of the live protocol, so swapping it in replaces a
    /// second Look + Compute).
    pub(crate) fn swap(&mut self, index: usize, live: &mut AgentProgram) {
        let probe = self.slots[index].as_mut().expect("probe exists for predicted agents");
        std::mem::swap(probe, live);
    }
}

/// What an agent would do if it were activated in the current round, in the
/// global frame (visible to adversaries only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictedAction {
    /// The agent would try to cross `edge`, leaving its node in `direction`.
    Move {
        /// The edge it would traverse.
        edge: EdgeId,
        /// The global direction of the attempted move.
        direction: GlobalDirection,
    },
    /// The agent would do nothing this round.
    Stay,
    /// The agent would step back from its held port into the node.
    Retreat,
    /// The agent would enter its terminal state.
    Terminate,
}

impl PredictedAction {
    /// The edge the agent would cross, if it would move.
    #[must_use]
    pub const fn target_edge(&self) -> Option<EdgeId> {
        match self {
            PredictedAction::Move { edge, .. } => Some(*edge),
            _ => None,
        }
    }

    /// Whether the prediction is an attempted move.
    #[must_use]
    pub const fn is_move(&self) -> bool {
        matches!(self, PredictedAction::Move { .. })
    }
}

/// Adversary-visible information about one agent at the start of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentView {
    /// The agent's simulator identifier.
    pub id: AgentId,
    /// The node the agent currently occupies.
    pub node: NodeId,
    /// The port (global direction) it holds, if it is waiting on one.
    pub held_port: Option<GlobalDirection>,
    /// Whether the agent has terminated.
    pub terminated: bool,
    /// The agent's private orientation.
    pub handedness: Handedness,
    /// What the agent would do if activated this round.
    ///
    /// Predicting a decision requires dry-running the protocol, so the
    /// engine only computes this when one of the installed policies declares
    /// that it reads predictions (see
    /// [`EdgePolicy::needs_predictions`](crate::adversary::EdgePolicy::needs_predictions));
    /// otherwise live agents report [`PredictedAction::Stay`] here.
    pub predicted: PredictedAction,
    /// The last round in which the agent was active (0 = never).
    pub last_active_round: u64,
    /// Consecutive rounds spent asleep while holding a port.
    pub asleep_on_port: u64,
    /// Successful traversals so far.
    pub moves: u64,
}

/// Adversary-visible information about the whole system at the start of a
/// round.
///
/// Inside the round loop the agent views are borrowed from a scratch buffer
/// owned by the simulation (no per-round allocation); stand-alone views such
/// as [`Simulation::peek`](crate::sim::Simulation::peek) own their agents.
/// The [`Cow`] makes both representations share one type.
#[derive(Debug, Clone)]
pub struct RoundView<'a> {
    /// The round about to be played (1-based).
    pub round: u64,
    /// The static ring.
    pub ring: &'a RingTopology,
    /// One entry per agent (including terminated ones), ordered by id.
    pub agents: Cow<'a, [AgentView]>,
    /// Which nodes have been visited by at least one agent so far.
    pub visited: &'a [bool],
}

impl RoundView<'_> {
    /// The agents that have not terminated yet.
    pub fn alive(&self) -> impl Iterator<Item = &AgentView> {
        self.agents.iter().filter(|a| !a.terminated)
    }

    /// Number of nodes visited so far.
    #[must_use]
    pub fn visited_count(&self) -> usize {
        self.visited.iter().filter(|v| **v).count()
    }

    /// Whether every node has been visited.
    #[must_use]
    pub fn explored(&self) -> bool {
        self.visited.iter().all(|v| *v)
    }

    /// The view of a specific agent.
    #[must_use]
    pub fn agent(&self, id: AgentId) -> Option<&AgentView> {
        self.agents.iter().find(|a| a.id == id)
    }
}

/// Refills `views` (a scratch buffer owned by the simulation) with the
/// per-agent views of the upcoming round. The buffer's capacity is reused, so
/// after the first round this performs no allocation.
///
/// When `predict` is set (a policy running this round reads predictions) each
/// live agent's protocol is dry-run on its Look snapshot through a probe from
/// `probes`, and the raw [`Decision`] is stored in `predicted_decisions` so
/// the round loop can *fuse* the prediction with the actual Compute step: the
/// protocols are deterministic and the snapshot at Look time is identical, so
/// the dry run already produced both this round's decision and the
/// post-Compute state. (FSYNC rounds use [`fill_round_fsync`] instead,
/// which skips the probes entirely.)
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn fill_agent_views(
    views: &mut Vec<AgentView>,
    predicted_decisions: &mut Vec<Option<Decision>>,
    probes: &mut ProbePool,
    ring: &RingTopology,
    agents: &AgentSoA,
    round: u64,
    fsync: bool,
    predict: bool,
) {
    let (lane, programs) = agents.lane_ref();
    fill_agent_views_lane(
        views,
        predicted_decisions,
        probes,
        ring,
        &lane,
        programs,
        round,
        fsync,
        predict,
    );
}

/// Slice-based body of [`fill_agent_views`], shared with the batched engine
/// (which passes one lane's stride of its run-major arrays).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn fill_agent_views_lane(
    views: &mut Vec<AgentView>,
    predicted_decisions: &mut Vec<Option<Decision>>,
    probes: &mut ProbePool,
    ring: &RingTopology,
    lane: &LaneRef<'_>,
    programs: &[AgentProgram],
    round: u64,
    fsync: bool,
    predict: bool,
) {
    predicted_decisions.clear();
    predicted_decisions.resize(lane.node.len(), None);
    if predict {
        for (index, slot) in predicted_decisions.iter_mut().enumerate() {
            if lane.terminated[index] {
                continue;
            }
            let snapshot = build_snapshot_lane(ring, lane, index, round, fsync);
            let probe = probes.refresh(index, &programs[index]);
            *slot = Some(probe.decide(&snapshot));
        }
    }
    fill_views_from_decisions(views, ring, lane, predicted_decisions, predict);
}

/// One-pass start of an FSYNC round: refills the agent views, the active set
/// (every live agent — full synchrony ignores the activation policy), the
/// activation mask, the claimed-port list (held ports only change during
/// resolution, so the fill-time snapshot is the start-of-round truth) and,
/// when `predict` is set, the fused predictions, all in a single traversal
/// of the hot slices. Under FSYNC the prediction dry run
/// *is* this round's Compute (see [`fill_agent_views_fsync_predict`]), so the
/// recorded decisions are reused verbatim by the resolution phase.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn fill_round_fsync(
    views: &mut Vec<AgentView>,
    predicted_decisions: &mut Vec<Option<Decision>>,
    active: &mut Vec<AgentId>,
    active_mask: &mut Vec<bool>,
    claimed: &mut Vec<(NodeId, GlobalDirection)>,
    ring: &RingTopology,
    agents: &mut AgentSoA,
    round: u64,
    predict: bool,
) {
    let (lane, programs) = agents.lane_split();
    fill_round_fsync_lane(
        views,
        predicted_decisions,
        active,
        active_mask,
        claimed,
        ring,
        &lane,
        programs,
        round,
        predict,
    );
}

/// Slice-based body of [`fill_round_fsync`], shared with the batched engine
/// (which passes one lane's stride of its run-major arrays).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn fill_round_fsync_lane(
    views: &mut Vec<AgentView>,
    predicted_decisions: &mut Vec<Option<Decision>>,
    active: &mut Vec<AgentId>,
    active_mask: &mut Vec<bool>,
    claimed: &mut Vec<(NodeId, GlobalDirection)>,
    ring: &RingTopology,
    lane: &LaneRef<'_>,
    programs: &mut [AgentProgram],
    round: u64,
    predict: bool,
) {
    views.clear();
    active.clear();
    active_mask.clear();
    claimed.clear();
    let count = lane.node.len();
    predicted_decisions.clear();
    predicted_decisions.resize(count, None);
    for (index, predicted_slot) in predicted_decisions.iter_mut().enumerate().take(count) {
        let is_terminated = lane.terminated[index];
        let node = lane.node[index];
        let held_port = lane.held_port[index];
        let handedness = lane.handedness[index];
        active_mask.push(!is_terminated);
        if !is_terminated {
            active.push(AgentId::new(index));
        }
        if let Some(port) = held_port {
            claimed.push((node, port));
        }
        let predicted = if is_terminated {
            PredictedAction::Terminate
        } else if predict {
            let snapshot = build_snapshot_lane(ring, lane, index, round, true);
            let decision = programs[index].decide(&snapshot);
            *predicted_slot = Some(decision);
            predict_action(ring, node, handedness, decision)
        } else {
            PredictedAction::Stay
        };
        views.push(AgentView {
            id: AgentId::new(index),
            node,
            held_port,
            terminated: is_terminated,
            handedness,
            predicted,
            last_active_round: lane.last_active_round[index],
            asleep_on_port: lane.asleep_on_port[index],
            moves: lane.moves[index],
        });
    }
}

/// Shared second pass of the fill functions: one [`AgentView`] per agent from
/// the hot slices plus the already-computed decisions. The slices are
/// re-sliced to a common length up front so the indexing below is
/// bounds-check-free.
fn fill_views_from_decisions(
    views: &mut Vec<AgentView>,
    ring: &RingTopology,
    lane: &LaneRef<'_>,
    predicted_decisions: &[Option<Decision>],
    predict: bool,
) {
    views.clear();
    let count = lane.node.len();
    let node = &lane.node[..count];
    let held_port = &lane.held_port[..count];
    let terminated = &lane.terminated[..count];
    let handedness = &lane.handedness[..count];
    let last_active_round = &lane.last_active_round[..count];
    let asleep_on_port = &lane.asleep_on_port[..count];
    let moves = &lane.moves[..count];
    let predicted_decisions = &predicted_decisions[..count];
    for index in 0..count {
        let predicted = if terminated[index] {
            PredictedAction::Terminate
        } else if predict {
            let decision = predicted_decisions[index]
                .expect("every live agent carries a prediction on prediction rounds");
            predict_action(ring, node[index], handedness[index], decision)
        } else {
            PredictedAction::Stay
        };
        views.push(AgentView {
            id: AgentId::new(index),
            node: node[index],
            held_port: held_port[index],
            terminated: terminated[index],
            handedness: handedness[index],
            predicted,
            last_active_round: last_active_round[index],
            asleep_on_port: asleep_on_port[index],
            moves: moves[index],
        });
    }
}

/// Builds the **Look** snapshot of agent `observer` given the positions of
/// all agents (the paper's Look operation: own position, other agents at the
/// same node, landmark flag, own previous outcome). The occupancy loop is a
/// straight pass over the two dense hot slices of the [`AgentSoA`].
#[inline(always)]
pub(crate) fn build_snapshot(
    ring: &RingTopology,
    agents: &AgentSoA,
    observer: usize,
    round: u64,
    fsync: bool,
) -> Snapshot {
    let (lane, _) = agents.lane_ref();
    build_snapshot_lane(ring, &lane, observer, round, fsync)
}

/// Slice-based body of [`build_snapshot`], shared with the batched engine.
#[inline(always)]
pub(crate) fn build_snapshot_lane(
    ring: &RingTopology,
    lane: &LaneRef<'_>,
    observer: usize,
    round: u64,
    fsync: bool,
) -> Snapshot {
    let count = lane.node.len();
    let node = &lane.node[..count];
    let held_port = &lane.held_port[..count];
    let observer_node = node[observer];
    let observer_handedness = lane.handedness[observer];
    let mut occupancy = NodeOccupancy::default();
    // While no node holds two agents (tracked incrementally), every
    // observer's occupancy is trivially empty and the team scan is skipped.
    if lane.crowded_nodes > 0 {
        for index in 0..count {
            if index == observer || node[index] != observer_node {
                continue;
            }
            match held_port[index] {
                None => occupancy.in_node += 1,
                Some(gdir) => match to_local(observer_handedness, gdir) {
                    LocalDirection::Left => occupancy.on_left_port += 1,
                    LocalDirection::Right => occupancy.on_right_port += 1,
                },
            }
        }
    }
    let position = match lane.held_port[observer] {
        None => LocalPosition::InNode,
        Some(gdir) => LocalPosition::OnPort(to_local(observer_handedness, gdir)),
    };
    Snapshot {
        position,
        is_landmark: ring.is_landmark(observer_node),
        occupancy,
        prior: lane.prior[observer],
        round_hint: if fsync { Some(round) } else { None },
    }
}

/// Converts a protocol [`Decision`] of an agent standing at `node` with the
/// given orientation into the adversary-facing [`PredictedAction`].
pub(crate) fn predict_action(
    ring: &RingTopology,
    node: NodeId,
    handedness: Handedness,
    decision: Decision,
) -> PredictedAction {
    match decision {
        Decision::Move(ldir) => {
            let gdir = to_global(handedness, ldir);
            PredictedAction::Move { edge: ring.edge_towards(node, gdir), direction: gdir }
        }
        Decision::Stay => PredictedAction::Stay,
        Decision::Retreat => PredictedAction::Retreat,
        Decision::Terminate => PredictedAction::Terminate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::TerminationKind;

    #[derive(Debug, Clone)]
    struct GoLeft;
    impl Protocol for GoLeft {
        fn name(&self) -> &'static str {
            "go-left"
        }
        fn termination_kind(&self) -> TerminationKind {
            TerminationKind::Unconscious
        }
        fn decide(&mut self, _snapshot: &Snapshot) -> Decision {
            Decision::Move(LocalDirection::Left)
        }
        fn has_terminated(&self) -> bool {
            false
        }
        fn clone_box(&self) -> Box<dyn Protocol> {
            Box::new(self.clone())
        }
    }

    fn team(ring: &RingTopology, agents: &[(usize, Handedness)]) -> AgentSoA {
        let mut soa = AgentSoA::new(ring.size());
        for (node, handedness) in agents {
            soa.push(NodeId::new(*node), *handedness, AgentProgram::Boxed(Box::new(GoLeft)));
        }
        soa
    }

    #[test]
    fn local_global_conversion_roundtrips() {
        let ring = RingTopology::new(5).unwrap();
        for h in Handedness::both() {
            let soa = team(&ring, &[(0, h)]);
            for d in LocalDirection::both() {
                assert_eq!(to_local(h, to_global(soa.handedness[0], d)), d);
            }
            for g in GlobalDirection::both() {
                assert_eq!(to_global(soa.handedness[0], to_local(h, g)), g);
            }
        }
    }

    #[test]
    fn snapshot_sees_other_agents_in_the_observers_frame() {
        let ring = RingTopology::with_landmark(6, NodeId::new(2)).unwrap();
        let mut agents = team(
            &ring,
            &[
                (2, Handedness::LeftIsCcw),
                (2, Handedness::LeftIsCw),
                (3, Handedness::LeftIsCcw),
            ],
        );
        // Agent 1 is waiting on the CCW port of node 2.
        agents.held_port[1] = Some(GlobalDirection::Ccw);

        let snap0 = build_snapshot(&ring, &agents, 0, 7, true);
        // Observer 0 (left = CCW) sees agent 1 on its *left* port.
        assert_eq!(snap0.occupancy.on_left_port, 1);
        assert_eq!(snap0.occupancy.on_right_port, 0);
        assert_eq!(snap0.occupancy.in_node, 0);
        assert!(snap0.is_landmark);
        assert_eq!(snap0.round_hint, Some(7));
        assert_eq!(snap0.position, LocalPosition::InNode);

        // Observer 1 (left = CW) is itself on the CCW port, i.e. its right port.
        let snap1 = build_snapshot(&ring, &agents, 1, 7, false);
        assert_eq!(snap1.position, LocalPosition::OnPort(LocalDirection::Right));
        assert_eq!(snap1.occupancy.in_node, 1);
        assert_eq!(snap1.round_hint, None);

        // Agent 2 is alone on node 3.
        let snap2 = build_snapshot(&ring, &agents, 2, 7, true);
        assert_eq!(snap2.occupancy.total(), 0);
        assert!(!snap2.is_landmark);
    }

    #[test]
    fn predicted_action_maps_direction_and_edge() {
        let ring = RingTopology::new(6).unwrap();
        let p = predict_action(
            &ring,
            NodeId::new(0),
            Handedness::LeftIsCcw,
            Decision::Move(LocalDirection::Left),
        );
        assert_eq!(
            p,
            PredictedAction::Move { edge: EdgeId::new(0), direction: GlobalDirection::Ccw }
        );
        assert_eq!(p.target_edge(), Some(EdgeId::new(0)));
        assert!(p.is_move());
        let q = predict_action(
            &ring,
            NodeId::new(0),
            Handedness::LeftIsCw,
            Decision::Move(LocalDirection::Left),
        );
        assert_eq!(
            q,
            PredictedAction::Move { edge: EdgeId::new(5), direction: GlobalDirection::Cw }
        );
        assert_eq!(
            predict_action(&ring, NodeId::new(0), Handedness::LeftIsCcw, Decision::Stay),
            PredictedAction::Stay
        );
        assert!(!PredictedAction::Retreat.is_move());
        assert_eq!(PredictedAction::Terminate.target_edge(), None);
    }

    #[test]
    fn visited_count_starts_with_the_start_node() {
        let ring = RingTopology::new(4).unwrap();
        let soa = team(&ring, &[(3, Handedness::LeftIsCcw)]);
        assert_eq!(soa.visited_count(0), 1);
    }

    #[test]
    fn probe_pool_reuses_slots_and_survives_type_mismatches() {
        #[derive(Debug, Clone)]
        struct Stepper {
            steps: u64,
        }
        impl Protocol for Stepper {
            fn name(&self) -> &'static str {
                "stepper"
            }
            fn termination_kind(&self) -> TerminationKind {
                TerminationKind::Unconscious
            }
            fn decide(&mut self, _snapshot: &Snapshot) -> Decision {
                self.steps += 1;
                Decision::Stay
            }
            fn has_terminated(&self) -> bool {
                false
            }
            fn clone_box(&self) -> Box<dyn Protocol> {
                Box::new(self.clone())
            }
            fn as_any(&self) -> Option<&dyn std::any::Any> {
                Some(self)
            }
            fn clone_from_box(&mut self, src: &dyn Protocol) -> bool {
                dynring_model::clone_state_from(self, src)
            }
        }

        let mut pool = ProbePool::default();
        let live = AgentProgram::Boxed(Box::new(Stepper { steps: 5 }));
        let probe = pool.refresh(0, &live);
        assert!(probe.state_label().contains("steps: 5"));
        // Mutate the probe, then refresh again: the state is copied back in
        // place (same slot, no mismatch).
        let _ = probe.decide(&build_dummy_snapshot());
        let probe = pool.refresh(0, &live);
        assert!(probe.state_label().contains("steps: 5"));
        // A different protocol type in the same slot falls back to clone_box.
        let other = AgentProgram::Boxed(Box::new(GoLeft));
        let probe = pool.refresh(0, &other);
        assert_eq!(probe.name(), "go-left");
        // Swapping hands the probe to the caller and parks the old live box.
        let mut live_box = AgentProgram::Boxed(Box::new(Stepper { steps: 9 }));
        let probe = pool.refresh(1, &live);
        let _ = probe.decide(&build_dummy_snapshot());
        pool.swap(1, &mut live_box);
        assert!(live_box.state_label().contains("steps: 6"));
    }

    #[test]
    fn probe_pool_refreshes_catalog_programs_without_downcasts() {
        use dynring_core::Algorithm;

        let mut pool = ProbePool::default();
        let live = AgentProgram::Catalog(
            Algorithm::KnownBound { upper_bound: 6 }.instantiate_enum(),
        );
        // First refresh fills the slot with an enum clone…
        let probe = pool.refresh(0, &live);
        assert_eq!(probe.state_label(), live.state_label());
        // …and diverging the probe (two activations: the first only arms the
        // Ttime counter) then refreshing copies the state back in place
        // through the variant-matching clone_from.
        let _ = probe.decide(&build_dummy_snapshot());
        let _ = probe.decide(&build_dummy_snapshot());
        assert_ne!(probe.state_label(), live.state_label());
        let probe = pool.refresh(0, &live);
        assert_eq!(probe.state_label(), live.state_label());
        // A representation switch in the same slot falls back to a fresh
        // program clone.
        let boxed = AgentProgram::Boxed(Algorithm::Unconscious.instantiate());
        let probe = pool.refresh(0, &boxed);
        assert_eq!(probe.name(), "UnconsciousExploration");
        // Swapping fuses the post-Compute probe into the live slot, exactly
        // as on the boxed path.
        let mut live_enum = AgentProgram::Catalog(Algorithm::EtUnconscious.instantiate_enum());
        let probe = pool.refresh(1, &live_enum);
        let _ = probe.decide(&build_dummy_snapshot());
        let advanced = probe.state_label();
        pool.swap(1, &mut live_enum);
        assert_eq!(live_enum.state_label(), advanced);
    }

    fn build_dummy_snapshot() -> Snapshot {
        Snapshot {
            position: LocalPosition::InNode,
            is_landmark: false,
            occupancy: NodeOccupancy::default(),
            prior: PriorOutcome::Idle,
            round_hint: Some(1),
        }
    }
}
