//! The simulator's "god view" of the ring and the agents.
//!
//! Nothing in this module is visible to the protocols; they only ever receive
//! [`dynring_model::Snapshot`]s built from it. Adversaries, on the
//! other hand, receive the full [`RoundView`], including a prediction of what
//! every agent would do if activated — this is legitimate because the
//! protocols are deterministic, so an omniscient adversary could compute the
//! same prediction by simulation, exactly as the adversaries in the paper's
//! impossibility proofs do.

use dynring_graph::{AgentId, EdgeId, GlobalDirection, Handedness, NodeId, RingTopology};
use dynring_model::{
    Decision, LocalDirection, LocalPosition, NodeOccupancy, PriorOutcome, Protocol, Snapshot,
};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Mutable per-agent runtime state owned by the simulation.
#[derive(Debug)]
pub(crate) struct AgentRuntime {
    pub id: AgentId,
    pub node: NodeId,
    /// The port (by global direction) the agent is currently holding, if any.
    pub held_port: Option<GlobalDirection>,
    pub handedness: Handedness,
    pub protocol: Box<dyn Protocol>,
    pub prior: PriorOutcome,
    pub terminated: bool,
    pub moves: u64,
    pub activations: u64,
    pub last_active_round: u64,
    /// Consecutive rounds spent asleep while holding a port (for ET fairness
    /// accounting).
    pub asleep_on_port: u64,
    pub visited: Vec<bool>,
    pub terminated_at: Option<u64>,
}

impl AgentRuntime {
    pub(crate) fn new(
        id: AgentId,
        node: NodeId,
        handedness: Handedness,
        protocol: Box<dyn Protocol>,
        ring_size: usize,
    ) -> Self {
        let mut visited = vec![false; ring_size];
        visited[node.index()] = true;
        AgentRuntime {
            id,
            node,
            held_port: None,
            handedness,
            protocol,
            prior: PriorOutcome::Idle,
            terminated: false,
            moves: 0,
            activations: 0,
            last_active_round: 0,
            asleep_on_port: 0,
            visited,
            terminated_at: None,
        }
    }

    /// Converts a local direction of this agent into the global frame.
    pub(crate) fn to_global(&self, dir: LocalDirection) -> GlobalDirection {
        match dir {
            LocalDirection::Left => self.handedness.local_left(),
            LocalDirection::Right => self.handedness.local_right(),
        }
    }

    /// Converts a global direction into this agent's local frame.
    pub(crate) fn to_local(&self, dir: GlobalDirection) -> LocalDirection {
        if dir == self.handedness.local_left() {
            LocalDirection::Left
        } else {
            LocalDirection::Right
        }
    }

    /// The number of distinct nodes this agent has visited.
    pub(crate) fn visited_count(&self) -> usize {
        self.visited.iter().filter(|v| **v).count()
    }
}

/// What an agent would do if it were activated in the current round, in the
/// global frame (visible to adversaries only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictedAction {
    /// The agent would try to cross `edge`, leaving its node in `direction`.
    Move {
        /// The edge it would traverse.
        edge: EdgeId,
        /// The global direction of the attempted move.
        direction: GlobalDirection,
    },
    /// The agent would do nothing this round.
    Stay,
    /// The agent would step back from its held port into the node.
    Retreat,
    /// The agent would enter its terminal state.
    Terminate,
}

impl PredictedAction {
    /// The edge the agent would cross, if it would move.
    #[must_use]
    pub const fn target_edge(&self) -> Option<EdgeId> {
        match self {
            PredictedAction::Move { edge, .. } => Some(*edge),
            _ => None,
        }
    }

    /// Whether the prediction is an attempted move.
    #[must_use]
    pub const fn is_move(&self) -> bool {
        matches!(self, PredictedAction::Move { .. })
    }
}

/// Adversary-visible information about one agent at the start of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentView {
    /// The agent's simulator identifier.
    pub id: AgentId,
    /// The node the agent currently occupies.
    pub node: NodeId,
    /// The port (global direction) it holds, if it is waiting on one.
    pub held_port: Option<GlobalDirection>,
    /// Whether the agent has terminated.
    pub terminated: bool,
    /// The agent's private orientation.
    pub handedness: Handedness,
    /// What the agent would do if activated this round.
    ///
    /// Predicting a decision requires cloning and dry-running the protocol,
    /// so the engine only computes this when one of the installed policies
    /// declares that it reads predictions (see
    /// [`EdgePolicy::needs_predictions`](crate::adversary::EdgePolicy::needs_predictions));
    /// otherwise live agents report [`PredictedAction::Stay`] here.
    pub predicted: PredictedAction,
    /// The last round in which the agent was active (0 = never).
    pub last_active_round: u64,
    /// Consecutive rounds spent asleep while holding a port.
    pub asleep_on_port: u64,
    /// Successful traversals so far.
    pub moves: u64,
}

/// Adversary-visible information about the whole system at the start of a
/// round.
///
/// Inside the round loop the agent views are borrowed from a scratch buffer
/// owned by the simulation (no per-round allocation); stand-alone views such
/// as [`Simulation::peek`](crate::sim::Simulation::peek) own their agents.
/// The [`Cow`] makes both representations share one type.
#[derive(Debug, Clone)]
pub struct RoundView<'a> {
    /// The round about to be played (1-based).
    pub round: u64,
    /// The static ring.
    pub ring: &'a RingTopology,
    /// One entry per agent (including terminated ones), ordered by id.
    pub agents: Cow<'a, [AgentView]>,
    /// Which nodes have been visited by at least one agent so far.
    pub visited: &'a [bool],
}

impl RoundView<'_> {
    /// The agents that have not terminated yet.
    pub fn alive(&self) -> impl Iterator<Item = &AgentView> {
        self.agents.iter().filter(|a| !a.terminated)
    }

    /// Number of nodes visited so far.
    #[must_use]
    pub fn visited_count(&self) -> usize {
        self.visited.iter().filter(|v| **v).count()
    }

    /// Whether every node has been visited.
    #[must_use]
    pub fn explored(&self) -> bool {
        self.visited.iter().all(|v| *v)
    }

    /// The view of a specific agent.
    #[must_use]
    pub fn agent(&self, id: AgentId) -> Option<&AgentView> {
        self.agents.iter().find(|a| a.id == id)
    }
}

/// Refills `views` (a scratch buffer owned by the simulation) with the
/// per-agent views of the upcoming round. The buffer's capacity is reused, so
/// after the first round this performs no allocation. Decision predictions
/// are only computed when `predict` is set, because predicting means cloning
/// and dry-running each live protocol.
pub(crate) fn fill_agent_views(
    views: &mut Vec<AgentView>,
    ring: &RingTopology,
    agents: &[AgentRuntime],
    round: u64,
    fsync: bool,
    predict: bool,
) {
    views.clear();
    for (index, agent) in agents.iter().enumerate() {
        let predicted = if agent.terminated {
            PredictedAction::Terminate
        } else if predict {
            let snapshot = build_snapshot(ring, agents, index, round, fsync);
            let mut probe = agent.protocol.clone_box();
            predict_action(ring, agent, probe.decide(&snapshot))
        } else {
            PredictedAction::Stay
        };
        views.push(AgentView {
            id: agent.id,
            node: agent.node,
            held_port: agent.held_port,
            terminated: agent.terminated,
            handedness: agent.handedness,
            predicted,
            last_active_round: agent.last_active_round,
            asleep_on_port: agent.asleep_on_port,
            moves: agent.moves,
        });
    }
}

/// Builds the **Look** snapshot of `observer` given the positions of all
/// agents (the paper's Look operation: own position, other agents at the same
/// node, landmark flag, own previous outcome).
pub(crate) fn build_snapshot(
    ring: &RingTopology,
    agents: &[AgentRuntime],
    observer_index: usize,
    round: u64,
    fsync: bool,
) -> Snapshot {
    let observer = &agents[observer_index];
    let mut occupancy = NodeOccupancy::default();
    for (i, other) in agents.iter().enumerate() {
        if i == observer_index || other.node != observer.node {
            continue;
        }
        match other.held_port {
            None => occupancy.in_node += 1,
            Some(gdir) => match observer.to_local(gdir) {
                LocalDirection::Left => occupancy.on_left_port += 1,
                LocalDirection::Right => occupancy.on_right_port += 1,
            },
        }
    }
    let position = match observer.held_port {
        None => LocalPosition::InNode,
        Some(gdir) => LocalPosition::OnPort(observer.to_local(gdir)),
    };
    Snapshot {
        position,
        is_landmark: ring.is_landmark(observer.node),
        occupancy,
        prior: observer.prior,
        round_hint: if fsync { Some(round) } else { None },
    }
}

/// Converts a protocol [`Decision`] into the adversary-facing
/// [`PredictedAction`].
pub(crate) fn predict_action(
    ring: &RingTopology,
    agent: &AgentRuntime,
    decision: Decision,
) -> PredictedAction {
    match decision {
        Decision::Move(ldir) => {
            let gdir = agent.to_global(ldir);
            PredictedAction::Move { edge: ring.edge_towards(agent.node, gdir), direction: gdir }
        }
        Decision::Stay => PredictedAction::Stay,
        Decision::Retreat => PredictedAction::Retreat,
        Decision::Terminate => PredictedAction::Terminate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynring_model::TerminationKind;

    #[derive(Debug, Clone)]
    struct GoLeft;
    impl Protocol for GoLeft {
        fn name(&self) -> &'static str {
            "go-left"
        }
        fn termination_kind(&self) -> TerminationKind {
            TerminationKind::Unconscious
        }
        fn decide(&mut self, _snapshot: &Snapshot) -> Decision {
            Decision::Move(LocalDirection::Left)
        }
        fn has_terminated(&self) -> bool {
            false
        }
        fn clone_box(&self) -> Box<dyn Protocol> {
            Box::new(self.clone())
        }
    }

    fn runtime(id: usize, node: usize, handedness: Handedness, ring: &RingTopology) -> AgentRuntime {
        AgentRuntime::new(
            AgentId::new(id),
            NodeId::new(node),
            handedness,
            Box::new(GoLeft),
            ring.size(),
        )
    }

    #[test]
    fn local_global_conversion_roundtrips() {
        let ring = RingTopology::new(5).unwrap();
        for h in Handedness::both() {
            let a = runtime(0, 0, h, &ring);
            for d in LocalDirection::both() {
                assert_eq!(a.to_local(a.to_global(d)), d);
            }
            for g in GlobalDirection::both() {
                assert_eq!(a.to_global(a.to_local(g)), g);
            }
        }
    }

    #[test]
    fn snapshot_sees_other_agents_in_the_observers_frame() {
        let ring = RingTopology::with_landmark(6, NodeId::new(2)).unwrap();
        let mut agents = vec![
            runtime(0, 2, Handedness::LeftIsCcw, &ring),
            runtime(1, 2, Handedness::LeftIsCw, &ring),
            runtime(2, 3, Handedness::LeftIsCcw, &ring),
        ];
        // Agent 1 is waiting on the CCW port of node 2.
        agents[1].held_port = Some(GlobalDirection::Ccw);

        let snap0 = build_snapshot(&ring, &agents, 0, 7, true);
        // Observer 0 (left = CCW) sees agent 1 on its *left* port.
        assert_eq!(snap0.occupancy.on_left_port, 1);
        assert_eq!(snap0.occupancy.on_right_port, 0);
        assert_eq!(snap0.occupancy.in_node, 0);
        assert!(snap0.is_landmark);
        assert_eq!(snap0.round_hint, Some(7));
        assert_eq!(snap0.position, LocalPosition::InNode);

        // Observer 1 (left = CW) is itself on the CCW port, i.e. its right port.
        let snap1 = build_snapshot(&ring, &agents, 1, 7, false);
        assert_eq!(snap1.position, LocalPosition::OnPort(LocalDirection::Right));
        assert_eq!(snap1.occupancy.in_node, 1);
        assert_eq!(snap1.round_hint, None);

        // Agent 2 is alone on node 3.
        let snap2 = build_snapshot(&ring, &agents, 2, 7, true);
        assert_eq!(snap2.occupancy.total(), 0);
        assert!(!snap2.is_landmark);
    }

    #[test]
    fn predicted_action_maps_direction_and_edge() {
        let ring = RingTopology::new(6).unwrap();
        let a = runtime(0, 0, Handedness::LeftIsCcw, &ring);
        let p = predict_action(&ring, &a, Decision::Move(LocalDirection::Left));
        assert_eq!(
            p,
            PredictedAction::Move { edge: EdgeId::new(0), direction: GlobalDirection::Ccw }
        );
        assert_eq!(p.target_edge(), Some(EdgeId::new(0)));
        assert!(p.is_move());
        let b = runtime(1, 0, Handedness::LeftIsCw, &ring);
        let q = predict_action(&ring, &b, Decision::Move(LocalDirection::Left));
        assert_eq!(
            q,
            PredictedAction::Move { edge: EdgeId::new(5), direction: GlobalDirection::Cw }
        );
        assert_eq!(predict_action(&ring, &a, Decision::Stay), PredictedAction::Stay);
        assert!(!PredictedAction::Retreat.is_move());
        assert_eq!(PredictedAction::Terminate.target_edge(), None);
    }

    #[test]
    fn visited_count_starts_with_the_start_node() {
        let ring = RingTopology::new(4).unwrap();
        let a = runtime(0, 3, Handedness::LeftIsCcw, &ring);
        assert_eq!(a.visited_count(), 1);
        assert!(a.visited[3]);
    }
}
