//! Activation policies: who is active in each round.
//!
//! Under FSYNC every agent is active in every round ([`FullActivation`]).
//! Under SSYNC the choice is adversarial, constrained only by being non-empty
//! and activating every agent infinitely often. This module provides the fair
//! and adversarial schedulers used across the experiments:
//!
//! * [`FullActivation`] — FSYNC;
//! * [`RoundRobinSingle`] — exactly one agent per round, in rotation (a fair
//!   but maximally sequential SSYNC schedule);
//! * [`RandomSubset`] — each agent active independently with probability `p`
//!   (re-drawn until non-empty);
//! * [`AlternateBlocked`] — keeps agents waiting on ports asleep as long as
//!   allowed, activating the others (used to stress PT/ET algorithms);
//! * [`FirstMoverOnly`] — the Theorem 9 adversary's activation rule: activate
//!   all agents that would *not* move plus the single would-be mover that has
//!   been passive the longest;
//! * [`EtFairness`] — a wrapper enforcing the ET condition: an agent that has
//!   slept on a port for `max_lag` consecutive rounds is forcibly activated.

use crate::world::RoundView;
use dynring_graph::AgentId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses the set of active agents for the next round.
///
/// The returned set is sanitised by the engine: terminated agents are
/// removed, duplicates are dropped, and an empty result activates every
/// non-terminated agent (the adversary must activate someone).
pub trait ActivationPolicy: Send {
    /// A short name for traces and reports.
    fn name(&self) -> &'static str;

    /// Selects the agents to activate, given the adversary-visible view.
    fn select(&mut self, view: &RoundView<'_>) -> Vec<AgentId>;

    /// Allocation-free variant of [`select`](ActivationPolicy::select):
    /// appends the chosen agents to `out` (cleared by the engine, capacity
    /// reused round over round). The engine always calls this method; the
    /// default forwards to `select`, so implementing it is an optimisation,
    /// not an obligation. Both methods must choose identically.
    fn select_into(&mut self, view: &RoundView<'_>, out: &mut Vec<AgentId>) {
        out.extend(self.select(view));
    }

    /// Whether [`select`](ActivationPolicy::select) ever reads
    /// [`AgentView::predicted`](crate::world::AgentView::predicted).
    ///
    /// See [`EdgePolicy::needs_predictions`](crate::adversary::EdgePolicy::needs_predictions)
    /// for the contract; under FSYNC the activation policy is never
    /// consulted, so its answer only matters for SSYNC runs. Defaults to
    /// `true`.
    fn needs_predictions(&self) -> bool {
        true
    }

    /// Restores the policy to its as-constructed state, so a recycled
    /// simulation (see [`Simulation::recycle`](crate::sim::Simulation::recycle))
    /// replays exactly as a freshly built one. Stateful policies (rotation
    /// cursors, seeded RNGs) **must** implement this — a seeded policy
    /// restores the RNG from its original seed; the default no-op is only
    /// correct for stateless policies.
    fn reset(&mut self) {}

    /// Opaque token capturing the policy's mutable per-run state, for the
    /// engine's checkpoint/restore branching path (see
    /// [`Simulation::checkpoint`](crate::sim::Simulation::checkpoint)).
    ///
    /// `None` declares the policy non-checkpointable (its state does not fit
    /// a token — e.g. a seeded RNG mid-stream); branching callers such as the
    /// model checker must reject those policies up front via
    /// [`Simulation::supports_checkpoint`](crate::sim::Simulation::supports_checkpoint).
    /// The default `Some(0)` is only correct for stateless policies —
    /// stateful ones must encode their state and decode it in
    /// [`restore_state`](ActivationPolicy::restore_state).
    fn state_token(&self) -> Option<u64> {
        Some(0)
    }

    /// Restores the state captured by a previous
    /// [`state_token`](ActivationPolicy::state_token) call. The default no-op
    /// is only correct for stateless policies.
    fn restore_state(&mut self, token: u64) {
        let _ = token;
    }
}

/// FSYNC: everyone is active in every round.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullActivation;

impl ActivationPolicy for FullActivation {
    fn name(&self) -> &'static str {
        "fsync"
    }

    fn select(&mut self, view: &RoundView<'_>) -> Vec<AgentId> {
        view.alive().map(|a| a.id).collect()
    }

    fn select_into(&mut self, view: &RoundView<'_>, out: &mut Vec<AgentId>) {
        out.extend(view.alive().map(|a| a.id));
    }

    fn needs_predictions(&self) -> bool {
        false
    }
}

/// Activates exactly one non-terminated agent per round, rotating through
/// them; every agent is activated infinitely often.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinSingle {
    cursor: usize,
}

impl RoundRobinSingle {
    /// Creates the scheduler starting from the first agent.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinSingle { cursor: 0 }
    }
}

impl ActivationPolicy for RoundRobinSingle {
    fn name(&self) -> &'static str {
        "round-robin-single"
    }

    fn select(&mut self, view: &RoundView<'_>) -> Vec<AgentId> {
        let mut out = Vec::new();
        self.select_into(view, &mut out);
        out
    }

    fn select_into(&mut self, view: &RoundView<'_>, out: &mut Vec<AgentId>) {
        let alive = view.alive().count();
        if alive == 0 {
            return;
        }
        let pick = view.alive().nth(self.cursor % alive).expect("nth < count").id;
        self.cursor = self.cursor.wrapping_add(1);
        out.push(pick);
    }

    fn needs_predictions(&self) -> bool {
        false
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }

    fn state_token(&self) -> Option<u64> {
        Some(self.cursor as u64)
    }

    fn restore_state(&mut self, token: u64) {
        self.cursor = token as usize;
    }
}

/// Activates each agent independently with probability `p`; re-draws until
/// the set is non-empty. Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct RandomSubset {
    probability: f64,
    seed: u64,
    rng: StdRng,
}

impl RandomSubset {
    /// Creates the scheduler with the given per-agent activation probability
    /// (clamped to `[0.05, 1.0]`) and RNG seed.
    #[must_use]
    pub fn new(probability: f64, seed: u64) -> Self {
        RandomSubset {
            probability: probability.clamp(0.05, 1.0),
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ActivationPolicy for RandomSubset {
    fn name(&self) -> &'static str {
        "random-subset"
    }

    fn select(&mut self, view: &RoundView<'_>) -> Vec<AgentId> {
        let mut out = Vec::new();
        self.select_into(view, &mut out);
        out
    }

    /// Scratch-filling re-draw loop: each attempt draws one `gen_bool` per
    /// alive agent in id order (the same RNG sequence as the historical
    /// collect-based implementation, so seeded schedules are unchanged) and
    /// fills `out` directly instead of collecting a fresh `Vec` per round.
    fn select_into(&mut self, view: &RoundView<'_>, out: &mut Vec<AgentId>) {
        if view.alive().next().is_none() {
            return;
        }
        for _ in 0..64 {
            out.clear();
            for agent in view.alive() {
                if self.rng.gen_bool(self.probability) {
                    out.push(agent.id);
                }
            }
            if !out.is_empty() {
                return;
            }
        }
        out.extend(view.alive().map(|a| a.id));
    }

    fn needs_predictions(&self) -> bool {
        false
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    /// A mid-stream `StdRng` does not fit a `u64` token, so random schedules
    /// cannot be checkpointed (the model checker rejects them up front).
    fn state_token(&self) -> Option<u64> {
        None
    }
}

/// Keeps agents that are waiting on a port asleep for as long as `max_hold`
/// rounds while activating everyone else; used to exercise the PT transport
/// rule (a sleeping agent is carried across when the edge reappears).
#[derive(Debug, Clone, Copy)]
pub struct AlternateBlocked {
    max_hold: u64,
}

impl AlternateBlocked {
    /// Creates the scheduler; agents waiting on a port stay asleep for at
    /// most `max_hold` consecutive rounds.
    #[must_use]
    pub fn new(max_hold: u64) -> Self {
        AlternateBlocked { max_hold: max_hold.max(1) }
    }
}

impl ActivationPolicy for AlternateBlocked {
    fn name(&self) -> &'static str {
        "sleep-blocked"
    }

    fn select(&mut self, view: &RoundView<'_>) -> Vec<AgentId> {
        let mut out = Vec::new();
        self.select_into(view, &mut out);
        out
    }

    fn select_into(&mut self, view: &RoundView<'_>, out: &mut Vec<AgentId>) {
        out.extend(
            view.alive()
                .filter(|a| a.held_port.is_none() || a.asleep_on_port >= self.max_hold)
                .map(|a| a.id),
        );
        if out.is_empty() {
            out.extend(view.alive().map(|a| a.id));
        }
    }

    fn needs_predictions(&self) -> bool {
        false
    }
}

/// The activation rule of the Theorem 9 (NS impossibility) adversary:
/// activate every agent that would *not* move, plus the single would-be mover
/// that has been passive the longest (ties broken by id). Combined with
/// [`crate::adversary::BlockFirstMover`], no agent ever moves, yet every
/// agent is activated infinitely often.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstMoverOnly;

impl ActivationPolicy for FirstMoverOnly {
    fn name(&self) -> &'static str {
        "first-mover-only"
    }

    fn select(&mut self, view: &RoundView<'_>) -> Vec<AgentId> {
        let mut out = Vec::new();
        self.select_into(view, &mut out);
        out
    }

    fn select_into(&mut self, view: &RoundView<'_>, out: &mut Vec<AgentId>) {
        out.extend(view.alive().filter(|a| !a.predicted.is_move()).map(|a| a.id));
        let first_mover = view
            .alive()
            .filter(|a| a.predicted.is_move())
            .min_by_key(|a| (a.last_active_round, a.id));
        if let Some(mover) = first_mover {
            out.push(mover.id);
        }
    }
}

/// Wrapper enforcing the Eventual Transport fairness condition on top of any
/// inner policy: an agent that has been asleep on a port for at least
/// `max_lag` consecutive rounds is forcibly added to the active set.
///
/// With `max_lag = 0` every agent currently holding a port is activated in
/// every round, which guarantees the ET condition against *any* edge
/// adversary (the agent crosses in the first round its edge is present); a
/// positive lag leaves the adversary more room but only satisfies the ET
/// condition against adversaries whose blocking pattern is not synchronised
/// with the lag.
pub struct EtFairness {
    inner: Box<dyn ActivationPolicy>,
    max_lag: u64,
}

impl std::fmt::Debug for EtFairness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EtFairness")
            .field("inner", &self.inner.name())
            .field("max_lag", &self.max_lag)
            .finish()
    }
}

impl EtFairness {
    /// Wraps `inner`, forcing activation after `max_lag` rounds asleep on a
    /// port (`0` = activate every port holder in every round).
    #[must_use]
    pub fn new(inner: Box<dyn ActivationPolicy>, max_lag: u64) -> Self {
        EtFairness { inner, max_lag }
    }
}

impl ActivationPolicy for EtFairness {
    fn name(&self) -> &'static str {
        "et-fair"
    }

    fn select(&mut self, view: &RoundView<'_>) -> Vec<AgentId> {
        let mut out = Vec::new();
        self.select_into(view, &mut out);
        out
    }

    fn select_into(&mut self, view: &RoundView<'_>, out: &mut Vec<AgentId>) {
        self.inner.select_into(view, out);
        for agent in view.alive() {
            if agent.held_port.is_some()
                && agent.asleep_on_port >= self.max_lag
                && !out.contains(&agent.id)
            {
                out.push(agent.id);
            }
        }
    }

    fn needs_predictions(&self) -> bool {
        self.inner.needs_predictions()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn state_token(&self) -> Option<u64> {
        self.inner.state_token()
    }

    fn restore_state(&mut self, token: u64) {
        self.inner.restore_state(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{AgentView, PredictedAction};
    use dynring_graph::{EdgeId, GlobalDirection, Handedness, NodeId, RingTopology};

    fn agent_view(id: usize, moves: bool, last_active: u64, asleep: u64) -> AgentView {
        AgentView {
            id: AgentId::new(id),
            node: NodeId::new(0),
            held_port: if asleep > 0 { Some(GlobalDirection::Ccw) } else { None },
            terminated: false,
            handedness: Handedness::LeftIsCcw,
            predicted: if moves {
                PredictedAction::Move { edge: EdgeId::new(0), direction: GlobalDirection::Ccw }
            } else {
                PredictedAction::Stay
            },
            last_active_round: last_active,
            asleep_on_port: asleep,
            moves: 0,
        }
    }

    fn view<'a>(ring: &'a RingTopology, visited: &'a [bool], agents: Vec<AgentView>) -> RoundView<'a> {
        RoundView { round: 1, ring, agents: agents.into(), visited }
    }

    #[test]
    fn full_activation_selects_everyone_alive() {
        let ring = RingTopology::new(4).unwrap();
        let visited = vec![false; 4];
        let mut agents = vec![agent_view(0, true, 0, 0), agent_view(1, false, 0, 0)];
        agents[1].terminated = true;
        let v = view(&ring, &visited, agents);
        assert_eq!(FullActivation.select(&v), vec![AgentId::new(0)]);
    }

    #[test]
    fn round_robin_cycles_through_agents() {
        let ring = RingTopology::new(4).unwrap();
        let visited = vec![false; 4];
        let agents = vec![agent_view(0, true, 0, 0), agent_view(1, true, 0, 0), agent_view(2, true, 0, 0)];
        let v = view(&ring, &visited, agents);
        let mut rr = RoundRobinSingle::new();
        let picks: Vec<_> = (0..6).map(|_| rr.select(&v)[0].index()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_subset_is_never_empty_and_deterministic_per_seed() {
        let ring = RingTopology::new(4).unwrap();
        let visited = vec![false; 4];
        let agents = vec![agent_view(0, true, 0, 0), agent_view(1, true, 0, 0)];
        let v = view(&ring, &visited, agents);
        let mut a = RandomSubset::new(0.3, 42);
        let mut b = RandomSubset::new(0.3, 42);
        for _ in 0..50 {
            let sa = a.select(&v);
            let sb = b.select(&v);
            assert!(!sa.is_empty());
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn random_subset_select_into_matches_select_draw_for_draw() {
        let ring = RingTopology::new(4).unwrap();
        let visited = vec![false; 4];
        let agents =
            vec![agent_view(0, true, 0, 0), agent_view(1, true, 0, 0), agent_view(2, true, 0, 0)];
        let v = view(&ring, &visited, agents);
        // Same seed through both entry points: the scratch-filling path must
        // consume the RNG identically, so seeded schedules are unchanged.
        let mut via_select = RandomSubset::new(0.3, 97);
        let mut via_into = RandomSubset::new(0.3, 97);
        let mut scratch = Vec::new();
        for _ in 0..200 {
            scratch.clear();
            via_into.select_into(&v, &mut scratch);
            assert_eq!(via_select.select(&v), scratch);
            assert!(!scratch.is_empty());
        }
    }

    #[test]
    fn first_mover_only_activates_non_movers_plus_oldest_mover() {
        let ring = RingTopology::new(4).unwrap();
        let visited = vec![false; 4];
        let agents = vec![
            agent_view(0, true, 5, 0),
            agent_view(1, true, 2, 0), // mover, passive the longest
            agent_view(2, false, 9, 0),
        ];
        let v = view(&ring, &visited, agents);
        let mut p = FirstMoverOnly;
        let chosen = p.select(&v);
        assert!(chosen.contains(&AgentId::new(2)));
        assert!(chosen.contains(&AgentId::new(1)));
        assert!(!chosen.contains(&AgentId::new(0)));
    }

    #[test]
    fn et_fairness_forces_long_sleepers_awake() {
        let ring = RingTopology::new(4).unwrap();
        let visited = vec![false; 4];
        let agents = vec![agent_view(0, true, 0, 0), agent_view(1, true, 0, 7)];
        let v = view(&ring, &visited, agents);
        // Inner policy that always picks agent 0 only.
        #[derive(Debug)]
        struct OnlyZero;
        impl ActivationPolicy for OnlyZero {
            fn name(&self) -> &'static str {
                "only-zero"
            }
            fn select(&mut self, _view: &RoundView<'_>) -> Vec<AgentId> {
                vec![AgentId::new(0)]
            }
        }
        let mut p = EtFairness::new(Box::new(OnlyZero), 5);
        let chosen = p.select(&v);
        assert!(chosen.contains(&AgentId::new(0)));
        assert!(chosen.contains(&AgentId::new(1)), "sleeper past the lag must be woken");
    }

    #[test]
    fn alternate_blocked_keeps_port_waiters_asleep() {
        let ring = RingTopology::new(4).unwrap();
        let visited = vec![false; 4];
        let agents = vec![agent_view(0, true, 0, 2), agent_view(1, true, 0, 0)];
        let v = view(&ring, &visited, agents);
        let mut p = AlternateBlocked::new(10);
        assert_eq!(p.select(&v), vec![AgentId::new(1)]);
        // Once the sleeper exceeds the holding limit it is activated again.
        let agents = vec![agent_view(0, true, 0, 12), agent_view(1, true, 0, 0)];
        let v = view(&ring, &visited, agents);
        let chosen = p.select(&v);
        assert!(chosen.contains(&AgentId::new(0)));
    }

    #[test]
    fn state_tokens_round_trip_where_supported() {
        let ring = RingTopology::new(4).unwrap();
        let visited = vec![false; 4];
        let agents =
            vec![agent_view(0, true, 0, 0), agent_view(1, true, 0, 0), agent_view(2, true, 0, 0)];
        let v = view(&ring, &visited, agents);
        // Round-robin: capture mid-rotation, advance, restore, and the
        // rotation must resume from the captured cursor.
        let mut rr = RoundRobinSingle::new();
        let _ = rr.select(&v);
        let token = rr.state_token().expect("round-robin is checkpointable");
        let next: Vec<_> = (0..3).map(|_| rr.select(&v)[0].index()).collect();
        rr.restore_state(token);
        let replay: Vec<_> = (0..3).map(|_| rr.select(&v)[0].index()).collect();
        assert_eq!(next, replay);
        // Stateless policies are trivially checkpointable; random ones refuse.
        assert!(FullActivation.state_token().is_some());
        assert!(FirstMoverOnly.state_token().is_some());
        assert!(AlternateBlocked::new(2).state_token().is_some());
        assert!(RandomSubset::new(0.5, 1).state_token().is_none());
        // The ET wrapper forwards to its inner policy.
        assert!(EtFairness::new(Box::new(RandomSubset::new(0.5, 1)), 1).state_token().is_none());
        let mut wrapped = EtFairness::new(Box::new(RoundRobinSingle::new()), 1);
        let _ = wrapped.select(&v);
        assert_eq!(wrapped.state_token(), Some(1));
        wrapped.restore_state(0);
        assert_eq!(wrapped.state_token(), Some(0));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FullActivation.name(), "fsync");
        assert_eq!(RoundRobinSingle::new().name(), "round-robin-single");
        assert_eq!(RandomSubset::new(0.5, 1).name(), "random-subset");
        assert_eq!(FirstMoverOnly.name(), "first-mover-only");
        assert_eq!(AlternateBlocked::new(3).name(), "sleep-blocked");
    }
}
