//! Branchable run state: the checkpoint the model checker forks from, and
//! the canonical configuration key its memo table deduplicates on.
//!
//! A [`SimCheckpoint`] captures everything that determines a run's future
//! behaviour — round counter, global and per-agent visit maps, every agent's
//! position, held port, outcome flags and full program state, and the
//! activation policy's state token (see
//! [`ActivationPolicy::state_token`](crate::scheduler::ActivationPolicy::state_token)).
//! Two things are deliberately *not* captured:
//!
//! * the **trace** — checkpointing callers run trace-off, because a restored
//!   trace-on simulation would keep appending rounds from every explored
//!   branch to one linear trace;
//! * the **edge policy's** internal state — checkpoint/restore exists to
//!   drive adversary branching through
//!   [`Simulation::step_with_edge`](crate::sim::Simulation::step_with_edge),
//!   which bypasses the installed edge policy entirely.
//!
//! # Canonical keys
//!
//! Exhaustive search over adversary choices revisits the same configuration
//! through many different histories, and configurations that differ only by
//! a symmetry of the ring are behaviourally interchangeable. The key
//! produced by [`SimCheckpoint::canonical_key`] quotients both away:
//!
//! * **rotation** — on anonymous rings, shifting every node index by a
//!   constant relabels the ring without changing anything any agent can
//!   observe;
//! * **reflection** — mirroring the ring swaps the global CCW/CW directions;
//!   an agent of the mirrored configuration behaves exactly like the
//!   original agent with the *opposite* handedness, so the encoding flips
//!   each agent's handedness and held-port direction under reflection;
//! * **landmark** — a landmark breaks the rotational symmetry: only the two
//!   maps carrying the landmark to node 0 (the translation, and the
//!   reflection through the landmark) are admissible, so keys remain
//!   comparable across cells that only differ in where the landmark sits.
//!
//! The key is the lexicographic minimum of the encoded configuration over
//! the admissible maps (2 for landmark rings, `2n` for anonymous ones).
//! The encoding covers exactly the state that can influence future
//! behaviour: the permuted visit map, each agent's mapped position, held
//! port, termination flag, handedness, prior outcome, sleep/activation ages
//! (read by the paper's schedulers) and the complete program state
//! (protocols only ever observe local-frame snapshots, so program state is
//! invariant under both symmetries). Statistics that feed reports but never
//! decisions — move counts, termination rounds, per-agent visit maps — are
//! excluded, which is what lets the memo table collapse distinct histories
//! onto one frontier state.
//!
//! # Packed key format
//!
//! [`SimCheckpoint::canonical_key_into`] produces the key in a compact
//! binary layout with **zero steady-state allocations** (all buffers come
//! from a recycled [`KeyScratch`]):
//!
//! * a *symmetry-invariant* prefix, emitted once — round counter,
//!   activation-policy token, and per agent the sleep age, the dense rank of
//!   its last-active round, and its length-prefixed program state via
//!   [`AgentProgram::write_state_key`] (packed integers for catalogue
//!   protocols, a `Debug`-string fallback for foreign boxed ones);
//! * a *symmetry-variant* suffix, minimised lexicographically over the
//!   admissible maps — the permuted visit map bit-packed at 8 nodes/byte,
//!   then per agent the mapped node (`u16`) and one flags byte packing the
//!   held port (2 bits), termination flag, reflection-adjusted handedness,
//!   and prior outcome (3 bits).
//!
//! Any injective encoding yields the same equivalence classes as any other
//! over the same map family: the orbits of the symmetry group partition the
//! configuration space, and two orbits sharing their minimal encoded element
//! are equal. The retired `Debug`-string encoding is kept as
//! [`SimCheckpoint::canonical_key_debug`] so benches and the equivalence
//! proptests can measure and verify exactly that.

use crate::world::AgentProgram;
use dynring_graph::{GlobalDirection, Handedness, NodeId, RingTopology};
use dynring_model::PriorOutcome;
use std::fmt::Write as _;

/// Recycled scratch buffers for [`SimCheckpoint::canonical_key_into`].
///
/// Holding one `KeyScratch` per search worker makes canonicalisation
/// allocation-free in the steady state: the per-agent program encodings and
/// the per-map candidate buffer reuse their capacity across calls.
#[derive(Debug, Default)]
pub struct KeyScratch {
    /// Concatenated packed program encodings of every agent.
    programs: Vec<u8>,
    /// End offset of each agent's slice within `programs`.
    program_ends: Vec<u32>,
    /// Candidate variant section for the symmetry map under consideration.
    candidate: Vec<u8>,
}

impl KeyScratch {
    /// Fresh, empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A complete behavioural snapshot of a [`Simulation`](crate::sim::Simulation)
/// mid-run, produced by
/// [`Simulation::checkpoint`](crate::sim::Simulation::checkpoint) and
/// consumed by [`Simulation::restore`](crate::sim::Simulation::restore).
///
/// Checkpoints are only meaningful for the simulation (or an identically
/// shaped recycle of the spec) they were captured from; `restore` asserts
/// the shapes match. See the [module docs](self) for what is and is not
/// captured.
#[derive(Debug, Default)]
pub struct SimCheckpoint {
    pub(crate) round: u64,
    pub(crate) explored_at: Option<u64>,
    pub(crate) unvisited: usize,
    pub(crate) alive: usize,
    pub(crate) visited: Vec<bool>,
    pub(crate) node: Vec<NodeId>,
    pub(crate) held_port: Vec<Option<GlobalDirection>>,
    pub(crate) terminated: Vec<bool>,
    pub(crate) handedness: Vec<Handedness>,
    pub(crate) prior: Vec<PriorOutcome>,
    pub(crate) program: Vec<AgentProgram>,
    pub(crate) moves: Vec<u64>,
    pub(crate) activations: Vec<u64>,
    pub(crate) last_active_round: Vec<u64>,
    pub(crate) asleep_on_port: Vec<u64>,
    pub(crate) terminated_at: Vec<Option<u64>>,
    pub(crate) agent_visited: Vec<bool>,
    pub(crate) agent_visited_count: Vec<usize>,
    pub(crate) node_population: Vec<u32>,
    pub(crate) crowded_nodes: usize,
    pub(crate) activation_token: u64,
}

impl SimCheckpoint {
    /// The round the checkpoint was captured at.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of agents captured.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.node.len()
    }

    /// Whether the captured state had explored the whole ring.
    #[must_use]
    pub fn explored(&self) -> bool {
        self.explored_at.is_some()
    }

    /// Number of agents that had not terminated in the captured state.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Writes the canonicalised configuration key into `out` (cleared
    /// first; capacity reused across calls). Two checkpoints receive the
    /// same key **iff** their configurations are identical up to the ring
    /// symmetries described in the [module docs](self) — the memo-table
    /// identity of the model checker's breadth-first search.
    ///
    /// Convenience wrapper around [`SimCheckpoint::canonical_key_into`] that
    /// allocates a throwaway [`KeyScratch`]; hot callers should hold their
    /// own scratch and call `canonical_key_into` directly.
    ///
    /// The caller's `ring` must be the ring the checkpoint was captured on
    /// (the checkpoint itself does not store the landmark).
    ///
    /// # Panics
    ///
    /// Panics if `ring`'s size does not match the checkpoint.
    pub fn canonical_key(&self, ring: &RingTopology, out: &mut Vec<u8>) {
        let mut scratch = KeyScratch::new();
        self.canonical_key_into(ring, &mut scratch, out);
    }

    /// Packed-format canonicalisation into caller-owned buffers — the
    /// allocation-free hot path of the model checker. See the
    /// [module docs](self) for the exact layout; the key identity (equal key
    /// ⇔ symmetric configuration) is the same as
    /// [`SimCheckpoint::canonical_key`], which merely wraps this.
    ///
    /// # Panics
    ///
    /// Panics if `ring`'s size does not match the checkpoint.
    pub fn canonical_key_into(
        &self,
        ring: &RingTopology,
        scratch: &mut KeyScratch,
        out: &mut Vec<u8>,
    ) {
        let n = ring.size();
        assert_eq!(self.visited.len(), n, "checkpoint is from a different ring");
        // Symmetry-invariant prefix: both map families relabel nodes and
        // global directions but never touch round counters, scheduler state,
        // sleep ages or program state (protocols only see local frames), so
        // these are emitted once, outside the min-over-maps loop. This is
        // the structural win over the retired Debug-string encoding, which
        // re-emitted every program string for all 2n candidate maps.
        scratch.programs.clear();
        scratch.program_ends.clear();
        for program in &self.program {
            program.write_state_key(&mut scratch.programs);
            let end = u32::try_from(scratch.programs.len()).expect("program key exceeds u32");
            scratch.program_ends.push(end);
        }
        out.clear();
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.activation_token.to_le_bytes());
        let mut program_start = 0usize;
        for index in 0..self.node.len() {
            out.extend_from_slice(&self.asleep_on_port[index].to_le_bytes());
            // `last_active_round` is only consumed through order comparisons
            // (`min_by_key` in the first-mover scheduler and adversary), so
            // the key encodes its dense rank among the agents: plays reaching
            // the same configuration along different activation histories
            // coincide. Teams are tiny (≤ u8::MAX agents), so the O(k²) scan
            // beats allocating a rank table.
            let r = self.last_active_round[index];
            let rank = self.last_active_round.iter().filter(|&&other| other < r).count();
            out.push(u8::try_from(rank).unwrap_or(u8::MAX));
            let program_end = scratch.program_ends[index] as usize;
            let program_key = &scratch.programs[program_start..program_end];
            let len = u32::try_from(program_key.len()).expect("program key exceeds u32");
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(program_key);
            program_start = program_end;
        }
        // Symmetry-variant suffix: lexicographic minimum over the admissible
        // maps. Candidates are a few bytes (bit-packed visit map + 3 bytes
        // per agent), so a full emit-and-compare per map is cheaper than any
        // early-exit bookkeeping.
        let variant_at = out.len();
        let mut first = true;
        let mut consider = |rot: usize, reflect: bool, out: &mut Vec<u8>| {
            self.emit_variant(n, rot, reflect, &mut scratch.candidate);
            if first || scratch.candidate.as_slice() < &out[variant_at..] {
                out.truncate(variant_at);
                out.extend_from_slice(&scratch.candidate);
                first = false;
            }
        };
        match ring.landmark() {
            Some(landmark) => {
                // Only maps fixing the landmark (carrying it to node 0) are
                // admissible: the translation landmark → 0 and the
                // reflection through the landmark.
                let l = landmark.index();
                consider((n - l) % n, false, out);
                consider(l, true, out);
            }
            None => {
                for rot in 0..n {
                    consider(rot, false, out);
                    consider(rot, true, out);
                }
            }
        }
    }

    /// The symmetry-variant section of the packed key under one candidate
    /// map: bit-packed permuted visit map, then mapped node + flags byte per
    /// agent.
    fn emit_variant(&self, n: usize, rot: usize, reflect: bool, buf: &mut Vec<u8>) {
        buf.clear();
        // Node `w` of the canonical image is node `map⁻¹(w)` of the
        // original (both map families are trivially invertible).
        let mut packed = 0u8;
        for w in 0..n {
            let v = if reflect { (rot + n - w) % n } else { (w + n - rot) % n };
            if self.visited[v] {
                packed |= 1 << (w % 8);
            }
            if w % 8 == 7 {
                buf.push(packed);
                packed = 0;
            }
        }
        if !n.is_multiple_of(8) {
            buf.push(packed);
        }
        for index in 0..self.node.len() {
            let v = self.node[index].index();
            let mapped = if reflect { (rot + n - v) % n } else { (v + rot) % n };
            buf.extend_from_slice(&u16::try_from(mapped).unwrap_or(u16::MAX).to_le_bytes());
            let port = match self.held_port[index] {
                None => 0u8,
                Some(dir) => {
                    let dir = if reflect { dir.opposite() } else { dir };
                    match dir {
                        GlobalDirection::Ccw => 1,
                        GlobalDirection::Cw => 2,
                    }
                }
            };
            let handedness = match (self.handedness[index], reflect) {
                (Handedness::LeftIsCcw, false) | (Handedness::LeftIsCw, true) => 0u8,
                _ => 1u8,
            };
            let prior = match self.prior[index] {
                PriorOutcome::Idle => 0u8,
                PriorOutcome::Moved => 1,
                PriorOutcome::BlockedOnPort => 2,
                PriorOutcome::PortAcquisitionFailed => 3,
                PriorOutcome::Transported => 4,
            };
            buf.push(port | (u8::from(self.terminated[index]) << 2) | (handedness << 3) | (prior << 4));
        }
    }

    /// The retired `Debug`-string canonical key, preserved verbatim as the
    /// baseline the `model_check_throughput` bench measures the packed
    /// encoding against, and as the second encoding of the key-equivalence
    /// proptests. Induces exactly the same equivalence classes as
    /// [`SimCheckpoint::canonical_key`] (see the [module docs](self));
    /// allocates freely.
    ///
    /// # Panics
    ///
    /// Panics if `ring`'s size does not match the checkpoint.
    pub fn canonical_key_debug(&self, ring: &RingTopology, out: &mut Vec<u8>) {
        let n = ring.size();
        assert_eq!(self.visited.len(), n, "checkpoint is from a different ring");
        // Program state via the derived `Debug` representation: complete
        // (every catalogue state machine derives `Debug` field by field) and
        // symmetry-invariant (protocols only ever observe local-frame
        // snapshots, so a mirrored run drives the program through identical
        // states). Rendered once per agent, shared by every candidate map.
        let mut labels = String::new();
        let mut label_ends = Vec::with_capacity(self.program.len());
        for program in &self.program {
            let _ = write!(labels, "{program:?}");
            label_ends.push(labels.len());
        }
        // `last_active_round` is only ever consumed through order comparisons
        // (`min_by_key` in the first-mover scheduler and adversary), so the
        // key encodes its dense rank among the agents instead of the raw
        // round number: plays that reach the same configuration along
        // different activation histories coincide.
        let last_active_rank: Vec<u8> = self
            .last_active_round
            .iter()
            .map(|&r| {
                let rank = self
                    .last_active_round
                    .iter()
                    .filter(|&&other| other < r)
                    .count();
                u8::try_from(rank).unwrap_or(u8::MAX)
            })
            .collect();
        let emit = |rot: usize, reflect: bool, buf: &mut Vec<u8>| {
            buf.clear();
            buf.extend_from_slice(&self.round.to_le_bytes());
            buf.extend_from_slice(&self.activation_token.to_le_bytes());
            // Node `w` of the canonical image is node `map⁻¹(w)` of the
            // original (both map families are trivially invertible).
            for w in 0..n {
                let v = if reflect { (rot + n - w) % n } else { (w + n - rot) % n };
                buf.push(u8::from(self.visited[v]));
            }
            let mut label_start = 0;
            for index in 0..self.node.len() {
                let v = self.node[index].index();
                let mapped = if reflect { (rot + n - v) % n } else { (v + rot) % n };
                buf.extend_from_slice(&u32::try_from(mapped).unwrap_or(u32::MAX).to_le_bytes());
                buf.push(match self.held_port[index] {
                    None => 0,
                    Some(dir) => {
                        let dir = if reflect { dir.opposite() } else { dir };
                        match dir {
                            GlobalDirection::Ccw => 1,
                            GlobalDirection::Cw => 2,
                        }
                    }
                });
                buf.push(u8::from(self.terminated[index]));
                buf.push(match (self.handedness[index], reflect) {
                    (Handedness::LeftIsCcw, false) | (Handedness::LeftIsCw, true) => 0,
                    _ => 1,
                });
                buf.push(match self.prior[index] {
                    PriorOutcome::Idle => 0,
                    PriorOutcome::Moved => 1,
                    PriorOutcome::BlockedOnPort => 2,
                    PriorOutcome::PortAcquisitionFailed => 3,
                    PriorOutcome::Transported => 4,
                });
                buf.extend_from_slice(&self.asleep_on_port[index].to_le_bytes());
                buf.push(last_active_rank[index]);
                let label_end = label_ends[index];
                buf.extend_from_slice(&labels.as_bytes()[label_start..label_end]);
                buf.push(0xFF);
                label_start = label_end;
            }
        };
        out.clear();
        let mut scratch: Vec<u8> = Vec::new();
        let mut first = true;
        let mut consider = |rot: usize, reflect: bool, out: &mut Vec<u8>| {
            emit(rot, reflect, &mut scratch);
            if first || scratch < *out {
                std::mem::swap(out, &mut scratch);
                first = false;
            }
        };
        match ring.landmark() {
            Some(landmark) => {
                // Only maps fixing the landmark (carrying it to node 0) are
                // admissible: the translation landmark → 0 and the
                // reflection through the landmark.
                let l = landmark.index();
                consider((n - l) % n, false, out);
                consider(l, true, out);
            }
            None => {
                for rot in 0..n {
                    consider(rot, false, out);
                    consider(rot, true, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::adversary::NoRemoval;
    use crate::scheduler::{FullActivation, RoundRobinSingle};
    use crate::sim::Simulation;
    use dynring_core::fsync::KnownBound;
    use dynring_core::single::LoneWalker;
    use dynring_graph::{EdgeId, Handedness, NodeId, RingTopology};
    use dynring_model::{Protocol, SynchronyModel, TransportModel};

    fn known_bound_sim(ring: RingTopology, starts: &[(usize, Handedness)], n: usize) -> Simulation {
        let mut builder = Simulation::builder(ring)
            .synchrony(SynchronyModel::Fsync)
            .activation(Box::new(FullActivation))
            .edges(Box::new(NoRemoval));
        for (start, handedness) in starts {
            builder = builder.agent(
                NodeId::new(*start),
                *handedness,
                Box::new(KnownBound::new(n)) as Box<dyn Protocol>,
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn step_with_edge_blocks_exactly_the_forced_edge() {
        let mut sim = Simulation::builder(RingTopology::new(6).unwrap())
            .agent(NodeId::new(2), Handedness::LeftIsCcw, Box::new(LoneWalker::new(5)))
            .activation(Box::new(FullActivation))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap();
        // Block whatever the agent is about to try: it must not move.
        for _ in 0..4 {
            let target = sim.peek().agents[0].predicted.target_edge().expect("walker moves");
            assert!(sim.step_with_edge(Some(target)));
            assert_eq!(sim.total_moves(), 0);
        }
        // Out-of-range forced edges are ignored like invalid policy choices,
        // and an all-present forced round lets the walker through.
        let mut moved = false;
        for forced in [Some(EdgeId::new(999)), None] {
            sim.step_with_edge(forced);
            moved |= sim.total_moves() > 0;
        }
        assert!(moved, "an unblocked round must let the lone walker move");
    }

    #[test]
    fn checkpoint_restore_replays_identically() {
        let n = 7;
        let ring = RingTopology::new(n).unwrap();
        let mut sim = Simulation::builder(ring)
            .synchrony(SynchronyModel::Ssync(TransportModel::PassiveTransport))
            .agent(NodeId::new(0), Handedness::LeftIsCcw, Box::new(KnownBound::new(n)))
            .agent(NodeId::new(3), Handedness::LeftIsCw, Box::new(KnownBound::new(n)))
            .activation(Box::new(RoundRobinSingle::new()))
            .edges(Box::new(NoRemoval))
            .build()
            .unwrap();
        assert!(sim.supports_checkpoint());
        // Drive an adversarial prefix, fork, and check both branches replay
        // bit for bit after a restore.
        let schedule = [Some(EdgeId::new(0)), None, Some(EdgeId::new(3)), None, None];
        for missing in schedule {
            sim.step_with_edge(missing);
        }
        let fork = sim.checkpoint();
        assert_eq!(fork.round(), 5);
        assert_eq!(fork.agent_count(), 2);
        let continuation = [Some(EdgeId::new(1)), None, Some(EdgeId::new(2)), None];
        for missing in continuation {
            sim.step_with_edge(missing);
        }
        let positions = sim.positions();
        let round = sim.round();
        let moves = sim.moves_per_agent();
        let first_branch = sim.checkpoint();
        let mut key_a = Vec::new();
        first_branch.canonical_key(sim.ring(), &mut key_a);
        // Rewind and replay the same choices: every observable must match.
        sim.restore(&fork);
        assert_eq!(sim.round(), 5);
        for missing in continuation {
            sim.step_with_edge(missing);
        }
        assert_eq!(sim.positions(), positions);
        assert_eq!(sim.round(), round);
        assert_eq!(sim.moves_per_agent(), moves);
        let mut key_b = Vec::new();
        sim.checkpoint().canonical_key(sim.ring(), &mut key_b);
        assert_eq!(key_a, key_b);
    }

    #[test]
    fn canonical_key_is_rotation_invariant_on_anonymous_rings() {
        let n = 8;
        let ring = RingTopology::new(n).unwrap();
        let base = known_bound_sim(ring.clone(), &[(0, Handedness::LeftIsCcw), (1, Handedness::LeftIsCcw)], n);
        let mut keys = Vec::new();
        base.checkpoint().canonical_key(&ring, &mut keys);
        for shift in 1..n {
            let rotated = known_bound_sim(
                ring.clone(),
                &[(shift % n, Handedness::LeftIsCcw), ((1 + shift) % n, Handedness::LeftIsCcw)],
                n,
            );
            let mut rotated_key = Vec::new();
            rotated.checkpoint().canonical_key(&ring, &mut rotated_key);
            assert_eq!(keys, rotated_key, "shift {shift}");
        }
        // A genuinely different configuration must not collide.
        let apart = known_bound_sim(ring.clone(), &[(0, Handedness::LeftIsCcw), (3, Handedness::LeftIsCcw)], n);
        let mut apart_key = Vec::new();
        apart.checkpoint().canonical_key(&ring, &mut apart_key);
        assert_ne!(keys, apart_key);
    }

    #[test]
    fn canonical_key_is_reflection_invariant() {
        let n = 8;
        let ring = RingTopology::new(n).unwrap();
        // Mirror image about node 0: node v ↦ (n − v) mod n, and every
        // agent's handedness flips.
        let base = known_bound_sim(ring.clone(), &[(1, Handedness::LeftIsCcw), (4, Handedness::LeftIsCw)], n);
        let mirrored =
            known_bound_sim(ring.clone(), &[(n - 1, Handedness::LeftIsCw), (n - 4, Handedness::LeftIsCcw)], n);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        base.checkpoint().canonical_key(&ring, &mut a);
        mirrored.checkpoint().canonical_key(&ring, &mut b);
        assert_eq!(a, b);
        // Flipping handedness *without* mirroring the positions is a
        // different configuration.
        let flipped_only =
            known_bound_sim(ring.clone(), &[(1, Handedness::LeftIsCw), (4, Handedness::LeftIsCcw)], n);
        let mut c = Vec::new();
        flipped_only.checkpoint().canonical_key(&ring, &mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn landmark_pins_the_rotation_but_keys_stay_comparable_across_landmarks() {
        let n = 7;
        // Same configuration relative to the landmark, landmark at different
        // absolute positions: identical keys.
        let ring_a = RingTopology::with_landmark(n, NodeId::new(0)).unwrap();
        let ring_b = RingTopology::with_landmark(n, NodeId::new(3)).unwrap();
        let a = known_bound_sim(ring_a.clone(), &[(1, Handedness::LeftIsCcw), (2, Handedness::LeftIsCcw)], n);
        let b = known_bound_sim(ring_b.clone(), &[(4, Handedness::LeftIsCcw), (5, Handedness::LeftIsCcw)], n);
        let (mut key_a, mut key_b) = (Vec::new(), Vec::new());
        a.checkpoint().canonical_key(&ring_a, &mut key_a);
        b.checkpoint().canonical_key(&ring_b, &mut key_b);
        assert_eq!(key_a, key_b);
        // Moving the agents relative to the landmark is a different
        // configuration — the landmark forbids the rotation that would
        // identify them on an anonymous ring.
        let c = known_bound_sim(ring_a.clone(), &[(2, Handedness::LeftIsCcw), (3, Handedness::LeftIsCcw)], n);
        let mut key_c = Vec::new();
        c.checkpoint().canonical_key(&ring_a, &mut key_c);
        assert_ne!(key_a, key_c);
    }
}
