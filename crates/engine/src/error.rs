//! Error type of the engine layer.

use dynring_graph::{AgentId, EdgeId, GraphError, NodeId};
use std::error::Error;
use std::fmt;

/// Errors raised while building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A substrate-level error (invalid ring, node or edge).
    Graph(GraphError),
    /// The scenario declares no agents.
    NoAgents,
    /// An agent was placed on a node that does not exist.
    StartOutOfRange {
        /// The offending agent.
        agent: AgentId,
        /// The requested start node.
        node: NodeId,
        /// The ring size.
        ring_size: usize,
    },
    /// An adversary chose an edge that does not exist.
    AdversaryEdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// The ring size.
        ring_size: usize,
    },
    /// The scenario was built without an activation policy or edge policy.
    MissingPolicy {
        /// Which policy is missing (`"activation"` or `"edges"`).
        which: &'static str,
    },
    /// A lane loaded into a [`SimBatch`](crate::sim_batch::SimBatch) does
    /// not match the batch's shape (every lane must share ring size, team
    /// size and synchrony model; trace recording is per lane and may mix).
    BatchMismatch {
        /// Index of the offending lane within the loaded batch.
        lane: usize,
        /// What differed (e.g. `"ring size"`, `"team size"`).
        what: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Graph(e) => write!(f, "substrate error: {e}"),
            EngineError::NoAgents => write!(f, "a scenario needs at least one agent"),
            EngineError::StartOutOfRange { agent, node, ring_size } => {
                write!(f, "agent {agent} starts at {node}, outside a ring of size {ring_size}")
            }
            EngineError::AdversaryEdgeOutOfRange { edge, ring_size } => {
                write!(f, "adversary removed {edge}, outside a ring of size {ring_size}")
            }
            EngineError::MissingPolicy { which } => {
                write!(f, "the {which} policy was not configured")
            }
            EngineError::BatchMismatch { lane, what } => {
                write!(f, "lane {lane} does not match the batch shape: {what} differs")
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let errors: Vec<EngineError> = vec![
            EngineError::NoAgents,
            EngineError::StartOutOfRange {
                agent: AgentId::new(1),
                node: NodeId::new(9),
                ring_size: 5,
            },
            EngineError::AdversaryEdgeOutOfRange { edge: EdgeId::new(7), ring_size: 5 },
            EngineError::MissingPolicy { which: "edges" },
            EngineError::BatchMismatch { lane: 3, what: "ring size" },
            EngineError::from(GraphError::RingTooSmall { requested: 2 }),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn graph_errors_are_wrapped_with_source() {
        let e = EngineError::from(GraphError::RingTooSmall { requested: 1 });
        assert!(e.source().is_some());
    }
}
